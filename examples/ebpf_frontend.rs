//! Loom as a sink behind an eBPF tracing front-end (§8).
//!
//! ```text
//! cargo run --release --example ebpf_frontend
//! ```
//!
//! Front-ends like bpftrace follow a *streaming aggregation* model: they
//! summarize events into histograms as they occur and then discard them,
//! so an engineer cannot drill into a specific anomalous event after the
//! fact. The paper proposes deploying Loom as a sink for such
//! front-ends: the front-end keeps its live summary, while Loom absorbs
//! the full event stream so any event remains investigable.
//!
//! This example builds exactly that: a bpftrace-style front-end
//! aggregating syscall latencies into a live power-of-two histogram
//! (what `@lat = hist(nsecs - @start[tid])` would show) while forwarding
//! every raw event to Loom. When the live histogram surfaces an
//! anomalous bucket, the engineer drills into *those exact events* via
//! Loom — something the streaming model alone cannot do.

use loom::{Aggregate, Clock, Config, HistogramSpec, Loom, TimeRange, ValueRange};
use telemetry::records::{LatencyRecord, LATENCY_NS_OFFSET};

/// A bpftrace-style streaming power-of-two histogram.
#[derive(Debug)]
struct StreamingHist {
    buckets: [u64; 40],
    count: u64,
}

impl Default for StreamingHist {
    fn default() -> Self {
        StreamingHist {
            buckets: [0; 40],
            count: 0,
        }
    }
}

impl StreamingHist {
    fn observe(&mut self, latency_ns: u64) {
        let bucket = (64 - latency_ns.max(1).leading_zeros() as usize).min(39);
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    fn print(&self) {
        let max = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let bar = "@".repeat((n * 40 / max) as usize);
            println!(
                "  [{:>10}, {:>10}) {:>8} |{bar}",
                1u64 << (i - 1),
                1u64 << i,
                n
            );
        }
    }
}

fn main() -> loom::Result<()> {
    let dir = std::env::temp_dir().join(format!("loom-ebpf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (loom, mut writer) = Loom::open_with_clock(Config::new(&dir), Clock::manual(0))?;
    let syscalls = loom.define_source("ebpf.sys_enter_read");
    let latency_idx = loom.define_index(
        syscalls,
        loom::extract::u64_le_at(LATENCY_NS_OFFSET),
        HistogramSpec::exponential(1_000.0, 4.0, 10)?,
    )?;

    // The "kernel" produces events; the front-end aggregates AND forwards.
    let mut live = StreamingHist::default();
    let mut seq = 0u64;
    let mut emit = |writer: &mut loom::LoomWriter, latency_ns: u64, pid: u32| {
        let ts = loom.clock().advance(2_000);
        let rec = LatencyRecord {
            ts,
            latency_ns,
            op: 0, // read
            pid,
            key_hash: 0,
            seq,
            flags: 0,
            cpu: (seq % 4) as u32,
        };
        seq += 1;
        live.observe(latency_ns); // bpftrace-style streaming summary
        writer.push(syscalls, &rec.encode()) // Loom retains the raw event
    };

    // Normal traffic from pid 1000, plus one misbehaving pid 4242 whose
    // reads stall for ~30 ms a handful of times.
    for i in 0..500_000u64 {
        let (latency, pid) = if i % 100_000 == 67_891 {
            (30_000_000 + i, 4242)
        } else {
            (3_000 + (i * 2_654_435_761) % 60_000, 1000)
        };
        emit(&mut writer, latency, pid)?;
    }
    writer.seal_active_chunk()?;

    println!("live bpftrace-style histogram (streaming, events discarded):");
    live.print();
    println!("  total: {} events\n", live.count);

    // The histogram shows an anomalous high bucket — but the streaming
    // model has already discarded the events. Loom has not:
    println!("drill-down via Loom (the streaming front-end cannot do this):");
    let everything = TimeRange::new(0, loom.now());
    let p999 = loom
        .query(syscalls)
        .index(latency_idx)
        .range(everything)
        .aggregate(Aggregate::Percentile(99.9))?
        .value
        .unwrap();
    let mut culprits = Vec::new();
    loom.query(syscalls)
        .index(latency_idx)
        .range(everything)
        .value_range(ValueRange::at_least(p999.max(1_000_000.0)))
        .scan(|r| {
            let rec = LatencyRecord::decode(r.payload).expect("48-byte record");
            culprits.push((rec.pid, rec.latency_ns, r.ts));
        })?;
    println!("  events above max(p99.9, 1ms): {}", culprits.len());
    let mut by_pid = std::collections::HashMap::new();
    for (pid, _, _) in &culprits {
        *by_pid.entry(*pid).or_insert(0u64) += 1;
    }
    for (pid, n) in &by_pid {
        println!("  pid {pid}: {n} anomalous reads");
    }
    assert_eq!(by_pid.get(&4242), Some(&5));
    println!("\nthe tail belongs to pid 4242 — identifiable only because Loom\nretained the raw events the streaming front-end discarded.");

    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
