//! Distributed aggregation over multiple Loom instances (§8).
//!
//! ```text
//! cargo run --release --example distributed
//! ```
//!
//! Modern deployments correlate events across many hosts. The paper
//! sketches a coordinator that asks each host's Loom for an intermediate
//! result and merges them. This example runs three "hosts" (three Loom
//! instances capturing the same service's request latencies at different
//! loads), then answers fleet-wide questions:
//!
//! * distributive aggregates merge per-node partials directly;
//! * the fleet-wide p99.9 uses the distributed bins-as-CDF strategy —
//!   merge per-node bin counts, find the global target bin, and fetch
//!   only that bin's values from each node.

use loom::coordinator::{Coordinator, Node};
use loom::{Aggregate, Clock, Config, HistogramSpec, Loom, TimeRange};
use telemetry::dist::LogNormal;

fn spawn_host(
    name: &str,
    seed: u64,
    records: u64,
    median_latency: f64,
) -> (Node, loom::LoomWriter, std::path::PathBuf) {
    use rand::SeedableRng;
    let dir = std::env::temp_dir().join(format!("loom-dist-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (loom, mut writer) =
        Loom::open_with_clock(Config::new(&dir), Clock::manual(0)).expect("open");
    let source = loom.define_source("svc.requests");
    // Every host must use the same histogram for distributed percentiles.
    let index = loom
        .define_index(
            source,
            loom::extract::u64_le_at(0),
            HistogramSpec::exponential(1_000.0, 4.0, 12).expect("spec"),
        )
        .expect("index");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = LogNormal::from_median(median_latency, 0.6);
    for i in 0..records {
        loom.clock().advance(1_000);
        let mut payload = [0u8; 16];
        payload[0..8].copy_from_slice(&(dist.sample(&mut rng) as u64).to_le_bytes());
        payload[8..16].copy_from_slice(&i.to_le_bytes());
        writer.push(source, &payload).expect("push");
    }
    (
        Node {
            name: name.to_string(),
            loom,
            source,
            index,
        },
        writer,
        dir,
    )
}

fn main() -> loom::Result<()> {
    println!("spinning up three hosts with different load profiles...");
    // host-c is the slow outlier (e.g., a node with a failing disk).
    let (a, _wa, da) = spawn_host("host-a", 1, 300_000, 150_000.0);
    let (b, _wb, db) = spawn_host("host-b", 2, 200_000, 180_000.0);
    let (c, _wc, dc) = spawn_host("host-c", 3, 100_000, 900_000.0);

    let coordinator = Coordinator::new(vec![a, b, c])?;
    let range = TimeRange::new(0, u64::MAX);

    let count = coordinator.aggregate(range, Aggregate::Count)?;
    let mean = coordinator.aggregate(range, Aggregate::Mean)?;
    let max = coordinator.aggregate(range, Aggregate::Max)?;
    println!(
        "fleet: {} requests, mean {:.0} ns, max {:.0} ns",
        count.count,
        mean.value.unwrap(),
        max.value.unwrap()
    );

    for p in [50.0, 99.0, 99.9] {
        let r = coordinator.aggregate(range, Aggregate::Percentile(p))?;
        println!(
            "fleet p{p:<5} = {:>9.0} ns   ({} summaries scanned across nodes, {} chunks)",
            r.value.unwrap(),
            r.stats.summaries_scanned,
            r.stats.chunks_scanned
        );
    }
    println!(
        "\nthe fleet tail is dominated by host-c's latencies; each node\n\
         computed its partials on-host, and only bin counts and one bin's\n\
         values crossed the (conceptual) network."
    );

    for d in [da, db, dc] {
        let _ = std::fs::remove_dir_all(&d);
    }
    Ok(())
}
