//! Running Loom inside a monitoring daemon (Figure 4).
//!
//! ```text
//! cargo run --release --example monitoring_daemon
//! ```
//!
//! The paper deploys Loom as a library inside a monitoring daemon that
//! receives events from many sources. This example wires the full
//! pipeline: three concurrent source threads (application, kernel
//! probes, packet capture) submit to the daemon over its bounded
//! channel; the daemon's collector drains into a Loom-backed sink; a
//! query thread interrogates the same Loom instance live.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use daemon::{Daemon, LoomSink};
use loom::{Aggregate, TimeRange};
use telemetry::records::LatencyRecord;
use telemetry::{SourceKind, TelemetrySink};

fn main() -> loom::Result<()> {
    let dir = std::env::temp_dir().join(format!("loom-daemon-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Backend: a Loom instance wrapped in the daemon's sink adapter.
    let (loom, writer) = loom::Loom::open(loom::Config::new(&dir))?;
    let sink = LoomSink::new(loom.clone(), writer);
    let app_source = sink.source_id(SourceKind::AppRequest);
    let latency_index = loom.define_index(
        app_source,
        loom::extract::u64_le_at(telemetry::records::LATENCY_NS_OFFSET),
        loom::HistogramSpec::exponential(1_000.0, 4.0, 10)?,
    )?;

    let daemon = Daemon::spawn(sink, 65_536).expect("spawn daemon");
    let stop = Arc::new(AtomicBool::new(false));
    let epoch = Instant::now();

    // Three source threads, as a collector would see in production.
    let mut sources = Vec::new();
    for (kind, period_us) in [
        (SourceKind::AppRequest, 3u64),
        (SourceKind::Syscall, 2),
        (SourceKind::PageCache, 50),
    ] {
        let handle = daemon.handle();
        let stop = Arc::clone(&stop);
        sources.push(std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let ts = epoch.elapsed().as_nanos() as u64;
                let rec = LatencyRecord {
                    ts,
                    latency_ns: 50_000 + (seq * 13) % 400_000,
                    op: (seq % 3) as u32,
                    pid: 100,
                    key_hash: seq,
                    seq,
                    flags: 0,
                    cpu: 0,
                };
                handle.push(kind, ts, &rec.encode());
                seq += 1;
                if seq.is_multiple_of(256) {
                    std::thread::sleep(Duration::from_micros(period_us * 256));
                }
            }
            seq
        }));
    }

    // A live query loop against the same instance, while ingest runs.
    let query_loom = loom.clone();
    let query_stop = Arc::clone(&stop);
    let querier = std::thread::spawn(move || {
        let mut reports = Vec::new();
        while !query_stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(200));
            let now = query_loom.now();
            let last_100ms = TimeRange::last(now, 100_000_000);
            if let Ok(result) = query_loom
                .query(app_source)
                .index(latency_index)
                .range(last_100ms)
                .aggregate(Aggregate::Max)
            {
                reports.push(result.value);
            }
        }
        reports
    });

    std::thread::sleep(Duration::from_secs(2));
    stop.store(true, Ordering::Relaxed);
    let produced: u64 = sources.into_iter().map(|s| s.join().unwrap()).sum();
    let reports = querier.join().unwrap();
    let sink = daemon.shutdown();

    println!("sources produced : {produced} events");
    println!(
        "sink accepted    : {} events ({} dropped)",
        sink.offered(),
        sink.dropped()
    );
    println!("live max-latency reports during ingest:");
    for (i, value) in reports.iter().enumerate() {
        match value {
            Some(v) => println!("  t+{:>4}ms  max={v:.0} ns", (i + 1) * 200),
            None => println!("  t+{:>4}ms  (no data yet)", (i + 1) * 200),
        }
    }

    // Final consistency check: Loom saw every accepted app record.
    let mut scanned = 0u64;
    loom.raw_scan(app_source, TimeRange::new(0, u64::MAX), |_| scanned += 1)?;
    println!("final raw scan of app source: {scanned} records");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
