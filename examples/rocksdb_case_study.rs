//! The RocksDB page-cache investigation (Figure 10b), end to end.
//!
//! ```text
//! cargo run --release --example rocksdb_case_study
//! ```
//!
//! Reproduces the paper's second case study as a library user would run
//! it: capture request latencies, syscall latencies, and page-cache
//! events; then answer each phase's aggregation questions — max and tail
//! request latency, the same for the `pread64` subset, and a count of
//! page-cache insertions — all from one Loom instance.

use bench::caseload::LoomSetup;
use loom::{Aggregate, TimeRange};
use telemetry::redis::Phase;
use telemetry::rocksdb::{RocksdbConfig, RocksdbGenerator};

fn main() -> loom::Result<()> {
    let dir = std::env::temp_dir().join(format!("loom-rocksdb-cs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut setup = LoomSetup::open(&dir);
    let mut generator = RocksdbGenerator::new(RocksdbConfig {
        seed: 11,
        scale: 0.02,
        phase_secs: 3.0,
    });
    println!("capturing the RocksDB workload...");
    let total = generator.run(|e| setup.push(e.kind, e.ts, e.bytes));
    setup.writer.seal_active_chunk()?;
    println!("captured {total} events\n");
    let loom = &setup.loom;

    let aggregate = |source, index, range: (u64, u64), method| {
        loom.query(source)
            .index(index)
            .range(TimeRange::new(range.0, range.1))
            .aggregate(method)
    };

    // Phase 1: application-level aggregates.
    let p1 = generator.phase_range(Phase::P1);
    let max = aggregate(setup.app, setup.app_latency, p1, Aggregate::Max)?;
    let tail = aggregate(
        setup.app,
        setup.app_latency,
        p1,
        Aggregate::Percentile(99.99),
    )?;
    println!("phase 1 (application requests):");
    println!(
        "  max latency    = {:>12.0} ns  ({} chunks scanned)",
        max.value.unwrap(),
        max.stats.chunks_scanned
    );
    println!(
        "  p99.99 latency = {:>12.0} ns  ({} chunks scanned)",
        tail.value.unwrap(),
        tail.stats.chunks_scanned
    );

    // Phase 2: drill into pread64 — only ~3% of all records, selected by
    // the index's filtering extractor (no full scan needed).
    let p2 = generator.phase_range(Phase::P2);
    let max = aggregate(setup.syscall, setup.pread_latency, p2, Aggregate::Max)?;
    let tail = aggregate(
        setup.syscall,
        setup.pread_latency,
        p2,
        Aggregate::Percentile(99.99),
    )?;
    println!("\nphase 2 (pread64 syscalls, ~3% of the stream):");
    println!("  max latency    = {:>12.0} ns", max.value.unwrap());
    println!("  p99.99 latency = {:>12.0} ns", tail.value.unwrap());

    // Phase 3: how often were pages inserted into the page cache? The
    // counting index answers from chunk summaries alone when chunks are
    // fully inside the window.
    let p3 = generator.phase_range(Phase::P3);
    let count = aggregate(
        setup.page_cache,
        setup.page_cache_adds,
        p3,
        Aggregate::Count,
    )?;
    println!("\nphase 3 (page cache):");
    println!(
        "  mm_filemap_add_to_page_cache count = {:.0}  ({} summaries, {} chunks scanned)",
        count.value.unwrap_or(0.0),
        count.stats.summaries_scanned,
        count.stats.chunks_scanned
    );

    drop(setup);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
