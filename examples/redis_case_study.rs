//! The paper's motivating drill-down, end to end (§2.1).
//!
//! ```text
//! cargo run --release --example redis_case_study
//! ```
//!
//! A performance engineer sees occasional high Redis tail latency. They
//! iteratively drill down, capturing more sources as hypotheses form:
//!
//! 1. capture application request latency → find the slow requests;
//! 2. add eBPF syscall latency → the slow requests line up with slow
//!    `recvfrom` executions;
//! 3. add packet capture → the slow `recvfrom`s line up with packets
//!    whose destination port a buggy packet filter mangled.
//!
//! The whole investigation runs against one Loom instance, using the
//! composition of `indexed_aggregate` → `indexed_scan` → `raw_scan` the
//! paper describes in §4.3. The workload is the deterministic Redis case
//! study from the `telemetry` crate (six needles in ~1M events).

use bench::caseload::LoomSetup;
use loom::{Aggregate, TimeRange, ValueRange};
use telemetry::records::{LatencyRecord, PacketRecord};
use telemetry::redis::{RedisConfig, RedisGenerator, REDIS_PORT, SYS_RECVFROM};

fn main() -> loom::Result<()> {
    let dir = std::env::temp_dir().join(format!("loom-redis-cs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Capture the full three-phase investigation into Loom.
    let mut setup = LoomSetup::open(&dir);
    let mut generator = RedisGenerator::new(RedisConfig {
        seed: 7,
        scale: 0.02,
        phase_secs: 4.0,
        anomalies: 6,
    });
    println!("capturing the investigation's telemetry...");
    let total = generator.run(|e| setup.push(e.kind, e.ts, e.bytes));
    setup.writer.seal_active_chunk()?;
    println!("captured {total} events\n");
    let loom = &setup.loom;
    let everything = TimeRange::new(0, loom.now());

    // Step 1: find the slow requests (above p99.99).
    let p = loom
        .query(setup.app)
        .index(setup.app_latency)
        .range(everything)
        .aggregate(Aggregate::Percentile(99.99))?
        .value
        .expect("data present");
    let mut slow_requests = Vec::new();
    loom.query(setup.app)
        .index(setup.app_latency)
        .range(everything)
        .value_range(ValueRange::at_least(p.max(10_000_000.0))) // clearly-slow: >10 ms
        .scan(|r| {
            let rec = LatencyRecord::decode(r.payload).expect("48-byte record");
            slow_requests.push((r.ts, rec.latency_ns));
        })?;
    println!(
        "step 1: {} suspiciously slow requests (>10 ms):",
        slow_requests.len()
    );
    for (ts, lat) in &slow_requests {
        println!("  t={:>12} ns  latency={:.1} ms", ts, *lat as f64 / 1e6);
    }

    // Step 2: around each slow request, look for slow recvfrom syscalls.
    println!("\nstep 2: correlating with syscall telemetry...");
    let mut slow_recvs = Vec::new();
    for (ts, _) in &slow_requests {
        let vicinity = TimeRange::new(ts.saturating_sub(200_000_000), ts + 200_000_000);
        loom.query(setup.syscall)
            .index(setup.syscall_latency)
            .range(vicinity)
            .value_range(ValueRange::at_least(10_000_000.0))
            .scan(|r| {
                let rec = LatencyRecord::decode(r.payload).expect("48-byte record");
                if rec.op == SYS_RECVFROM {
                    slow_recvs.push((r.ts, rec.latency_ns));
                }
            })?;
    }
    println!(
        "  every slow request has a slow recvfrom nearby: {} found",
        slow_recvs.len()
    );

    // Step 3: dump packets around each slow recvfrom and inspect them.
    println!("\nstep 3: dumping packets around the slow recvfroms...");
    let mut mangled = Vec::new();
    let mut dumped = 0u64;
    for (ts, _) in &slow_recvs {
        let vicinity = TimeRange::new(ts.saturating_sub(100_000_000), ts + 100_000_000);
        loom.raw_scan(setup.packet, vicinity, |r| {
            dumped += 1;
            let pkt = PacketRecord::decode(r.payload).expect("packet record");
            if pkt.dst_port != REDIS_PORT {
                mangled.push((r.ts, pkt.dst_port));
            }
        })?;
    }
    println!("  scanned {dumped} packets in the vicinities");
    println!(
        "  ROOT CAUSE — {} packets with a mangled destination port:",
        mangled.len()
    );
    for (ts, port) in &mangled {
        println!(
            "    t={:>12} ns  dst_port={} (expected {})",
            ts, port, REDIS_PORT
        );
    }

    // Verify against the generator's ground truth.
    let truth = generator.ground_truth();
    assert_eq!(mangled.len(), truth.len(), "found all injected anomalies");
    println!(
        "\nverified: all {} injected anomalies were found via the drill-down.",
        truth.len()
    );

    drop(setup);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
