//! Quickstart: capture one high-frequency source and query it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core Loom loop from the paper's Figure 9 API:
//! define a source, define a histogram index over it, push records at
//! high rate, and run interactive queries (max, percentile, and a
//! data-dependent range scan) while ingest continues.

use std::sync::Arc;

use loom::{Aggregate, Config, HistogramSpec, Loom, TimeRange, ValueRange};

fn main() -> loom::Result<()> {
    let dir = std::env::temp_dir().join(format!("loom-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Open a Loom instance: one shared query handle, one ingest writer.
    let (loom, mut writer) = Loom::open(Config::new(&dir))?;

    // 2. Define a source and a latency index with exponential bins
    //    covering 1 µs .. ~1 s (plus Loom's automatic outlier bins).
    let requests = loom.define_source("app.requests");
    let latency_index = loom.define_index(
        requests,
        // The index function extracts the latency field (first 8 bytes).
        Arc::new(|payload: &[u8]| {
            payload
                .get(0..8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()) as f64)
        }),
        HistogramSpec::exponential(1_000.0, 4.0, 10)?,
    )?;

    // 3. Push a million records: lognormal-ish latencies with rare spikes.
    println!("ingesting 1,000,000 records...");
    let start = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        let latency_ns: u64 = if i % 250_000 == 137 {
            50_000_000 + i // four rare ~50 ms spikes
        } else {
            80_000 + (i * 2_654_435_761) % 160_000 // ~80-240 µs
        };
        let mut payload = [0u8; 48];
        payload[0..8].copy_from_slice(&latency_ns.to_le_bytes());
        payload[8..16].copy_from_slice(&i.to_le_bytes());
        writer.push(requests, &payload)?;
    }
    let elapsed = start.elapsed();
    println!(
        "ingested in {:.2?} ({:.2}M records/s)\n",
        elapsed,
        1.0 / elapsed.as_secs_f64()
    );

    // 4. Query while the data is hot: aggregates served mostly from
    //    chunk summaries, scans from the few matching chunks.
    let everything = TimeRange::new(0, loom.now());

    let max = loom
        .query(requests)
        .index(latency_index)
        .range(everything)
        .aggregate(Aggregate::Max)?;
    println!(
        "max latency     : {:>12.0} ns   ({} summaries, {} chunks scanned)",
        max.value.unwrap(),
        max.stats.summaries_scanned,
        max.stats.chunks_scanned
    );

    let p9999 = loom
        .query(requests)
        .index(latency_index)
        .range(everything)
        .aggregate(Aggregate::Percentile(99.99))?;
    println!(
        "p99.99 latency  : {:>12.0} ns   ({} summaries, {} chunks scanned)",
        p9999.value.unwrap(),
        p9999.stats.summaries_scanned,
        p9999.stats.chunks_scanned
    );

    // Data-dependent range scan: everything above the p99.99.
    let mut slow = Vec::new();
    let stats = loom
        .query(requests)
        .index(latency_index)
        .range(everything)
        .value_range(ValueRange::at_least(p9999.value.unwrap()))
        .scan(|record| {
            let latency = u64::from_le_bytes(record.payload[0..8].try_into().unwrap());
            let seq = u64::from_le_bytes(record.payload[8..16].try_into().unwrap());
            slow.push((seq, latency));
        })?;
    println!(
        "requests above p99.99: {} (index skipped {} of {} summarized chunks)",
        slow.len(),
        stats.summaries_scanned.saturating_sub(stats.chunks_scanned),
        stats.summaries_scanned
    );
    for (seq, latency) in slow.iter().take(8) {
        println!("  request #{seq}: {latency} ns");
    }

    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
