//! Cross-crate FNV-1a equivalence.
//!
//! `loom::util::fnv1a` is the workspace's canonical FNV-1a; `lsm`
//! sits below `loom` in the dependency graph so its bloom filter keeps
//! a private copy rather than importing it. These tests pin the two
//! implementations (one-shot and streaming) to each other and to the
//! published reference vectors, so a drift in either copy fails here
//! before it silently changes on-disk bloom filters or wire schema
//! fingerprints.

use loom::util::{fnv1a, Fnv1a};

const VECTORS: &[(&[u8], u64)] = &[
    (b"", 0xcbf2_9ce4_8422_2325),
    (b"a", 0xaf63_dc4c_8601_ec8c),
    (b"foobar", 0x8594_4171_f739_67e8),
];

#[test]
fn canonical_matches_reference_vectors() {
    for &(input, want) in VECTORS {
        assert_eq!(fnv1a(input), want, "input {input:?}");
    }
}

#[test]
fn lsm_bloom_copy_matches_canonical() {
    let mut inputs: Vec<Vec<u8>> = VECTORS.iter().map(|(i, _)| i.to_vec()).collect();
    // A spread of lengths and byte values, including the 0xff wire
    // separator and multi-KiB payloads.
    inputs.push(vec![0xff; 3]);
    inputs.push((0..=255u8).collect());
    inputs.push(b"loom.metrics/source:42".to_vec());
    inputs.push(vec![0xa5; 4096]);
    for input in &inputs {
        assert_eq!(
            lsm::bloom::fnv1a(input),
            fnv1a(input),
            "lsm bloom copy drifted for len {}",
            input.len()
        );
    }
}

#[test]
fn streaming_matches_one_shot_across_split_points() {
    let data: Vec<u8> = (0..512u32).map(|i| (i * 31 % 251) as u8).collect();
    let want = fnv1a(&data);
    for split in [0, 1, 7, 256, 511, 512] {
        let mut h = Fnv1a::new();
        h.write(&data[..split]);
        h.write(&data[split..]);
        assert_eq!(h.finish(), want, "split at {split}");
    }
}
