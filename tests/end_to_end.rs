//! Workspace-level integration tests: the full capture-and-query
//! pipeline across crates (generators → daemon → sinks → queries).

use std::sync::Arc;

use bench::caseload::{FishSetup, LoomSetup};
use loom::{Aggregate, TimeRange, ValueRange};
use telemetry::records::{LatencyRecord, PacketRecord};
use telemetry::redis::{Phase, RedisConfig, RedisGenerator, REDIS_PORT};
use telemetry::{SourceKind, TelemetrySink};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("loom-e2e-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_redis(seed: u64) -> RedisGenerator {
    RedisGenerator::new(RedisConfig {
        seed,
        scale: 0.002,
        phase_secs: 2.0,
        anomalies: 4,
    })
}

#[test]
fn drilldown_finds_every_injected_anomaly() {
    let dir = tmp("drilldown");
    let mut setup = LoomSetup::open(&dir);
    let mut generator = small_redis(3);
    generator.run(|e| setup.push(e.kind, e.ts, e.bytes));
    setup.writer.seal_active_chunk().unwrap();

    let loom = &setup.loom;
    let everything = TimeRange::new(0, loom.now());

    // Slow requests above 10 ms (the injected anomalies).
    let mut slow = Vec::new();
    loom.query(setup.app)
        .index(setup.app_latency)
        .range(everything)
        .value_range(ValueRange::at_least(10_000_000.0))
        .scan(|r| slow.push(r.ts))
        .unwrap();
    assert_eq!(slow.len(), 4);

    // Packets with mangled ports near each slow request.
    let mut mangled = 0;
    for ts in &slow {
        let vicinity = TimeRange::new(ts.saturating_sub(300_000_000), ts + 300_000_000);
        loom.raw_scan(setup.packet, vicinity, |r| {
            let pkt = PacketRecord::decode(r.payload).unwrap();
            if pkt.dst_port != REDIS_PORT {
                mangled += 1;
            }
        })
        .unwrap();
    }
    assert_eq!(
        mangled, 4,
        "every slow request correlates with a mangled packet"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loom_fishstore_and_tsdb_agree_on_query_results() {
    let dir = tmp("agree");
    let mut loom_setup = LoomSetup::open(&dir.join("loom"));
    let fish = FishSetup::open(&dir.join("fish"));
    let db = Arc::new(tsdb::Tsdb::open(tsdb::TsdbConfig::new(dir.join("tsdb"))).unwrap());

    let mut generator = small_redis(5);
    generator.run(|e| {
        loom_setup.push(e.kind, e.ts, e.bytes);
        fish.push(e.kind, e.ts, e.bytes);
        if let Some(point) = daemon::TsdbSink::to_point(e.kind, e.ts, e.bytes) {
            db.write_sync(&point);
        }
    });
    loom_setup.writer.seal_active_chunk().unwrap();
    db.flush().unwrap();

    let (start, end) = generator.phase_range(Phase::P2);
    let window = TimeRange::new(start, end);

    // Count app records in the P2 window on all three systems.
    let loom_count = loom_setup
        .loom
        .query(loom_setup.app)
        .index(loom_setup.app_latency)
        .range(window)
        .aggregate(Aggregate::Count)
        .unwrap()
        .value
        .unwrap_or(0.0) as u64;
    let mut fish_count = 0u64;
    fish.store
        .time_window_scan(start, end, |r| {
            if r.source == SourceKind::AppRequest.id() {
                fish_count += 1;
            }
        })
        .unwrap();
    let tsdb_count = db
        .aggregate("app_request", &[], start, end, tsdb::TsAggregate::Count)
        .unwrap()
        .unwrap_or(0.0) as u64;
    assert_eq!(loom_count, fish_count, "loom vs fishstore");
    assert_eq!(loom_count, tsdb_count, "loom vs tsdb");
    assert!(loom_count > 0);

    // Max latency agrees too.
    let loom_max = loom_setup
        .loom
        .query(loom_setup.app)
        .index(loom_setup.app_latency)
        .range(window)
        .aggregate(Aggregate::Max)
        .unwrap()
        .value
        .unwrap();
    let tsdb_max = db
        .aggregate("app_request", &[], start, end, tsdb::TsAggregate::Max)
        .unwrap()
        .unwrap();
    let mut fish_max = 0.0f64;
    fish.store
        .time_window_scan(start, end, |r| {
            if r.source == SourceKind::AppRequest.id() {
                if let Some(rec) = LatencyRecord::decode(r.payload) {
                    fish_max = fish_max.max(rec.latency_ns as f64);
                }
            }
        })
        .unwrap();
    assert_eq!(loom_max, tsdb_max);
    assert_eq!(loom_max, fish_max);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_pipeline_delivers_complete_stream_into_loom() {
    let dir = tmp("pipeline");
    let (l, w) = loom::Loom::open(loom::Config::new(&dir)).unwrap();
    let sink = daemon::LoomSink::new(l.clone(), w);
    let app = sink.source_id(SourceKind::AppRequest);
    let pipeline = daemon::Daemon::spawn(sink, 16_384).unwrap();

    // Two source threads submit concurrently through the daemon.
    let mut threads = Vec::new();
    for t in 0..2u64 {
        let handle = pipeline.handle();
        threads.push(std::thread::spawn(move || {
            for i in 0..5_000u64 {
                let rec = LatencyRecord {
                    ts: t * 1_000_000 + i,
                    latency_ns: i,
                    op: t as u32,
                    pid: 1,
                    key_hash: i,
                    seq: i,
                    flags: 0,
                    cpu: 0,
                };
                handle.push(SourceKind::AppRequest, rec.ts, &rec.encode());
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let sink = pipeline.shutdown();
    assert_eq!(sink.offered(), 10_000);
    assert_eq!(sink.dropped(), 0);

    let mut scanned = 0u64;
    l.raw_scan(app, TimeRange::new(0, u64::MAX), |_| scanned += 1)
        .unwrap();
    assert_eq!(scanned, 10_000, "every submitted record is queryable");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn raw_file_sink_is_replayable_into_loom() {
    // Capture to a raw file (the perf-record baseline), then replay the
    // file into Loom and verify equivalence — the workflow the paper
    // describes for post-hoc analysis of file captures.
    let dir = tmp("replay");
    let capture = dir.join("capture.bin");
    let mut raw = telemetry::RawFileSink::create(&capture).unwrap();
    let mut generator = small_redis(9);
    let mut pushed = 0u64;
    generator.run(|e| {
        raw.push(e.kind, e.ts, e.bytes);
        pushed += 1;
    });
    raw.flush();

    // Replay: parse the frame format and push into Loom.
    let (l, mut w) = loom::Loom::open(loom::Config::new(dir.join("loom"))).unwrap();
    let sources: std::collections::HashMap<u16, loom::SourceId> = SourceKind::ALL
        .iter()
        .map(|k| (k.id(), l.define_source(k.name())))
        .collect();
    let data = std::fs::read(&capture).unwrap();
    let mut pos = 0usize;
    let mut replayed = 0u64;
    while pos + 12 <= data.len() {
        let kind = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap());
        let len = u16::from_le_bytes(data[pos + 2..pos + 4].try_into().unwrap()) as usize;
        pos += 12; // skip ts too
        w.push(sources[&kind], &data[pos..pos + len]).unwrap();
        pos += len;
        replayed += 1;
    }
    assert_eq!(replayed, pushed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampling_pipeline_misses_rare_events_that_complete_capture_finds() {
    // The Figure 3 effect as an executable assertion.
    let mut generator = small_redis(13);
    let mut sampler = telemetry::sampling::UniformSampler::new(99, 0.05);
    let mut complete_mangled = 0;
    let mut sampled_mangled = 0;
    generator.run(|e| {
        let keep = sampler.keep();
        if e.kind == SourceKind::Packet {
            let pkt = PacketRecord::decode(e.bytes).unwrap();
            if pkt.dst_port != REDIS_PORT {
                complete_mangled += 1;
                if keep {
                    sampled_mangled += 1;
                }
            }
        }
    });
    assert_eq!(complete_mangled, 4);
    assert!(
        sampled_mangled < complete_mangled,
        "5% sampling should lose rare events (kept {sampled_mangled}/{complete_mangled})"
    );
}
