//! Workspace-level integration-test and example host for the Loom reproduction.
