//! Self-tests: the checker must find classic bugs (racy read-modify-
//! write, AB-BA deadlock, lost wakeup), declare clean bodies clean with
//! a complete search, and replay failures deterministically.

use conc_check::sync::atomic::{AtomicU64, Ordering};
use conc_check::sync::{thread, Arc, Condvar, Mutex};
use conc_check::{Checker, FailureKind};

/// Two threads doing load-then-store lose an increment under the right
/// interleaving; the checker must find it (as an assertion panic).
fn racy_increment_body() {
    let a = Arc::new(AtomicU64::new(0));
    let a2 = Arc::clone(&a);
    let t = thread::spawn(move || {
        let v = a2.load(Ordering::Relaxed);
        a2.store(v + 1, Ordering::Relaxed);
    });
    let v = a.load(Ordering::Relaxed);
    a.store(v + 1, Ordering::Relaxed);
    t.join().unwrap();
    assert_eq!(a.load(Ordering::Relaxed), 2, "lost increment");
}

#[test]
fn finds_racy_increment() {
    let failure = Checker::new()
        .check(racy_increment_body)
        .expect_err("the lost increment must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("lost increment"), "{failure}");
}

#[test]
fn replay_reproduces_failure() {
    let failure = Checker::new()
        .check(racy_increment_body)
        .expect_err("the lost increment must be found");
    let replayed = Checker::new()
        .replay_trace(&failure.trace, racy_increment_body)
        .expect_err("replaying the failing trace must fail again");
    assert_eq!(replayed.kind, FailureKind::Panic);
    assert!(replayed.message.contains("lost increment"));
}

#[test]
fn random_exploration_finds_and_replays() {
    let failure = Checker::random(0x1007)
        .check(racy_increment_body)
        .expect_err("random exploration must find the lost increment");
    let seed = failure.seed.expect("random failures carry a seed");
    let replayed = Checker::random(0)
        .replay_seed(seed, racy_increment_body)
        .expect_err("the failing seed must fail again");
    assert_eq!(replayed.kind, FailureKind::Panic);
}

/// `fetch_add` is atomic, so the same shape with RMW is clean — and the
/// bounded space must be fully enumerated.
#[test]
fn atomic_increment_is_clean_and_complete() {
    let report = Checker::new()
        .check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.fetch_add(1, Ordering::Relaxed);
            });
            a.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::Relaxed), 2);
        })
        .expect("atomic RMW has no failing interleaving");
    assert!(report.complete, "bounded space must be enumerated");
    assert!(report.schedules > 1, "there must be real choice points");
}

/// Classic AB-BA lock-order inversion; the checker must report a
/// deadlock naming both threads.
#[test]
fn finds_abba_deadlock() {
    let failure = Checker::new()
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_gb, _ga));
            t.join().unwrap();
        })
        .expect_err("AB-BA must deadlock under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("mutex"), "{failure}");
}

/// Check-then-wait without re-checking under the lock: the notify can
/// land between the check and the wait, and the waiter sleeps forever.
/// The checker must report the lost wakeup as a deadlock.
#[test]
fn finds_lost_wakeup() {
    let failure = Checker::new()
        .check(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || {
                *s2.0.lock().unwrap() = true;
                s2.1.notify_one();
            });
            // BUG under test: decide to wait outside the lock, then wait
            // without re-checking the flag.
            let ready = *state.0.lock().unwrap();
            if !ready {
                let g = state.0.lock().unwrap();
                let _g = state.1.wait(g).unwrap();
            }
            t.join().unwrap();
        })
        .expect_err("the lost wakeup must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("condvar"), "{failure}");
}

/// The correct waiter loop (predicate re-checked under the lock) passes
/// exhaustively.
#[test]
fn correct_condvar_protocol_is_clean() {
    let report = Checker::new()
        .check(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || {
                *s2.0.lock().unwrap() = true;
                s2.1.notify_one();
            });
            let mut g = state.0.lock().unwrap();
            while !*g {
                g = state.1.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        })
        .expect("predicate loop has no failing interleaving");
    assert!(report.complete);
}

/// Timed waits model the timeout instead of deadlocking: a waiter with
/// no notifier wakes with `timed_out()` and the body completes.
#[test]
fn timed_wait_models_timeout() {
    let report = Checker::new()
        .check(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let g = pair.0.lock().unwrap();
            let (_g, res) = pair
                .1
                .wait_timeout(g, std::time::Duration::from_millis(1))
                .unwrap();
            assert!(res.timed_out());
        })
        .expect("a lone timed waiter must time out, not deadlock");
    assert!(report.complete);
}

/// Spin loops terminate: stutter pruning forces the spinner off-CPU so
/// the releasing thread can run, and exploration stays finite.
#[test]
fn spin_wait_terminates() {
    let report = Checker::new()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            while flag.load(Ordering::Acquire) == 0 {
                std::hint::spin_loop();
            }
            t.join().unwrap();
        })
        .expect("spin on a flag another thread sets must terminate");
    assert!(report.complete);
}

/// A genuine livelock (spin on a flag nobody sets) is reported as such
/// rather than hanging the checker.
#[test]
fn reports_livelock() {
    let failure = Checker::new()
        .max_steps(500)
        .check(|| {
            let flag = AtomicU64::new(0);
            while flag.load(Ordering::Acquire) == 0 {
                std::hint::spin_loop();
            }
        })
        .expect_err("spinning on a never-set flag must be a livelock");
    assert_eq!(failure.kind, FailureKind::Livelock);
}

/// Instrumented types degrade to std behavior outside a model run, so
/// `--cfg conc_check` builds still pass ordinary tests.
#[test]
fn out_of_model_passthrough() {
    let a = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (a, m) = (Arc::clone(&a), Arc::clone(&m));
        handles.push(thread::spawn(move || {
            a.fetch_add(1, Ordering::Relaxed);
            *m.lock().unwrap() += 1;
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(a.load(Ordering::Relaxed), 4);
    assert_eq!(*m.lock().unwrap(), 4);
}
