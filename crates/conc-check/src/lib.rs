//! # conc-check — in-tree deterministic-scheduler model checker
//!
//! Systematic exploration of thread interleavings for the workspace's
//! hand-rolled concurrent protocols (the hybridlog seqlock, ping-pong
//! block recycling, FishStore tail reservation, and the crossbeam shim
//! channel), in the spirit of `tokio-rs/loom` and Microsoft's Shuttle —
//! rebuilt in-tree because the workspace builds fully offline.
//!
//! ## How it works
//!
//! Code under test swaps its `std::sync` imports for this crate's
//! [`sync`] module (each workspace crate has a facade that does this
//! under `cfg(conc_check)`). Every operation on an instrumented type is
//! a *scheduling point*: the calling thread asks the scheduler for
//! permission, and the scheduler — which lets exactly one controlled
//! thread run at a time — decides who proceeds. Enumerating those
//! decisions enumerates interleavings:
//!
//! - **Bounded-exhaustive DFS** ([`Checker::new`]) walks every schedule,
//!   iterating the preemption bound from 0 upward (iterative context
//!   bounding), so bugs needing few preemptions — almost all of them —
//!   are found first and the search stays tractable.
//! - **Seeded random search** ([`Checker::random`]) samples schedules
//!   from a PRNG for bodies too big to enumerate.
//! - **Replay** ([`Checker::replay_trace`], [`Checker::replay_seed`])
//!   re-runs one exact schedule from a [`Failure`], deterministically.
//!
//! Failures are panics (assertions in the body or invariants in the code
//! under test), deadlocks (every thread blocked; the report names each
//! thread's blocker), and livelocks (step-cap exceeded). A [`Failure`]
//! prints the schedule trace and replay instructions.
//!
//! ## Scope
//!
//! Interleavings are explored under **sequential consistency**; the
//! checker finds atomicity violations, protocol races, lost wakeups, and
//! deadlocks, but not bugs that require a non-SC weak-memory reordering
//! to manifest. Instrumented primitives degrade to plain `std` behavior
//! on threads that are not part of a model execution, so a crate
//! compiled with `--cfg conc_check` still runs its normal test suite
//! unchanged.

mod explore;
mod runtime;
pub mod sync;

pub use explore::{Checker, Failure, Report};
pub use runtime::FailureKind;
