//! Exploration drivers: bounded-exhaustive DFS, iterative context
//! bounding, seeded random search, and deterministic replay.

use std::sync::Arc;

use crate::runtime::{self, Choice, FailureKind, RunOutcome, ScheduleSrc};

/// How [`Checker::check`] walks the schedule space.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// Depth-first enumeration of every schedule, iterating the
    /// preemption bound from 0 upward (iterative context bounding), so
    /// low-preemption bugs — the common kind — are found first.
    Exhaustive,
    /// Independent seeded-PRNG schedules derived from a base seed.
    Random { seed: u64 },
}

/// Configures and runs schedule exploration over a test body.
///
/// ```
/// use conc_check::Checker;
/// use conc_check::sync::atomic::{AtomicU64, Ordering};
/// use conc_check::sync::{thread, Arc};
///
/// let report = Checker::new()
///     .check(|| {
///         let a = Arc::new(AtomicU64::new(0));
///         let a2 = Arc::clone(&a);
///         let t = thread::spawn(move || {
///             a2.fetch_add(1, Ordering::Relaxed);
///         });
///         a.fetch_add(1, Ordering::Relaxed);
///         t.join().unwrap();
///         assert_eq!(a.load(Ordering::Relaxed), 2);
///     })
///     .expect("no interleaving fails");
/// assert!(report.complete);
/// ```
#[derive(Clone, Debug)]
pub struct Checker {
    mode: Mode,
    preemption_bound: Option<usize>,
    max_schedules: u64,
    max_steps: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    /// Exhaustive exploration with the default preemption bound (3) and
    /// schedule budget.
    pub fn new() -> Checker {
        Checker {
            mode: Mode::Exhaustive,
            preemption_bound: Some(3),
            max_schedules: 100_000,
            max_steps: 20_000,
        }
    }

    /// Seeded random exploration: `max_schedules` independent schedules
    /// whose per-schedule seeds derive deterministically from `seed`.
    pub fn random(seed: u64) -> Checker {
        Checker {
            mode: Mode::Random { seed },
            preemption_bound: None,
            max_schedules: 1_000,
            max_steps: 20_000,
        }
    }

    /// Caps involuntary context switches per schedule. Exhaustive mode
    /// iterates bounds `0..=bound`.
    pub fn with_preemption_bound(mut self, bound: usize) -> Checker {
        self.preemption_bound = Some(bound);
        self
    }

    /// Removes the preemption bound (full exhaustive search; only viable
    /// for very small bodies).
    pub fn unbounded_preemptions(mut self) -> Checker {
        self.preemption_bound = None;
        self
    }

    /// Caps the number of schedules explored. Exhaustive exploration
    /// that exhausts the budget returns a [`Report`] with
    /// `complete == false`.
    pub fn max_schedules(mut self, n: u64) -> Checker {
        self.max_schedules = n.max(1);
        self
    }

    /// Caps scheduled operations per schedule; an execution exceeding it
    /// fails as a livelock.
    pub fn max_steps(mut self, n: u64) -> Checker {
        self.max_steps = n.max(1);
        self
    }

    /// Explores schedules of `body` until a failure, the schedule space
    /// is exhausted, or the budget runs out. The body must be
    /// deterministic apart from scheduling: it runs once per schedule.
    pub fn check<F>(&self, body: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        runtime::install_quiet_panic_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        match self.mode {
            Mode::Exhaustive => self.check_exhaustive(body),
            Mode::Random { seed } => self.check_random(seed, body),
        }
    }

    fn check_exhaustive(&self, body: Arc<dyn Fn() + Send + Sync>) -> Result<Report, Failure> {
        let bounds: Vec<Option<usize>> = match self.preemption_bound {
            Some(b) => (0..=b).map(Some).collect(),
            None => vec![None],
        };
        let mut schedules = 0u64;
        for bound in bounds {
            let mut prefix: Vec<Choice> = Vec::new();
            loop {
                if schedules >= self.max_schedules {
                    return Ok(Report {
                        schedules,
                        complete: false,
                    });
                }
                let outcome = runtime::Exec::run(
                    ScheduleSrc::Dfs { prefix, cursor: 0 },
                    bound,
                    self.max_steps,
                    Arc::clone(&body),
                );
                schedules += 1;
                if let Some((kind, message)) = outcome.failure {
                    return Err(Failure {
                        kind,
                        message,
                        trace: outcome.trace,
                        seed: None,
                        schedules,
                    });
                }
                match next_prefix(outcome.prefix) {
                    Some(p) => prefix = p,
                    None => break,
                }
            }
        }
        Ok(Report {
            schedules,
            complete: true,
        })
    }

    fn check_random(
        &self,
        seed: u64,
        body: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<Report, Failure> {
        for i in 0..self.max_schedules {
            let run_seed = splitmix64(seed.wrapping_add(i));
            let outcome = self.run_seed(run_seed, &body);
            if let Some((kind, message)) = outcome.failure {
                return Err(Failure {
                    kind,
                    message,
                    trace: outcome.trace,
                    seed: Some(run_seed),
                    schedules: i + 1,
                });
            }
        }
        Ok(Report {
            schedules: self.max_schedules,
            complete: false,
        })
    }

    fn run_seed(&self, run_seed: u64, body: &Arc<dyn Fn() + Send + Sync>) -> RunOutcome {
        runtime::Exec::run(
            ScheduleSrc::Random {
                // xorshift64 state must be nonzero.
                state: run_seed.max(1),
            },
            self.preemption_bound,
            self.max_steps,
            Arc::clone(body),
        )
    }

    /// Re-runs `body` under the exact schedule of a reported
    /// [`Failure::trace`]. Returns the (expected) failure, or `Ok` if the
    /// trace no longer fails (e.g. the bug was fixed).
    pub fn replay_trace<F>(&self, trace: &[usize], body: F) -> Result<(), Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        runtime::install_quiet_panic_hook();
        let outcome = runtime::Exec::run(
            ScheduleSrc::Trace {
                steps: trace.to_vec(),
                cursor: 0,
            },
            None,
            self.max_steps,
            Arc::new(body),
        );
        match outcome.failure {
            Some((kind, message)) => Err(Failure {
                kind,
                message,
                trace: outcome.trace,
                seed: None,
                schedules: 1,
            }),
            None => Ok(()),
        }
    }

    /// Re-runs `body` under the single random schedule identified by a
    /// reported [`Failure::seed`].
    pub fn replay_seed<F>(&self, seed: u64, body: F) -> Result<(), Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        runtime::install_quiet_panic_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let outcome = self.run_seed(seed, &body);
        match outcome.failure {
            Some((kind, message)) => Err(Failure {
                kind,
                message,
                trace: outcome.trace,
                seed: Some(seed),
                schedules: 1,
            }),
            None => Ok(()),
        }
    }
}

/// Advances a DFS prefix to the next unexplored branch: backtracks past
/// exhausted trailing choices and takes the next sibling of the deepest
/// non-exhausted one. `None` when the whole space has been enumerated.
fn next_prefix(mut prefix: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = prefix.last_mut() {
        if last.index + 1 < last.options {
            last.index += 1;
            return Some(prefix);
        }
        prefix.pop();
    }
    None
}

/// splitmix64: decorrelates sequential indices into per-run seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Successful exploration summary.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: u64,
    /// Whether the bounded schedule space was fully enumerated (always
    /// `false` for random exploration).
    pub complete: bool,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Panic message, deadlock description, or livelock note.
    pub message: String,
    /// Thread chosen at each choice point of the failing schedule; feed
    /// to [`Checker::replay_trace`].
    pub trace: Vec<usize>,
    /// The per-run seed, when found by random exploration; feed to
    /// [`Checker::replay_seed`].
    pub seed: Option<u64>,
    /// Schedules executed up to and including the failing one.
    pub schedules: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "conc-check: {} on schedule {}: {}",
            self.kind, self.schedules, self.message
        )?;
        writeln!(f, "  failing schedule trace: {:?}", self.trace)?;
        match self.seed {
            Some(seed) => write!(
                f,
                "  replay: Checker::random(..).replay_seed({seed:#018x}, body) \
                 or Checker::new().replay_trace(&trace, body)"
            ),
            None => write!(f, "  replay: Checker::new().replay_trace(&trace, body)"),
        }
    }
}

impl std::error::Error for Failure {}
