//! The controlled-preemption execution runtime.
//!
//! One *execution* runs a test body with every instrumented operation
//! (atomic access, mutex/condvar op, spawn/join, yield) funneled through
//! [`Exec::yield_op`] or one of the blocking helpers. Exactly one
//! controlled thread runs at any instant: each thread owns a binary
//! *gate*, and the running thread hands the baton to the chosen next
//! thread before parking on its own gate. Scheduling decisions come from
//! a pluggable [`ScheduleSrc`] (DFS frontier, seeded PRNG, or a fixed
//! replay trace), which is what makes executions deterministic and
//! replayable.
//!
//! # Scheduling points and termination
//!
//! A *choice point* is a scheduling point with more than one candidate
//! thread. Three rules keep exhaustive exploration finite in the
//! presence of spin loops:
//!
//! 1. A voluntary yield (`thread::yield_now`, `hint::spin_loop`) forces a
//!    switch whenever another thread is runnable, and the switch is not
//!    counted as a preemption.
//! 2. A thread about to re-load the same atomic it just loaded, with no
//!    other thread having run in between, is *spinning*: re-running it
//!    would re-read unchanged state (stutter), so the scheduler forces a
//!    switch exactly as for a voluntary yield.
//! 3. Involuntary switches away from a runnable thread are *preemptions*
//!    and are capped by the configured preemption bound (context
//!    bounding); an execution exceeding `max_steps` operations is
//!    reported as a livelock.
//!
//! # Blocking and deadlock
//!
//! Model mutexes, condvars, and joins park threads in the scheduler, not
//! the OS. When no thread is runnable, timed condvar waiters (if any) are
//! woken with a timeout result — modeling the passage of time — and
//! otherwise the execution is reported as a deadlock listing every
//! thread's blocking reason. Condvar notifies with no waiter are no-ops,
//! exactly the semantics that make lost-wakeup bugs discoverable.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind controlled threads when an execution
/// aborts (a failure was found or a cap was hit). Never surfaces to
/// callers of the public API.
pub(crate) struct AbortToken;

/// Monotonic generation counter distinguishing executions, so per-object
/// model ids (see [`ObjCell`]) from one execution are never mistaken for
/// ids of the next.
static EXEC_GEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution and thread id of the calling thread, when it is a
/// controlled thread of an active model execution.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is a controlled thread of a model run.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Binary semaphore a controlled thread parks on between scheduling
/// grants.
struct Gate {
    allowed: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            allowed: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        let mut g = self.allowed.lock().unwrap_or_else(|p| p.into_inner());
        *g = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut g = self.allowed.lock().unwrap_or_else(|p| p.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        *g = false;
    }
}

/// Why a thread is parked in the scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockReason {
    /// Waiting to acquire model mutex `mid`.
    Mutex(usize),
    /// Waiting on condvar `cv` (will reacquire `mutex` on wake).
    Condvar { cv: usize, timed: bool },
    /// Waiting for thread `target` to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

struct ThreadState {
    status: Status,
    gate: Arc<Gate>,
    /// Set by a voluntary yield; deprioritized until next scheduled.
    yielded: bool,
    /// Location (atomic address) of the last executed op if it was a pure
    /// load, for spin (stutter) detection.
    spin_last_load: Option<usize>,
    /// Whether any other thread has executed an op since this thread's
    /// last op.
    other_ran_since: bool,
    /// Set when a timed condvar wait was woken by the timeout rule.
    wake_timed_out: bool,
}

#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
}

#[derive(Default)]
struct CondvarState {
    waiters: VecDeque<usize>,
}

/// One recorded decision of a DFS exploration: which of `options`
/// candidates was taken at a choice point.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub index: usize,
    pub options: usize,
}

/// Where scheduling decisions come from.
pub(crate) enum ScheduleSrc {
    /// Replay `prefix`, then take the first branch at every new choice
    /// point, extending the prefix (depth-first frontier).
    Dfs { prefix: Vec<Choice>, cursor: usize },
    /// Seeded xorshift64* choice at every point.
    Random { state: u64 },
    /// Replay an explicit thread-id trace; after it is exhausted, take
    /// the first candidate.
    Trace { steps: Vec<usize>, cursor: usize },
}

impl ScheduleSrc {
    /// Decides the next thread at a scheduling point. `options` is the
    /// heuristically preferred candidate set; `runnable` is every legal
    /// candidate. Trace replay consumes one recorded step per scheduling
    /// point and may pick any runnable thread (the recording scheduler's
    /// heuristics don't bound what is *legal*), so a trace reproduces its
    /// schedule exactly even under different exploration settings.
    fn decide(&mut self, options: &[usize], runnable: &[usize]) -> usize {
        match self {
            ScheduleSrc::Trace { steps, cursor } => {
                let want = steps.get(*cursor).copied();
                *cursor += 1;
                match want {
                    Some(id) if runnable.contains(&id) => id,
                    _ => options[0],
                }
            }
            _ if options.len() > 1 => self.choose(options),
            _ => options[0],
        }
    }

    /// Picks one of `options` (sorted thread ids). Called only when
    /// `options.len() > 1`.
    fn choose(&mut self, options: &[usize]) -> usize {
        match self {
            ScheduleSrc::Dfs { prefix, cursor } => {
                let c = if *cursor < prefix.len() {
                    let c = prefix[*cursor];
                    assert_eq!(
                        c.options,
                        options.len(),
                        "nondeterministic test body: choice point {} had {} options on \
                         replay but {} when first explored; model-checked bodies must \
                         depend only on scheduling",
                        *cursor,
                        options.len(),
                        c.options,
                    );
                    c
                } else {
                    let c = Choice {
                        index: 0,
                        options: options.len(),
                    };
                    prefix.push(c);
                    c
                };
                *cursor += 1;
                options[c.index]
            }
            ScheduleSrc::Random { state } => {
                // xorshift64*; deterministic per seed.
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
                options[(r % options.len() as u64) as usize]
            }
            ScheduleSrc::Trace { .. } => unreachable!("trace replay is handled by decide()"),
        }
    }
}

/// Failure classes an execution can end in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A controlled thread panicked (assertion failure, explicit panic,
    /// or a protocol invariant such as claiming an unflushed block).
    Panic,
    /// Every live thread was blocked with no timed waiter to wake.
    Deadlock,
    /// The execution exceeded the per-schedule step cap without
    /// finishing.
    Livelock,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic => f.write_str("panic"),
            FailureKind::Deadlock => f.write_str("deadlock"),
            FailureKind::Livelock => f.write_str("livelock (step cap exceeded)"),
        }
    }
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    current: usize,
    live: usize,
    schedule: ScheduleSrc,
    /// Thread chosen at each choice point, for failure reports/replay.
    trace: Vec<usize>,
    steps: u64,
    max_steps: u64,
    preemptions: usize,
    preemption_bound: Option<usize>,
    failure: Option<(FailureKind, String)>,
    aborting: bool,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// One model execution: shared between the driver and every controlled
/// thread.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    done: Condvar,
    pub(crate) gen: u64,
}

/// Outcome of a single execution, consumed by the explorers.
pub(crate) struct RunOutcome {
    pub failure: Option<(FailureKind, String)>,
    pub prefix: Vec<Choice>,
    pub trace: Vec<usize>,
}

impl Exec {
    /// Runs `body` as controlled thread 0 under `schedule`, to
    /// completion, failure, or abort. Synchronous: returns only after
    /// every controlled thread has exited.
    pub(crate) fn run(
        schedule: ScheduleSrc,
        preemption_bound: Option<usize>,
        max_steps: u64,
        body: Arc<dyn Fn() + Send + Sync>,
    ) -> RunOutcome {
        let exec = Arc::new(Exec {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                live: 0,
                schedule,
                trace: Vec::new(),
                steps: 0,
                max_steps,
                preemptions: 0,
                preemption_bound,
                failure: None,
                aborting: false,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                handles: Vec::new(),
            }),
            done: Condvar::new(),
            gen: EXEC_GEN.fetch_add(1, Ordering::Relaxed),
        });

        let id0 = exec.register_thread();
        debug_assert_eq!(id0, 0);
        exec.start_controlled(0, move || body());
        // Hand the baton to thread 0 and wait for the execution to end.
        let gate0 = {
            let st = exec.lock();
            st.threads[0].gate.clone()
        };
        gate0.open();
        let handles = {
            let mut st = exec.lock();
            while st.live > 0 {
                st = exec
                    .done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            std::mem::take(&mut st.handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut st = exec.lock();
        RunOutcome {
            failure: st.failure.take(),
            prefix: match &mut st.schedule {
                ScheduleSrc::Dfs { prefix, .. } => std::mem::take(prefix),
                _ => Vec::new(),
            },
            trace: std::mem::take(&mut st.trace),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether the calling (controlled) thread is unwinding while the
    /// execution aborts. Instrumented ops must then degrade to plain
    /// `std` behavior: panicking again (the usual abort protocol) inside
    /// a `Drop` during unwind would be a fatal double panic.
    pub(crate) fn in_abort_unwind(&self) -> bool {
        std::thread::panicking() && self.lock().aborting
    }

    /// Registers a new controlled thread slot and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        let id = st.threads.len();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            gate: Gate::new(),
            yielded: false,
            spin_last_load: None,
            other_ran_since: true,
            wake_timed_out: false,
        });
        st.live += 1;
        id
    }

    /// Spawns the real OS thread backing controlled thread `id`. The
    /// thread parks on its gate until first scheduled.
    pub(crate) fn start_controlled(self: &Arc<Self>, id: usize, f: impl FnOnce() + Send + 'static) {
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("conc-check-{id}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
                let gate = {
                    let st = exec.lock();
                    st.threads[id].gate.clone()
                };
                gate.wait();
                let aborting = exec.lock().aborting;
                if !aborting {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<AbortToken>().is_none() {
                            // &*payload: downcast the payload, not the Box.
                            exec.record_panic(&*payload);
                        }
                    }
                }
                exec.finish_thread(id);
                CURRENT.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn controlled thread");
        self.lock().handles.push(handle);
    }

    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some((FailureKind::Panic, msg));
        }
        Self::start_abort(&mut st);
    }

    /// Marks the execution failed and opens every gate so parked threads
    /// unwind with [`AbortToken`] at their next scheduler interaction.
    fn start_abort(st: &mut ExecState) {
        if st.aborting {
            return;
        }
        st.aborting = true;
        for t in &st.threads {
            if t.status != Status::Finished {
                t.gate.open();
            }
        }
    }

    /// Scheduling point before (and granting execution of) one shared
    /// operation by thread `me`. `load_loc` identifies pure atomic loads
    /// for spin detection; `voluntary` marks yield_now/spin_loop.
    pub(crate) fn yield_op(self: &Arc<Self>, me: usize, load_loc: Option<usize>, voluntary: bool) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            if std::thread::panicking() {
                // Mid-unwind (running drops): execute the op without
                // scheduling; panicking again would abort the process.
                return;
            }
            std::panic::panic_any(AbortToken);
        }
        debug_assert_eq!(st.current, me, "only the scheduled thread may run");
        st.steps += 1;
        if st.steps > st.max_steps {
            let cap = st.max_steps;
            if st.failure.is_none() {
                st.failure = Some((
                    FailureKind::Livelock,
                    format!("execution exceeded {cap} scheduled operations"),
                ));
            }
            Self::start_abort(&mut st);
            drop(st);
            if std::thread::panicking() {
                return;
            }
            std::panic::panic_any(AbortToken);
        }

        let spinning = match load_loc {
            Some(loc) => {
                st.threads[me].spin_last_load == Some(loc) && !st.threads[me].other_ran_since
            }
            None => false,
        };
        let must_switch = voluntary || spinning;

        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Runnable)
            .collect();
        debug_assert!(runnable.contains(&me));
        let others: Vec<usize> = runnable.iter().copied().filter(|&t| t != me).collect();

        let options: Vec<usize> = if must_switch && !others.is_empty() {
            let fresh: Vec<usize> = others
                .iter()
                .copied()
                .filter(|&t| !st.threads[t].yielded)
                .collect();
            if fresh.is_empty() {
                others
            } else {
                fresh
            }
        } else if st.preemption_bound.is_some_and(|b| st.preemptions >= b) {
            vec![me]
        } else {
            let opts: Vec<usize> = runnable
                .iter()
                .copied()
                .filter(|&t| t == me || !st.threads[t].yielded)
                .collect();
            if opts.is_empty() {
                runnable.clone()
            } else {
                opts
            }
        };

        let chosen = st.schedule.decide(&options, &runnable);
        st.trace.push(chosen);

        if chosen != me {
            if !must_switch {
                st.preemptions += 1;
            }
            self.switch_to(st, me, chosen);
            st = self.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
        }
        // `me` is (again) the running thread, about to execute its op.
        Self::note_op(&mut st, me, load_loc);
    }

    /// Records that `me` executes an op now: updates spin trackers.
    fn note_op(st: &mut ExecState, me: usize, load_loc: Option<usize>) {
        for (t, ts) in st.threads.iter_mut().enumerate() {
            if t != me {
                ts.other_ran_since = true;
            }
        }
        let ts = &mut st.threads[me];
        ts.spin_last_load = load_loc;
        ts.other_ran_since = false;
        ts.yielded = false;
    }

    /// Hands the baton from `me` to `chosen` and parks `me` on its gate.
    /// Consumes the state guard; `me` holds no locks while parked.
    fn switch_to(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize, chosen: usize) {
        st.current = chosen;
        let next_gate = st.threads[chosen].gate.clone();
        let my_gate = st.threads[me].gate.clone();
        drop(st);
        next_gate.open();
        my_gate.wait();
    }

    /// Parks `me` with `reason` and schedules some runnable thread; when
    /// no thread is runnable, wakes a timed condvar waiter (modeling a
    /// timeout) or reports a deadlock. Returns once `me` is rescheduled.
    fn block_and_reschedule(
        self: &Arc<Self>,
        mut st: std::sync::MutexGuard<'_, ExecState>,
        me: usize,
        reason: BlockReason,
    ) {
        st.threads[me].status = Status::Blocked(reason);
        let chosen = match Self::pick_runnable(self, &mut st, Some(me)) {
            Some(c) => c,
            None => {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
        };
        self.switch_to(st, me, chosen);
        let st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        debug_assert_eq!(st.current, me);
    }

    /// Chooses the next runnable thread (a recorded choice point when
    /// several are runnable). On empty runnable set: wakes a timed
    /// waiter, or records a deadlock failure, starts the abort, and
    /// returns `None` (the caller unwinds).
    fn pick_runnable(
        self: &Arc<Self>,
        st: &mut ExecState,
        exclude: Option<usize>,
    ) -> Option<usize> {
        let mut runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| Some(t) != exclude && st.threads[t].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            // Model the passage of time: a timed condvar waiter times out
            // when nothing else can run.
            let timed = (0..st.threads.len()).find(|&t| {
                matches!(
                    st.threads[t].status,
                    Status::Blocked(BlockReason::Condvar { timed: true, .. })
                )
            });
            match timed {
                Some(t) => {
                    if let Status::Blocked(BlockReason::Condvar { cv, .. }) = st.threads[t].status {
                        if let Some(pos) = st.condvars[cv].waiters.iter().position(|&w| w == t) {
                            st.condvars[cv].waiters.remove(pos);
                        }
                    }
                    st.threads[t].wake_timed_out = true;
                    st.threads[t].status = Status::Runnable;
                    runnable = vec![t];
                }
                None => {
                    let msg = Self::describe_deadlock(st);
                    if st.failure.is_none() {
                        st.failure = Some((FailureKind::Deadlock, msg));
                    }
                    Self::start_abort(st);
                    return None;
                }
            }
        }
        let chosen = st.schedule.decide(&runnable, &runnable);
        st.trace.push(chosen);
        Some(chosen)
    }

    fn describe_deadlock(st: &ExecState) -> String {
        let mut parts = Vec::new();
        for (t, ts) in st.threads.iter().enumerate() {
            if let Status::Blocked(r) = ts.status {
                let what = match r {
                    BlockReason::Mutex(m) => format!("mutex #{m}"),
                    BlockReason::Condvar { cv, timed } => {
                        format!("condvar #{cv}{}", if timed { " (timed)" } else { "" })
                    }
                    BlockReason::Join(j) => format!("join of thread {j}"),
                };
                parts.push(format!("thread {t} blocked on {what}"));
            }
        }
        format!("all live threads blocked: {}", parts.join("; "))
    }

    /// Marks `me` finished, wakes joiners, and either ends the execution
    /// or schedules the next thread.
    fn finish_thread(self: &Arc<Self>, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.live -= 1;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::Blocked(BlockReason::Join(me)) {
                st.threads[t].status = Status::Runnable;
            }
        }
        if st.live == 0 {
            self.done.notify_all();
            return;
        }
        if st.aborting {
            // Gates were all opened by start_abort; remaining threads
            // unwind on their own.
            return;
        }
        if let Some(chosen) = Self::pick_runnable(self, &mut st, None) {
            st.current = chosen;
            let gate = st.threads[chosen].gate.clone();
            drop(st);
            gate.open();
        }
        // On None, pick_runnable recorded the deadlock and opened every
        // gate; nothing to schedule.
    }

    // ---- model objects -------------------------------------------------

    /// Resolves `cell` to this execution's id for a mutex, allocating on
    /// first use.
    pub(crate) fn mutex_model_id(&self, cell: &ObjCell) -> usize {
        let mut st = self.lock();
        if let Some(id) = cell.get(self.gen) {
            return id;
        }
        let id = st.mutexes.len();
        st.mutexes.push(MutexState::default());
        cell.set(self.gen, id);
        id
    }

    /// Resolves `cell` to this execution's id for a condvar, allocating
    /// on first use.
    pub(crate) fn condvar_model_id(&self, cell: &ObjCell) -> usize {
        let mut st = self.lock();
        if let Some(id) = cell.get(self.gen) {
            return id;
        }
        let id = st.condvars.len();
        st.condvars.push(CondvarState::default());
        cell.set(self.gen, id);
        id
    }

    /// Acquires model mutex `mid` for `me`, parking while contended.
    pub(crate) fn model_mutex_lock(self: &Arc<Self>, me: usize, mid: usize) {
        loop {
            let mut st = self.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                return;
            }
            self.block_and_reschedule(st, me, BlockReason::Mutex(mid));
        }
    }

    /// Releases model mutex `mid` and makes its waiters runnable (they
    /// re-contend when scheduled: barging semantics, like std).
    pub(crate) fn model_mutex_unlock(&self, me: usize, mid: usize) {
        let mut st = self.lock();
        debug_assert!(st.aborting || st.mutexes[mid].owner == Some(me));
        st.mutexes[mid].owner = None;
        if st.aborting {
            return;
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::Blocked(BlockReason::Mutex(mid)) {
                st.threads[t].status = Status::Runnable;
            }
        }
    }

    /// Atomically releases `mid`, registers `me` on condvar `cv`, and
    /// parks. Returns whether the wake was a (modeled) timeout. The
    /// caller reacquires the mutex afterwards.
    pub(crate) fn model_condvar_wait(
        self: &Arc<Self>,
        me: usize,
        cv: usize,
        mid: usize,
        timed: bool,
    ) -> bool {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        debug_assert!(st.mutexes[mid].owner == Some(me));
        st.mutexes[mid].owner = None;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::Blocked(BlockReason::Mutex(mid)) {
                st.threads[t].status = Status::Runnable;
            }
        }
        st.condvars[cv].waiters.push_back(me);
        st.threads[me].wake_timed_out = false;
        self.block_and_reschedule(st, me, BlockReason::Condvar { cv, timed });
        let mut st = self.lock();
        let timed_out = st.threads[me].wake_timed_out;
        st.threads[me].wake_timed_out = false;
        timed_out
    }

    /// Wakes one (FIFO) or all waiters of condvar `cv`. A notify with no
    /// waiter is a no-op — the semantics that surface lost wakeups.
    pub(crate) fn model_condvar_notify(&self, cv: usize, all: bool) {
        let mut st = self.lock();
        while let Some(t) = st.condvars[cv].waiters.pop_front() {
            st.threads[t].status = Status::Runnable;
            if !all {
                break;
            }
        }
    }

    /// Parks `me` until thread `target` finishes.
    pub(crate) fn join_wait(self: &Arc<Self>, me: usize, target: usize) {
        loop {
            let st = self.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.threads[target].status == Status::Finished {
                return;
            }
            self.block_and_reschedule(st, me, BlockReason::Join(target));
        }
    }
}

/// Lazily assigned per-execution model id carried by instrumented
/// mutexes/condvars. Packs the execution generation with the id so an
/// object surviving across executions (or a recycled allocation) is
/// re-registered instead of aliasing stale scheduler state.
pub(crate) struct ObjCell(AtomicU64);

impl ObjCell {
    pub(crate) const fn new() -> ObjCell {
        ObjCell(AtomicU64::new(0))
    }

    fn get(&self, gen: u64) -> Option<usize> {
        let v = self.0.load(Ordering::Relaxed);
        if v >> 32 == gen & 0xffff_ffff && v & 0xffff_ffff != 0 {
            Some((v & 0xffff_ffff) as usize - 1)
        } else {
            None
        }
    }

    fn set(&self, gen: u64, id: usize) {
        self.0.store(
            ((gen & 0xffff_ffff) << 32) | (id as u64 + 1),
            Ordering::Relaxed,
        );
    }
}

/// Installs (once, process-wide) a panic hook that silences panics in
/// controlled threads: their payloads are captured and reported through
/// [`Failure`](crate::Failure), so the default stderr backtrace would
/// only be noise — and exploration legitimately panics thousands of
/// times with [`AbortToken`].
pub(crate) fn install_quiet_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}
