//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each type mirrors the `std` API surface the workspace uses. When the
//! calling thread belongs to an active model execution, every operation
//! first passes through the scheduler (the `runtime` module); otherwise the
//! operation degrades to the plain `std` behavior, so crates compiled
//! with `--cfg conc_check` still run their ordinary test suites
//! unchanged.
//!
//! # Memory model
//!
//! The checker explores thread *interleavings* under sequential
//! consistency: user-specified orderings are passed through to the
//! hardware but do not add reorderings to the exploration. This finds
//! atomicity bugs, protocol races, lost wakeups, and deadlocks — the
//! dominant failure classes of the workspace's seqlock/tail-reservation
//! protocols — but not bugs that *require* a non-SC weak-memory
//! reordering to manifest.

use crate::runtime::{self, ObjCell};

pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, Weak};

/// Atomic types whose every operation is a scheduling point in a model
/// execution.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::runtime;

    /// Scheduling point before an atomic op. `load` marks pure loads
    /// (spin detection).
    #[inline]
    fn point(loc: usize, load: bool) {
        if let Some((exec, me)) = runtime::current() {
            exec.yield_op(me, if load { Some(loc) } else { None }, false);
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ty, $t:ty) => {
            /// Instrumented atomic; see the module docs.
            #[repr(transparent)]
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic (const, usable in statics).
                pub const fn new(v: $t) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Loads the value; a scheduling point in model runs.
                pub fn load(&self, order: Ordering) -> $t {
                    point(self as *const _ as usize, true);
                    self.inner.load(order)
                }

                /// Stores `val`; a scheduling point in model runs.
                pub fn store(&self, val: $t, order: Ordering) {
                    point(self as *const _ as usize, false);
                    self.inner.store(val, order)
                }

                /// Swaps in `val`; a scheduling point in model runs.
                pub fn swap(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.swap(val, order)
                }

                /// Compare-exchange; a scheduling point in model runs.
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    point(self as *const _ as usize, false);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-exchange; a scheduling point in model
                /// runs (no spurious failures are modeled).
                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    point(self as *const _ as usize, false);
                    self.inner
                        .compare_exchange_weak(current, new, success, failure)
                }

                /// Mutable access; no scheduling point (exclusive).
                pub fn get_mut(&mut self) -> &mut $t {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $t {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! instrumented_int_atomic {
        ($name:ident, $std:ty, $t:ty) => {
            instrumented_atomic!($name, $std, $t);

            impl $name {
                /// Atomic add; a scheduling point in model runs.
                pub fn fetch_add(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.fetch_add(val, order)
                }

                /// Atomic subtract; a scheduling point in model runs.
                pub fn fetch_sub(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.fetch_sub(val, order)
                }

                /// Atomic max; a scheduling point in model runs.
                pub fn fetch_max(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.fetch_max(val, order)
                }

                /// Atomic min; a scheduling point in model runs.
                pub fn fetch_min(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.fetch_min(val, order)
                }

                /// Atomic or; a scheduling point in model runs.
                pub fn fetch_or(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.fetch_or(val, order)
                }

                /// Atomic and; a scheduling point in model runs.
                pub fn fetch_and(&self, val: $t, order: Ordering) -> $t {
                    point(self as *const _ as usize, false);
                    self.inner.fetch_and(val, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    instrumented_int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    instrumented_int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    instrumented_int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicBool {
        /// Atomic or; a scheduling point in model runs.
        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            point(self as *const _ as usize, false);
            self.inner.fetch_or(val, order)
        }

        /// Atomic and; a scheduling point in model runs.
        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            point(self as *const _ as usize, false);
            self.inner.fetch_and(val, order)
        }
    }

    impl AtomicU64 {
        /// Reinterprets an aligned `*mut u64` as an instrumented atomic,
        /// mirroring `std::sync::atomic::AtomicU64::from_ptr`.
        ///
        /// # Safety
        ///
        /// Same contract as the std method: `ptr` must be valid for the
        /// returned lifetime, 8-byte aligned, and concurrently accessed
        /// only through atomics. Sound because the wrapper is
        /// `repr(transparent)` over the std atomic.
        pub const unsafe fn from_ptr<'a>(ptr: *mut u64) -> &'a AtomicU64 {
            &*(ptr as *const AtomicU64)
        }
    }
}

/// A mutex with std's API whose lock/unlock are modeled by the
/// scheduler in model runs.
pub struct Mutex<T: ?Sized> {
    model: ObjCell,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (const, usable in statics).
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            model: ObjCell::new(),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Acquires the mutex, parking in the scheduler when contended
    /// during a model run.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match runtime::current() {
            // Mid-abort-unwind (drops running while the execution tears
            // down): plain std locking; touching the model would panic
            // inside a panic.
            Some((exec, _)) if exec.in_abort_unwind() => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    g: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    g: Some(p.into_inner()),
                    model: None,
                })),
            },
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    g: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    g: Some(p.into_inner()),
                    model: None,
                })),
            },
            Some((exec, me)) => {
                exec.yield_op(me, None, false);
                let mid = exec.mutex_model_id(&self.model);
                exec.model_mutex_lock(me, mid);
                Ok(MutexGuard {
                    lock: self,
                    g: Some(take_std_lock(&self.inner)),
                    model: Some((exec, me, mid)),
                })
            }
        }
    }
}

/// Acquires the std mutex that backs a model-owned lock. Model ownership
/// means no *lasting* contention — the only transient holders are
/// threads unwinding through an execution abort — so a blocking acquire
/// returns promptly. A poisoned lock (a prior aborted execution unwound
/// while holding it) is taken anyway; model state is what matters.
fn take_std_lock<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Guard for [`Mutex`]; releasing it is a model unlock in model runs.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    g: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<crate::runtime::Exec>, usize, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the model unlock can schedule
        // another thread into `take_std_lock`.
        self.g = None;
        if let Some((exec, me, mid)) = self.model.take() {
            exec.model_mutex_unlock(me, mid);
        }
    }
}

/// Result of a timed condvar wait; mirrors
/// `std::sync::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with std's API, modeled by the scheduler in
/// model runs. Notifies with no waiter are no-ops — the semantics that
/// surface lost-wakeup bugs.
pub struct Condvar {
    model: ObjCell,
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new condvar (const, usable in statics).
    pub const fn new() -> Condvar {
        Condvar {
            model: ObjCell::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases the guard's mutex and parks until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.wait_inner(guard, false) {
            Ok((g, _)) => Ok(g),
            Err(p) => {
                let (g, _) = p.into_inner();
                Err(PoisonError::new(g))
            }
        }
    }

    /// Releases the guard's mutex and parks until notified or until the
    /// model decides the timeout fires (only when nothing else can run —
    /// the model's stand-in for the passage of time). The duration is
    /// otherwise ignored in model runs.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match guard.model {
            Some(_) => self.wait_inner(guard, true),
            None => {
                let lock = guard.lock;
                let mut guard = guard;
                let std_g = guard.g.take().expect("live guard");
                drop(guard);
                match self.inner.wait_timeout(std_g, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock,
                            g: Some(g),
                            model: None,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                g: Some(g),
                                model: None,
                            },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }
        }
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let lock = guard.lock;
        let mut guard = guard;
        match guard.model.take() {
            None => {
                // Out-of-model passthrough.
                let std_g = guard.g.take().expect("live guard");
                drop(guard);
                match self.inner.wait(std_g) {
                    Ok(g) => Ok((
                        MutexGuard {
                            lock,
                            g: Some(g),
                            model: None,
                        },
                        WaitTimeoutResult { timed_out: false },
                    )),
                    Err(p) => Err(PoisonError::new((
                        MutexGuard {
                            lock,
                            g: Some(p.into_inner()),
                            model: None,
                        },
                        WaitTimeoutResult { timed_out: false },
                    ))),
                }
            }
            Some((exec, me, mid)) if exec.in_abort_unwind() => {
                // Mid-abort-unwind: report a spurious wakeup instead of
                // parking in (or panicking out of) the dying scheduler.
                guard.model = Some((exec, me, mid));
                Ok((guard, WaitTimeoutResult { timed_out: false }))
            }
            Some((exec, me, mid)) => {
                let cv = exec.condvar_model_id(&self.model);
                // Drop the real lock before any other thread can be
                // scheduled, then atomically (under the scheduler lock)
                // release the model mutex, register as waiter, and park.
                guard.g = None;
                drop(guard);
                let timed_out = exec.model_condvar_wait(me, cv, mid, timed);
                exec.model_mutex_lock(me, mid);
                Ok((
                    MutexGuard {
                        lock,
                        g: Some(take_std_lock(&lock.inner)),
                        model: Some((exec, me, mid)),
                    },
                    WaitTimeoutResult { timed_out },
                ))
            }
        }
    }

    /// Wakes one waiter (FIFO in model runs).
    pub fn notify_one(&self) {
        match runtime::current() {
            None => self.inner.notify_one(),
            Some((exec, me)) => {
                exec.yield_op(me, None, false);
                let cv = exec.condvar_model_id(&self.model);
                exec.model_condvar_notify(cv, false);
            }
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match runtime::current() {
            None => self.inner.notify_all(),
            Some((exec, me)) => {
                exec.yield_op(me, None, false);
                let cv = exec.condvar_model_id(&self.model);
                exec.model_condvar_notify(cv, true);
            }
        }
    }
}

/// `std::thread` stand-ins: spawn/join/yield become controlled-thread
/// operations inside a model run.
pub mod thread {
    use std::sync::{Arc, Mutex};

    use crate::runtime;

    pub use std::thread::Result;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<runtime::Exec>,
            id: usize,
            slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result (the
        /// panic payload when it panicked — though in a model run a
        /// panicking thread fails the whole execution first).
        pub fn join(self) -> Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { exec, id, slot } => {
                    let me = runtime::current()
                        .expect("model JoinHandle joined outside its execution")
                        .1;
                    exec.join_wait(me, id);
                    slot.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .unwrap_or_else(|| Err(Box::new("thread aborted by the model checker")))
                }
            }
        }
    }

    /// Spawns a thread; inside a model run it becomes a controlled
    /// thread of the execution.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match runtime::current() {
            None => JoinHandle(Inner::Std(std::thread::spawn(f))),
            Some((exec, me)) => {
                let id = exec.register_thread();
                let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
                let slot2 = Arc::clone(&slot);
                exec.start_controlled(id, move || {
                    // Panics are caught (and fail the execution) by the
                    // controlled-thread wrapper; here the closure runs to
                    // completion or unwinds past us.
                    let v = f();
                    *slot2
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Ok(v));
                });
                // The child is schedulable from this point on.
                exec.yield_op(me, None, false);
                JoinHandle(Inner::Model { exec, id, slot })
            }
        }
    }

    /// Yields the scheduler; in a model run this is a voluntary switch
    /// (deprioritized and never counted as a preemption).
    pub fn yield_now() {
        match runtime::current() {
            None => std::thread::yield_now(),
            Some((exec, me)) => exec.yield_op(me, None, true),
        }
    }

    /// Sleeps; in a model run time does not exist, so this is a
    /// voluntary yield.
    pub fn sleep(dur: std::time::Duration) {
        match runtime::current() {
            None => std::thread::sleep(dur),
            Some((exec, me)) => exec.yield_op(me, None, true),
        }
    }
}

/// `std::hint` stand-ins, plus model-only access annotations.
pub mod hint {
    use crate::runtime;

    /// Spin-loop hint; in a model run a voluntary yield, so spin-wait
    /// loops hand the schedule to the thread they are waiting on.
    pub fn spin_loop() {
        match runtime::current() {
            None => std::hint::spin_loop(),
            Some((exec, me)) => exec.yield_op(me, None, true),
        }
    }

    /// Declares a raw (non-atomic) shared-buffer *read* at `loc` — e.g.
    /// a seqlock snapshot memcpy. A scheduling point in model runs so
    /// the checker can interleave other threads between the protocol's
    /// validation loads and the copy itself; the copy is modeled as one
    /// atomic access (byte-level tearing is out of scope). Free outside
    /// a model run.
    ///
    /// Deliberately not reported as a load for spin-stutter pruning: a
    /// copy often follows a validation load of the *same* address (a
    /// commit word at the buffer head), and pruning it as a spinning
    /// re-read would force a switch that masks the very interleavings
    /// this annotation exists to expose.
    pub fn raw_read(loc: usize) {
        if let Some((exec, me)) = runtime::current() {
            exec.yield_op(me, None, false);
        }
        let _ = loc;
    }

    /// Declares a raw (non-atomic) shared-buffer *write* at `loc`; the
    /// write-side counterpart of [`raw_read`].
    pub fn raw_write(loc: usize) {
        if let Some((exec, me)) = runtime::current() {
            exec.yield_op(me, None, false);
        }
        let _ = loc;
    }
}
