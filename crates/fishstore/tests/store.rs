//! End-to-end tests of the FishStore baseline: concurrent ingest, PSF
//! chains, and scan correctness against reference models.

use std::sync::Arc;

use fishstore::{FishStore, FishStoreConfig, PsfId};

fn open(name: &str, segment_size: usize) -> (Arc<FishStore>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("fishstore-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FishStore::open(FishStoreConfig::new(&dir).with_segment_size(segment_size)).unwrap();
    (fs, dir)
}

#[test]
fn single_thread_ingest_and_full_scan() {
    let (fs, dir) = open("basic", 4096);
    for i in 0..500u64 {
        fs.ingest_at(1, i * 10, &i.to_le_bytes()).unwrap();
    }
    let mut got = Vec::new();
    fs.full_scan(|r| {
        got.push((r.ts, u64::from_le_bytes(r.payload.try_into().unwrap())));
    })
    .unwrap();
    let expected: Vec<_> = (0..500u64).map(|i| (i * 10, i)).collect();
    assert_eq!(got, expected);
    assert_eq!(fs.records(), 500);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn records_survive_segment_eviction() {
    // Tiny segments force many seals and flushes; early records must be
    // readable from the file.
    let (fs, dir) = open("evict", 512);
    for i in 0..2_000u64 {
        fs.ingest_at(1, i, &i.to_le_bytes()).unwrap();
    }
    // Wait for some eviction to happen.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while fs.log().flushed_upto() == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert!(fs.log().flushed_upto() > 0, "no segment was evicted");
    let mut count = 0u64;
    fs.full_scan(|r| {
        assert_eq!(u64::from_le_bytes(r.payload.try_into().unwrap()), r.ts);
        count += 1;
    })
    .unwrap();
    assert_eq!(count, 2_000);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn psf_scan_returns_exactly_matching_records() {
    let (fs, dir) = open("psf", 4096);
    // PSF: the value of byte 0 when byte 0 is even.
    let psf = fs.register_psf(Arc::new(|_source, payload: &[u8]| {
        let b = *payload.first()?;
        (b % 2 == 0).then_some(b as u64)
    }));
    for i in 0..1_000u64 {
        fs.ingest_at(1, i, &[(i % 10) as u8, 0, 0, 0]).unwrap();
    }
    let mut got = Vec::new();
    fs.psf_scan(psf, 4, None, |r| got.push(r.ts)).unwrap();
    // Every i with i % 10 == 4, newest first.
    let expected: Vec<u64> = (0..1_000u64).filter(|i| i % 10 == 4).rev().collect();
    assert_eq!(got, expected);
    // A value that never occurred.
    let mut none = 0;
    fs.psf_scan(psf, 3, None, |_| none += 1).unwrap();
    assert_eq!(none, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn psf_scan_respects_time_window() {
    let (fs, dir) = open("psf-window", 4096);
    let psf = fs.register_psf(Arc::new(|source, _: &[u8]| Some(source as u64)));
    for i in 0..1_000u64 {
        fs.ingest_at(2, i, &i.to_le_bytes()).unwrap();
    }
    let mut got = Vec::new();
    fs.psf_scan(psf, 2, Some((200, 300)), |r| got.push(r.ts))
        .unwrap();
    let expected: Vec<u64> = (200..=300).rev().collect();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn time_window_scan_matches_filtered_full_scan() {
    let (fs, dir) = open("window", 1024);
    for i in 0..3_000u64 {
        fs.ingest_at((i % 3) as u16, i, &i.to_le_bytes()).unwrap();
    }
    let mut expected = Vec::new();
    fs.full_scan(|r| {
        if (1_000..=2_000).contains(&r.ts) {
            expected.push((r.ts, r.source));
        }
    })
    .unwrap();
    let mut got = Vec::new();
    fs.time_window_scan(1_000, 2_000, |r| got.push((r.ts, r.source)))
        .unwrap();
    got.sort();
    expected.sort();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn time_window_scan_cost_grows_with_lookback() {
    let (fs, dir) = open("lookback", 1024);
    for i in 0..5_000u64 {
        fs.ingest_at(1, i, &i.to_le_bytes()).unwrap();
    }
    let recent = fs.time_window_scan(4_800, 4_900, |_| {}).unwrap();
    let old = fs.time_window_scan(100, 200, |_| {}).unwrap();
    assert!(
        old > recent * 2,
        "old-window scan ({old}) should cost much more than recent ({recent})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_ingest_loses_nothing() {
    let (fs, dir) = open("concurrent", 64 * 1024);
    let psf = fs.register_psf(Arc::new(|source, _: &[u8]| Some(source as u64)));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let v = t * PER_THREAD + i;
                fs.ingest_at(t as u16, v, &v.to_le_bytes()).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(fs.records(), THREADS * PER_THREAD);

    // Full scan sees every record exactly once.
    let mut seen = vec![false; (THREADS * PER_THREAD) as usize];
    let mut total = 0u64;
    fs.full_scan(|r| {
        let v = u64::from_le_bytes(r.payload.try_into().unwrap());
        assert!(!seen[v as usize], "duplicate record {v}");
        seen[v as usize] = true;
        total += 1;
    })
    .unwrap();
    assert_eq!(total, THREADS * PER_THREAD);
    assert!(seen.iter().all(|s| *s));

    // Each source's PSF chain has exactly its own records.
    for t in 0..THREADS {
        let mut chain = Vec::new();
        fs.psf_scan(psf, t, None, |r| {
            chain.push(u64::from_le_bytes(r.payload.try_into().unwrap()));
        })
        .unwrap();
        assert_eq!(chain.len() as u64, PER_THREAD, "source {t}");
        // Newest-first within the chain equals this thread's reverse push
        // order (a single thread pushed this source).
        let expected: Vec<u64> = (t * PER_THREAD..(t + 1) * PER_THREAD).rev().collect();
        assert_eq!(chain, expected);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_record_is_rejected() {
    let (fs, dir) = open("oversize", 512);
    assert!(fs.ingest_at(1, 0, &vec![0u8; 1024]).is_err());
    assert!(fs.ingest_at(1, 0, &[0u8; 64]).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn psf_registered_late_covers_only_new_records() {
    let (fs, dir) = open("late-psf", 4096);
    for i in 0..100u64 {
        fs.ingest_at(1, i, &i.to_le_bytes()).unwrap();
    }
    let psf = fs.register_psf(Arc::new(|_s, _: &[u8]| Some(7)));
    for i in 100..200u64 {
        fs.ingest_at(1, i, &i.to_le_bytes()).unwrap();
    }
    let mut count = 0;
    fs.psf_scan(psf, 7, None, |_| count += 1).unwrap();
    assert_eq!(count, 100);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn variable_payload_sizes_round_trip() {
    let (fs, dir) = open("varsize", 2048);
    let mut pushed = Vec::new();
    for i in 0..300usize {
        let len = i % 200;
        let payload: Vec<u8> = (0..len).map(|j| ((i + j) % 251) as u8).collect();
        fs.ingest_at(1, i as u64, &payload).unwrap();
        pushed.push(payload);
    }
    let mut got = Vec::new();
    fs.full_scan(|r| got.push(r.payload.to_vec())).unwrap();
    assert_eq!(got, pushed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn psf_id_type_is_stable() {
    let (fs, dir) = open("psf-ids", 4096);
    let a = fs.register_psf(Arc::new(|_, _: &[u8]| None));
    let b = fs.register_psf(Arc::new(|_, _: &[u8]| None));
    assert_eq!(a, PsfId(0));
    assert_eq!(b, PsfId(1));
    assert_eq!(fs.psf_count(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reverse_segment_scan_visits_newest_segments_first() {
    let (fs, dir) = open("reverse", 512);
    for i in 0..1_000u64 {
        fs.ingest_at(1, i, &i.to_le_bytes()).unwrap();
    }
    // scan_reverse yields segments newest-first (records forward within
    // each segment): the first timestamp seen must be from the last
    // segment, and all records must be visited exactly once.
    let mut seen = Vec::new();
    fs.log()
        .scan_reverse(|_addr, meta| {
            seen.push(meta.ts);
            true
        })
        .unwrap();
    assert_eq!(seen.len(), 1_000);
    assert!(
        seen[0] > 900,
        "first visited record should be recent, got {}",
        seen[0]
    );
    let mut sorted = seen.clone();
    sorted.sort();
    assert_eq!(sorted, (0..1_000).collect::<Vec<_>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn early_stop_during_scans_works() {
    let (fs, dir) = open("early-stop", 1024);
    for i in 0..500u64 {
        fs.ingest_at(1, i, &i.to_le_bytes()).unwrap();
    }
    let mut n = 0;
    fs.log()
        .scan(|_addr, _meta| {
            n += 1;
            n < 10
        })
        .unwrap();
    assert_eq!(n, 10);
    let _ = std::fs::remove_dir_all(&dir);
}
