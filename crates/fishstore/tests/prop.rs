//! Property-based tests: FishStore scans and PSF chains must agree with
//! reference models for arbitrary ingest interleavings.

use std::sync::Arc;

use proptest::prelude::*;

use fishstore::{FishStore, FishStoreConfig};

fn unique_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "fishstore-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full scans reproduce every ingested record in order, PSF chains
    /// return exactly the matching subsets (newest first), and
    /// time-window scans equal filtered full scans — for arbitrary
    /// payload sizes and source mixes, across segment boundaries.
    #[test]
    fn scans_match_reference_model(
        records in proptest::collection::vec(
            (1u16..4, proptest::collection::vec(any::<u8>(), 0..100)), 1..300),
        window in (0u64..300, 0u64..300),
        segment_size_sel in 0usize..2,
    ) {
        let segment_size = [512usize, 4096][segment_size_sel];
        let dir = unique_dir();
        let fs = FishStore::open(
            FishStoreConfig::new(&dir).with_segment_size(segment_size),
        ).unwrap();
        // PSF: source id (exact-match by source).
        let by_source = fs.register_psf(Arc::new(|source, _: &[u8]| Some(source as u64)));
        // PSF: first payload byte if even.
        let even_first = fs.register_psf(Arc::new(|_s, payload: &[u8]| {
            let b = *payload.first()?;
            (b % 2 == 0).then_some(b as u64)
        }));

        for (i, (source, payload)) in records.iter().enumerate() {
            fs.ingest_at(*source, i as u64, payload).unwrap();
        }

        // Full scan: exact order and contents.
        let mut scanned = Vec::new();
        fs.full_scan(|r| scanned.push((r.source, r.ts, r.payload.to_vec()))).unwrap();
        prop_assert_eq!(scanned.len(), records.len());
        for ((src, ts, payload), (i, (exp_src, exp_payload))) in
            scanned.iter().zip(records.iter().enumerate())
        {
            prop_assert_eq!(*src, *exp_src);
            prop_assert_eq!(*ts, i as u64);
            prop_assert_eq!(payload, exp_payload);
        }

        // PSF by source: newest-first subset.
        for source in 1u16..4 {
            let mut got = Vec::new();
            fs.psf_scan(by_source, source as u64, None, |r| got.push(r.ts)).unwrap();
            let mut expected: Vec<u64> = records
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| *s == source)
                .map(|(i, _)| i as u64)
                .collect();
            expected.reverse();
            prop_assert_eq!(got, expected, "source {}", source);
        }

        // PSF by first-even-byte for one probe value.
        let mut got = Vec::new();
        fs.psf_scan(even_first, 42, None, |r| got.push(r.ts)).unwrap();
        let mut expected: Vec<u64> = records
            .iter()
            .enumerate()
            .filter(|(_, (_, p))| p.first() == Some(&42))
            .map(|(i, _)| i as u64)
            .collect();
        expected.reverse();
        prop_assert_eq!(got, expected);

        // Time window scan equals a filtered full scan.
        let (a, b) = window;
        let (lo, hi) = (a.min(b), a.max(b));
        let mut got = Vec::new();
        fs.time_window_scan(lo, hi, |r| got.push(r.ts)).unwrap();
        got.sort();
        let expected: Vec<u64> = (lo..=hi.min(records.len() as u64 - 1))
            .filter(|t| *t < records.len() as u64)
            .collect();
        prop_assert_eq!(got, expected);

        drop(fs);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
