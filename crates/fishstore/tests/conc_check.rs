//! Model-check harness for the FishStore-style tail reservation
//! protocol (fetch-add reserve, write payload, release-store commit
//! word; scanners acquire-load the commit word before touching payload
//! bytes).
//!
//! Compiled only under `--cfg conc_check`; run with:
//!
//! ```text
//! RUSTFLAGS="--cfg conc_check" cargo test -p fishstore --test conc_check
//! ```
#![cfg(conc_check)]

use conc_check::sync::atomic::Ordering;
use conc_check::sync::{thread, Arc};
use conc_check::{Checker, FailureKind};
use fishstore::segment::Segment;

const SLOT: u64 = 16;

/// Writer thread `id` (1-based): reserve one slot, write the payload,
/// then publish it via the commit word.
fn ingest(seg: &Segment, id: u64) -> u64 {
    let off = seg.reserved.fetch_add(SLOT, Ordering::Relaxed);
    assert!(off + SLOT <= seg.capacity() as u64, "over-reservation");
    seg.write(off as usize + 8, &[id as u8; 8]);
    seg.commit_word(off as usize, id);
    off
}

/// Two ingest threads race a scanner. Invariants: reservations are
/// disjoint, and a scanner that acquire-loads a nonzero commit word sees
/// that record's complete payload (commit-after-payload publication).
#[test]
fn tail_reservation_reserve_write_commit() {
    let report = Checker::new()
        .with_preemption_bound(3)
        .max_schedules(300_000)
        .check(|| {
            let seg = Arc::new(Segment::new(0, 2 * SLOT as usize));

            let s1 = Arc::clone(&seg);
            let w1 = thread::spawn(move || ingest(&s1, 1));
            let s2 = Arc::clone(&seg);
            let scanner = thread::spawn(move || {
                for slot in 0..2usize {
                    let word = s2.load_word(slot * SLOT as usize);
                    if word != 0 {
                        let mut payload = [0u8; 8];
                        s2.read(slot * SLOT as usize + 8, &mut payload);
                        assert!(
                            payload.iter().all(|&b| b == word as u8),
                            "commit word {word} published before its payload: {payload:?}"
                        );
                    }
                }
            });

            let off2 = ingest(&seg, 2);
            let off1 = w1.join().unwrap();
            scanner.join().unwrap();

            // Reservations must be disjoint and exhaustive.
            let mut offs = [off1, off2];
            offs.sort_unstable();
            assert_eq!(offs, [0, SLOT], "overlapping or skipped reservations");
            assert_eq!(seg.reserved.load(Ordering::Relaxed), 2 * SLOT);
            // Both records are now published with their own ids.
            assert_eq!(seg.load_word(off1 as usize), 1);
            assert_eq!(seg.load_word(off2 as usize), 2);
        })
        .expect("tail reservation must have no failing interleaving");
    assert!(report.schedules > 10);
}

/// Teeth check: committing *before* writing the payload (publication
/// order inverted) must be caught by the scanner invariant.
#[test]
fn commit_before_payload_is_caught() {
    let failure = Checker::new()
        .with_preemption_bound(3)
        .check(|| {
            let seg = Arc::new(Segment::new(0, SLOT as usize));

            let s = Arc::clone(&seg);
            let scanner = thread::spawn(move || {
                let word = s.load_word(0);
                if word != 0 {
                    let mut payload = [0u8; 8];
                    s.read(8, &mut payload);
                    assert!(
                        payload.iter().all(|&b| b == word as u8),
                        "commit word {word} published before its payload: {payload:?}"
                    );
                }
            });

            // BUG under test: commit word stored before the payload.
            let off = seg.reserved.fetch_add(SLOT, Ordering::Relaxed);
            seg.commit_word(off as usize, 1);
            seg.write(off as usize + 8, &[1u8; 8]);
            scanner.join().unwrap();
        })
        .expect_err("inverted publication order must be caught");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("before its payload"), "{failure}");
}
