//! Log segments: fixed-size, zero-initialized, append-once buffers.
//!
//! Unlike Loom's recycled staging blocks, FishStore-style segments are
//! allocated fresh for each span of the log and dropped after eviction, so
//! no generation protocol is needed: a segment's bytes go from zero to
//! their final value exactly once.
//!
//! # Synchronization
//!
//! Many ingest threads reserve space with a fetch-add on `reserved` and
//! then write their record bytes into disjoint ranges. A record becomes
//! visible when its *commit word* (the first 8 bytes of its header) is
//! stored with release ordering; scanners read commit words with acquire
//! ordering and treat a zero word as "not yet committed". Chain back
//! pointers are also accessed atomically because they are published after
//! the commit word (see `record.rs`).

use crate::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size, zero-initialized log segment.
pub struct Segment {
    /// Raw allocation; accessed via raw pointers and per-word atomics only.
    data: *mut u8,
    /// Capacity in bytes (a multiple of 8).
    capacity: usize,
    /// Global log address of the segment's first byte.
    base: u64,
    /// Next free offset; grows past `capacity` when writers overflow.
    pub reserved: AtomicU64,
    /// Bytes fully written and committed by writers.
    pub committed: AtomicU64,
    /// Bytes actually used (set by the thread that seals the segment;
    /// `u64::MAX` while the segment is still active).
    pub used: AtomicU64,
}

// SAFETY: concurrent access to `data` follows the module-level protocol:
// writers touch only their reserved (disjoint) ranges; readers only read
// bytes covered by an acquire-loaded commit word or plain bytes of
// committed records; commit words and chain pointers use atomic ops.
unsafe impl Sync for Segment {}
// SAFETY: the segment exclusively owns its heap allocation (freed once
// in `Drop`) and holds no thread-affine state, so moving it between
// threads transfers ownership without aliasing.
unsafe impl Send for Segment {}

impl Segment {
    /// Allocates a zeroed segment of `capacity` bytes based at `base`.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` and `base` are multiples of 8 (required
    /// for aligned atomic access to commit words).
    pub fn new(base: u64, capacity: usize) -> Self {
        assert_eq!(capacity % 8, 0, "segment capacity must be 8-byte aligned");
        assert_eq!(base % 8, 0, "segment base must be 8-byte aligned");
        let buf: Box<[u8]> = vec![0u8; capacity].into_boxed_slice();
        Segment {
            data: Box::into_raw(buf) as *mut u8,
            capacity,
            base,
            reserved: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            used: AtomicU64::new(u64::MAX),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Global address of the first byte.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Writes plain bytes at `offset`. The caller must own the reservation
    /// covering the range (disjointness is the safety argument).
    pub fn write(&self, offset: usize, src: &[u8]) {
        assert!(
            offset + src.len() <= self.capacity,
            "segment write overflow"
        );
        crate::sync::hint::raw_write(self.data as usize);
        // SAFETY: bounds checked above; `data` is valid for `capacity`
        // bytes for the segment's lifetime. The caller owns this range
        // by way of a unique `fetch_add` reservation on `reserved`, so
        // no other thread reads or writes these bytes until the caller
        // publishes them via `commit_word`'s release store — after
        // which they are immutable, so the plain write never races.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.data.add(offset), src.len());
        }
    }

    /// Reads plain bytes at `offset`. Only valid for ranges covered by a
    /// previously acquire-loaded commit word.
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        assert!(offset + dst.len() <= self.capacity, "segment read overflow");
        crate::sync::hint::raw_read(self.data as usize);
        // SAFETY: bounds checked above; `data` is valid for `capacity`
        // bytes for the segment's lifetime. Per protocol the caller
        // observed the record's commit word via `load_word`'s acquire
        // load, which pairs with the writer's release store in
        // `commit_word`; that edge makes the payload bytes written
        // before the commit both visible and immutable, so the plain
        // read never races a write.
        unsafe {
            std::ptr::copy_nonoverlapping(self.data.add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Returns the aligned atomic word at `offset` (commit words, chain
    /// back pointers).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of bounds.
    pub fn word(&self, offset: usize) -> &AtomicU64 {
        assert_eq!(offset % 8, 0, "atomic word access must be aligned");
        assert!(offset + 8 <= self.capacity, "atomic word out of bounds");
        // SAFETY: the pointer is valid for the segment's lifetime, aligned
        // (checked above), and all concurrent access to this word goes
        // through atomic operations per the module protocol.
        unsafe { AtomicU64::from_ptr(self.data.add(offset) as *mut u64) }
    }

    /// Stores the commit word at `offset` with release ordering,
    /// publishing the record bytes written before it.
    pub fn commit_word(&self, offset: usize, word: u64) {
        self.word(offset).store(word, Ordering::Release);
    }

    /// Loads the commit word at `offset` with acquire ordering; zero means
    /// "no committed record here".
    pub fn load_word(&self, offset: usize) -> u64 {
        self.word(offset).load(Ordering::Acquire)
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // SAFETY: `data` came from `Box::into_raw` in `new` and is freed
        // exactly once here.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.data,
                self.capacity,
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn write_read_round_trip() {
        let s = Segment::new(0, 64);
        s.write(8, b"hello");
        let mut buf = [0u8; 5];
        s.read(8, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn fresh_segment_is_zeroed() {
        let s = Segment::new(0, 128);
        assert_eq!(s.load_word(0), 0);
        assert_eq!(s.load_word(120), 0);
    }

    #[test]
    fn commit_word_round_trips() {
        let s = Segment::new(0, 64);
        s.commit_word(16, 0xdead_beef);
        assert_eq!(s.load_word(16), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_word_access_panics() {
        let s = Segment::new(0, 64);
        s.word(4);
    }

    #[test]
    fn concurrent_reservations_are_disjoint() {
        let seg = Arc::new(Segment::new(0, 8 * 1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let seg = Arc::clone(&seg);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let off = seg.reserved.fetch_add(16, Ordering::Relaxed);
                    if off + 16 > seg.capacity() as u64 {
                        break;
                    }
                    seg.write(off as usize + 8, &t.to_le_bytes());
                    seg.commit_word(off as usize, t + 1);
                    mine.push(off);
                }
                mine
            }));
        }
        let all: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every 16-byte slot was claimed exactly once, and contents match
        // the claiming thread.
        let mut seen = std::collections::HashSet::new();
        for (t, offs) in all.iter().enumerate() {
            for off in offs {
                assert!(seen.insert(*off), "offset {off} double-claimed");
                assert_eq!(seg.load_word(*off as usize), t as u64 + 1);
                let mut buf = [0u8; 8];
                seg.read(*off as usize + 8, &mut buf);
                assert_eq!(u64::from_le_bytes(buf), t as u64);
            }
        }
        assert_eq!(seen.len(), 8 * 1024 / 16);
    }
}
