//! The FishStore-like store: ingest with predicated subset functions.
//!
//! A *predicated subset function* (PSF) maps each record to an optional
//! property value; records mapping to the same `(psf, value)` pair are
//! linked into a hash chain of back pointers, so an exact-match query
//! retrieves exactly the matching records without scanning (§2.3 of the
//! Loom paper, and Xie et al., SIGMOD 2019).
//!
//! PSFs are *exact*: they excel at point lookups but cannot express value
//! ranges over unanticipated thresholds, data-dependent predicates (e.g.
//! "above the 99.99th percentile"), or arbitrary-lookback time windows —
//! the flexibility gap that Loom's sparse histogram indexes close.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::sync::RwLock;

use crate::log::{LogError, Result, SharedLog};
use crate::record::{RecordMeta, MAX_PSFS, NIL_ADDR};

/// Identifier of a registered PSF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PsfId(pub u32);

/// A predicated subset function: maps (source, payload) to an optional
/// property value. Records with the same value are chained.
pub type PsfFn = Arc<dyn Fn(u16, &[u8]) -> Option<u64> + Send + Sync>;

struct PsfDef {
    id: PsfId,
    func: PsfFn,
}

/// Configuration for a [`FishStore`].
#[derive(Debug, Clone)]
pub struct FishStoreConfig {
    /// Directory for the log file.
    pub dir: std::path::PathBuf,
    /// Segment size in bytes.
    pub segment_size: usize,
}

impl FishStoreConfig {
    /// Creates a configuration rooted at `dir` with a 1 MiB segment size.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        FishStoreConfig {
            dir: dir.into(),
            segment_size: 1024 * 1024,
        }
    }

    /// Overrides the segment size.
    pub fn with_segment_size(mut self, bytes: usize) -> Self {
        self.segment_size = bytes;
        self
    }
}

/// A record delivered by FishStore scans.
#[derive(Debug, Clone, Copy)]
pub struct FsRecord<'a> {
    /// Log address.
    pub addr: u64,
    /// Source tag.
    pub source: u16,
    /// Arrival timestamp (ns).
    pub ts: u64,
    /// Payload bytes.
    pub payload: &'a [u8],
}

/// The FishStore-like ingest/query engine.
pub struct FishStore {
    log: Arc<SharedLog>,
    psfs: RwLock<Vec<PsfDef>>,
    /// Chain heads per (psf, value).
    directory: RwLock<HashMap<(u32, u64), Arc<AtomicU64>>>,
    epoch: Instant,
    records: AtomicU64,
    bytes: AtomicU64,
}

impl FishStore {
    /// Opens a store rooted at `config.dir`.
    pub fn open(config: FishStoreConfig) -> Result<Arc<FishStore>> {
        let log = SharedLog::create(&config.dir.join("fishstore.log"), config.segment_size)?;
        Ok(Arc::new(FishStore {
            log,
            psfs: RwLock::named("fishstore.psfs", Vec::new()),
            directory: RwLock::named("fishstore.directory", HashMap::new()),
            epoch: Instant::now(),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }))
    }

    /// Registers a PSF; it applies to records ingested afterwards.
    pub fn register_psf(&self, func: PsfFn) -> PsfId {
        let mut psfs = self.psfs.write();
        let id = PsfId(psfs.len() as u32);
        psfs.push(PsfDef { id, func });
        id
    }

    /// Number of registered PSFs.
    pub fn psf_count(&self) -> usize {
        self.psfs.read().len()
    }

    /// Current time on the store's internal timeline (ns).
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Total records ingested.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Total payload bytes ingested.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The underlying shared log (for benchmarks and drill-downs).
    pub fn log(&self) -> &Arc<SharedLog> {
        &self.log
    }

    /// Ingests one record. Thread-safe: any number of ingest threads may
    /// call this concurrently (FishStore scales with ingest threads).
    pub fn ingest(&self, source: u16, payload: &[u8]) -> Result<u64> {
        self.ingest_at(source, self.now(), payload)
    }

    /// Ingests one record with an explicit timestamp (deterministic
    /// benchmarks and replay).
    pub fn ingest_at(&self, source: u16, ts: u64, payload: &[u8]) -> Result<u64> {
        // Evaluate PSFs up front (their cost is part of the write path —
        // this is exactly the probe-effect driver measured in Figure 14).
        let mut matches: [(u32, u64); MAX_PSFS] = [(0, 0); MAX_PSFS];
        let mut n_matches = 0usize;
        {
            let psfs = self.psfs.read();
            for def in psfs.iter() {
                if n_matches == MAX_PSFS {
                    break;
                }
                if let Some(value) = (def.func)(source, payload) {
                    matches[n_matches] = (def.id.0, value);
                    n_matches += 1;
                }
            }
        }

        let size = RecordMeta::on_log_size(n_matches, payload.len());
        let res = self.log.reserve(size)?;
        let meta = RecordMeta {
            total_len: size as u32,
            psf_count: n_matches as u16,
            source,
            ts,
        };

        // Body first: timestamp, PSF ids/values, payload; commit word last.
        res.segment.write(res.offset + 8, &ts.to_le_bytes());
        for (i, (psf_id, value)) in matches[..n_matches].iter().enumerate() {
            let e = res.offset + RecordMeta::psf_entry_offset(i);
            res.segment.write(e, &psf_id.to_le_bytes());
            res.segment.write(e + 8, &value.to_le_bytes());
            // The prev slot is installed below via the chain CAS; write the
            // nil sentinel so a torn chain is detectable.
            res.segment.write(e + 16, &NIL_ADDR.to_le_bytes());
        }
        let p = res.offset + meta.payload_offset();
        res.segment.write(p, &(payload.len() as u32).to_le_bytes());
        res.segment.write(p + 4, payload);
        res.segment.commit_word(res.offset, meta.commit_word());

        // Link into each (psf, value) chain. The prev slot is written
        // before the successful head CAS publishes this record into the
        // chain, so chain walkers always observe a final pointer.
        for (i, (psf_id, value)) in matches[..n_matches].iter().enumerate() {
            let head = self.chain_head(*psf_id, *value);
            let prev_slot = res
                .segment
                .word(res.offset + RecordMeta::psf_entry_offset(i) + 16);
            let mut old = head.load(Ordering::Acquire);
            loop {
                prev_slot.store(old, Ordering::Relaxed);
                match head.compare_exchange_weak(old, res.addr, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => break,
                    Err(actual) => old = actual,
                }
            }
        }

        self.log.complete(&res.segment, size);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(res.addr)
    }

    /// Returns (creating if needed) the chain head for `(psf, value)`.
    fn chain_head(&self, psf: u32, value: u64) -> Arc<AtomicU64> {
        if let Some(head) = self.directory.read().get(&(psf, value)) {
            return Arc::clone(head);
        }
        let mut dir = self.directory.write();
        Arc::clone(
            dir.entry((psf, value))
                .or_insert_with(|| Arc::new(AtomicU64::new(NIL_ADDR))),
        )
    }

    /// Reads a committed record and passes it to `f`.
    fn with_record<R>(
        &self,
        addr: u64,
        meta: &RecordMeta,
        buf: &mut Vec<u8>,
        f: &mut impl FnMut(FsRecord<'_>) -> R,
    ) -> Result<R> {
        let p = meta.payload_offset();
        let mut len_buf = [0u8; 4];
        self.log.read_body(addr, p, &mut len_buf)?;
        let payload_len = u32::from_le_bytes(len_buf) as usize;
        buf.resize(payload_len, 0);
        self.log.read_body(addr, p + 4, buf)?;
        Ok(f(FsRecord {
            addr,
            source: meta.source,
            ts: meta.ts,
            payload: buf,
        }))
    }

    /// Full scan over the entire log, oldest record first.
    pub fn full_scan<F>(&self, mut f: F) -> Result<u64>
    where
        F: FnMut(FsRecord<'_>),
    {
        let mut buf = Vec::new();
        let mut scanned = 0u64;
        let mut err = None;
        self.log.scan(|addr, meta| {
            scanned += 1;
            if let Err(e) = self.with_record(addr, meta, &mut buf, &mut |r| f(r)) {
                err = Some(e);
                return false;
            }
            true
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(scanned),
        }
    }

    /// Time-window scan: FishStore has no time index, so this walks the
    /// log backward from the tail (newest segment first, records in log
    /// order within each segment) until an entire segment lies before the
    /// window start, scanning everything newer than the window along the
    /// way. Cost therefore grows with lookback distance (§6.4, Figure 17).
    pub fn time_window_scan<F>(&self, t_start: u64, t_end: u64, mut f: F) -> Result<u64>
    where
        F: FnMut(FsRecord<'_>),
    {
        let mut buf = Vec::new();
        let mut scanned = 0u64;
        for seq in (0..self.log.segment_count()).rev() {
            let mut seg_max_ts = 0u64;
            let mut seg_records = 0u64;
            let mut err = None;
            self.log.scan_segment(seq, &mut |addr, meta| {
                scanned += 1;
                seg_records += 1;
                seg_max_ts = seg_max_ts.max(meta.ts);
                if meta.ts >= t_start && meta.ts <= t_end {
                    if let Err(e) = self.with_record(addr, meta, &mut buf, &mut |r| f(r)) {
                        err = Some(e);
                        return false;
                    }
                }
                true
            })?;
            if let Some(e) = err {
                return Err(e);
            }
            if seg_records > 0 && seg_max_ts < t_start {
                break; // every older segment is entirely before the window
            }
        }
        Ok(scanned)
    }

    /// Exact-match PSF scan: walks the `(psf, value)` chain newest-first,
    /// optionally bounded by a time window.
    pub fn psf_scan<F>(
        &self,
        psf: PsfId,
        value: u64,
        window: Option<(u64, u64)>,
        mut f: F,
    ) -> Result<u64>
    where
        F: FnMut(FsRecord<'_>),
    {
        let Some(head) = self.directory.read().get(&(psf.0, value)).cloned() else {
            return Ok(0);
        };
        let mut addr = head.load(Ordering::Acquire);
        let mut buf = Vec::new();
        let mut scanned = 0u64;
        while addr != NIL_ADDR {
            let meta = match self.log.read_meta(addr)? {
                Some(m) => m,
                None => break, // racing with an in-flight ingest
            };
            scanned += 1;
            let in_window = window.is_none_or(|(s, e)| meta.ts >= s && meta.ts <= e);
            if window.is_some_and(|(s, _)| meta.ts < s) {
                break; // chains are newest-first; the rest is older
            }
            if in_window {
                self.with_record(addr, &meta, &mut buf, &mut |r| f(r))?;
            }
            // Find this record's prev pointer for the queried PSF.
            let mut next = NIL_ADDR;
            for i in 0..meta.psf_count as usize {
                let e = RecordMeta::psf_entry_offset(i);
                let mut id_buf = [0u8; 4];
                self.log.read_body(addr, e, &mut id_buf)?;
                let mut val_buf = [0u8; 8];
                self.log.read_body(addr, e + 8, &mut val_buf)?;
                if u32::from_le_bytes(id_buf) == psf.0 && u64::from_le_bytes(val_buf) == value {
                    next = self.log.read_word(addr, e + 16)?;
                    break;
                }
            }
            addr = next;
        }
        Ok(scanned)
    }
}

/// Re-exported error type.
pub type FishStoreError = LogError;
