//! The concurrent shared log (FasterLog-style).
//!
//! Many ingest threads reserve space with an atomic fetch-add on the
//! active segment's tail, write their record into the reserved range, and
//! publish it by storing the commit word. The thread whose reservation
//! overflows the segment seals it, hands it to the background flusher, and
//! installs a fresh segment. Sealed segments are written to the log file
//! at their base offset (addresses equal file offsets) and their memory is
//! dropped after eviction.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::sync::{Mutex, RwLock};
use crossbeam::channel::{unbounded, Sender};

use crate::record::{RecordMeta, HEADER_SIZE};
use crate::segment::Segment;

/// Errors from the shared log.
#[derive(Debug)]
pub enum LogError {
    /// An I/O error from the backing file.
    Io(std::io::Error),
    /// The record does not fit in one segment.
    TooLarge {
        /// Requested on-log size.
        size: usize,
        /// Segment capacity.
        max: usize,
    },
    /// The log has shut down.
    ShutDown,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "I/O error: {e}"),
            LogError::TooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds segment capacity {max}")
            }
            LogError::ShutDown => write!(f, "log has shut down"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, LogError>;

/// Where a segment's bytes currently live.
enum SegSlot {
    /// Still in memory (active or awaiting flush).
    InMemory(Arc<Segment>),
    /// Evicted; read from the file.
    Flushed,
}

/// The concurrent shared log.
pub struct SharedLog {
    file: File,
    segment_size: usize,
    /// Per-segment location, indexed by segment sequence number.
    slots: RwLock<Vec<SegSlot>>,
    /// The segment currently accepting reservations.
    active: RwLock<Arc<Segment>>,
    /// Bytes of the log durably in the file (contiguous prefix).
    flushed_upto: AtomicU64,
    flusher_tx: Sender<FlusherMsg>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

enum FlusherMsg {
    Seal(Arc<Segment>, u64 /* segment seq */),
    Shutdown,
}

/// A successful reservation: where to write one record.
pub struct Reservation {
    /// The segment holding the reservation.
    pub segment: Arc<Segment>,
    /// Offset of the record within the segment.
    pub offset: usize,
    /// Global log address of the record.
    pub addr: u64,
}

impl SharedLog {
    /// Creates a log backed by `path` with the given segment size.
    pub fn create(path: &Path, segment_size: usize) -> Result<Arc<SharedLog>> {
        assert!(segment_size >= 64 && segment_size.is_multiple_of(8));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let first = Arc::new(Segment::new(0, segment_size));
        let (tx, rx) = unbounded();
        let log = Arc::new(SharedLog {
            file,
            segment_size,
            slots: RwLock::named(
                "fishstore.slots",
                vec![SegSlot::InMemory(Arc::clone(&first))],
            ),
            active: RwLock::named("fishstore.active", first),
            flushed_upto: AtomicU64::new(0),
            flusher_tx: tx,
            flusher: Mutex::named("fishstore.flusher", None),
        });
        // The flusher holds only a weak handle so dropping the last strong
        // `Arc<SharedLog>` actually runs `Drop` (which shuts the thread
        // down) instead of leaking a reference cycle.
        let flusher_log = Arc::downgrade(&log);
        let handle = std::thread::Builder::new()
            .name("fishstore-flush".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        FlusherMsg::Seal(seg, seq) => match flusher_log.upgrade() {
                            Some(log) => log.flush_segment(&seg, seq),
                            None => break,
                        },
                        FlusherMsg::Shutdown => break,
                    }
                }
            })?;
        *log.flusher.lock() = Some(handle);
        Ok(log)
    }

    /// Segment size in bytes.
    pub fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Total bytes appended so far (upper bound; includes in-flight
    /// reservations).
    pub fn tail(&self) -> u64 {
        let active = self.active.read();
        let reserved = active.reserved.load(Ordering::Acquire);
        active.base() + reserved.min(active.capacity() as u64)
    }

    /// Bytes durably on storage.
    pub fn flushed_upto(&self) -> u64 {
        self.flushed_upto.load(Ordering::Acquire)
    }

    /// Reserves `size` bytes (8-byte aligned) for one record.
    ///
    /// Thread-safe; the common case is one fetch-add plus one shared-lock
    /// read of the active segment pointer.
    pub fn reserve(&self, size: usize) -> Result<Reservation> {
        assert_eq!(size % 8, 0, "reservations must be 8-byte aligned");
        if size > self.segment_size {
            return Err(LogError::TooLarge {
                size,
                max: self.segment_size,
            });
        }
        loop {
            let segment = Arc::clone(&self.active.read());
            let offset = segment.reserved.fetch_add(size as u64, Ordering::AcqRel);
            let end = offset + size as u64;
            if end <= segment.capacity() as u64 {
                return Ok(Reservation {
                    addr: segment.base() + offset,
                    offset: offset as usize,
                    segment,
                });
            }
            if offset <= segment.capacity() as u64 {
                // This thread's reservation is the first to overflow: it
                // seals the segment and installs a fresh one. The dead
                // range [offset, capacity) stays zeroed, which scanners
                // interpret as end-of-segment.
                segment.used.store(offset, Ordering::Release);
                let new_base = segment.base() + segment.capacity() as u64;
                let fresh = Arc::new(Segment::new(new_base, self.segment_size));
                let seq = segment.base() / self.segment_size as u64;
                {
                    let mut slots = self.slots.write();
                    debug_assert_eq!(slots.len() as u64, seq + 1);
                    slots.push(SegSlot::InMemory(Arc::clone(&fresh)));
                    *self.active.write() = fresh;
                }
                self.flusher_tx
                    .send(FlusherMsg::Seal(segment, seq))
                    .map_err(|_| LogError::ShutDown)?;
            } else {
                // Another thread is installing a new segment; wait for it.
                crate::sync::thread::yield_now();
            }
        }
    }

    /// Marks `size` bytes committed in `segment` (called after the commit
    /// word is stored).
    pub fn complete(&self, segment: &Segment, size: usize) {
        segment.committed.fetch_add(size as u64, Ordering::AcqRel);
    }

    /// Flusher: waits for all of a sealed segment's reservations to
    /// commit, writes it to the file, and evicts its memory.
    fn flush_segment(&self, segment: &Arc<Segment>, seq: u64) {
        let used = segment.used.load(Ordering::Acquire);
        while segment.committed.load(Ordering::Acquire) < used {
            crate::sync::thread::yield_now();
        }
        // Write the full capacity so file offsets stay aligned with
        // addresses; the dead tail is zeros.
        let mut buf = vec![0u8; segment.capacity()];
        segment.read(0, &mut buf);
        if self.file.write_all_at(&buf, segment.base()).is_err() {
            // Keep the segment in memory on I/O failure; reads still work.
            return;
        }
        self.flushed_upto.store(
            segment.base() + segment.capacity() as u64,
            Ordering::Release,
        );
        let mut slots = self.slots.write();
        slots[seq as usize] = SegSlot::Flushed;
    }

    /// Returns the in-memory segment covering `seq`, if any.
    fn segment_at(&self, seq: u64) -> Option<Arc<Segment>> {
        let slots = self.slots.read();
        match slots.get(seq as usize) {
            Some(SegSlot::InMemory(seg)) => Some(Arc::clone(seg)),
            _ => None,
        }
    }

    /// Number of segments ever created.
    pub fn segment_count(&self) -> u64 {
        self.slots.read().len() as u64
    }

    /// Reads a committed record's metadata at `addr`, if one exists.
    pub fn read_meta(&self, addr: u64) -> Result<Option<RecordMeta>> {
        let seq = addr / self.segment_size as u64;
        let offset = (addr % self.segment_size as u64) as usize;
        if let Some(seg) = self.segment_at(seq) {
            let word0 = seg.load_word(offset);
            if word0 == 0 {
                return Ok(None);
            }
            let ts = seg.load_word(offset + 8);
            return Ok(Some(RecordMeta::from_words(word0, ts)));
        }
        let mut buf = [0u8; HEADER_SIZE];
        self.file.read_exact_at(&mut buf, addr)?;
        let word0 = u64::from_le_bytes(buf[0..8].try_into().expect("len 8"));
        if word0 == 0 {
            return Ok(None);
        }
        let ts = u64::from_le_bytes(buf[8..16].try_into().expect("len 8"));
        Ok(Some(RecordMeta::from_words(word0, ts)))
    }

    /// Reads `dst.len()` bytes of a committed record's body starting at
    /// `addr + rel` (which must lie inside one segment).
    pub fn read_body(&self, addr: u64, rel: usize, dst: &mut [u8]) -> Result<()> {
        let seq = addr / self.segment_size as u64;
        let offset = (addr % self.segment_size as u64) as usize + rel;
        if let Some(seg) = self.segment_at(seq) {
            seg.read(offset, dst);
            return Ok(());
        }
        self.file.read_exact_at(dst, addr + rel as u64)?;
        Ok(())
    }

    /// Reads an 8-byte chain-pointer word of a committed record.
    pub fn read_word(&self, addr: u64, rel: usize) -> Result<u64> {
        let seq = addr / self.segment_size as u64;
        let offset = (addr % self.segment_size as u64) as usize + rel;
        if let Some(seg) = self.segment_at(seq) {
            return Ok(seg.load_word(offset));
        }
        let mut buf = [0u8; 8];
        self.file.read_exact_at(&mut buf, addr + rel as u64)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Scans segment `seq` forward, invoking `f(addr, meta)` for each
    /// committed record, stopping at the first uncommitted slot.
    ///
    /// Returns `false` if `f` requested an early stop.
    pub fn scan_segment<F>(&self, seq: u64, f: &mut F) -> Result<bool>
    where
        F: FnMut(u64, &RecordMeta) -> bool,
    {
        let base = seq * self.segment_size as u64;
        let in_mem = self.segment_at(seq);
        let mut file_buf = None;
        if in_mem.is_none() {
            let mut buf = vec![0u8; self.segment_size];
            self.file.read_exact_at(&mut buf, base)?;
            file_buf = Some(buf);
        }
        let mut offset = 0usize;
        while offset + HEADER_SIZE <= self.segment_size {
            let (word0, ts) = match (&in_mem, &file_buf) {
                (Some(seg), _) => (seg.load_word(offset), seg.load_word(offset + 8)),
                (None, Some(buf)) => (
                    u64::from_le_bytes(buf[offset..offset + 8].try_into().expect("len 8")),
                    u64::from_le_bytes(buf[offset + 8..offset + 16].try_into().expect("len 8")),
                ),
                (None, None) => unreachable!("segment is in memory or in the file"),
            };
            if word0 == 0 {
                break;
            }
            let meta = RecordMeta::from_words(word0, ts);
            if !f(base + offset as u64, &meta) {
                return Ok(false);
            }
            offset += meta.total_len as usize;
        }
        Ok(true)
    }

    /// Scans all segments forward (oldest first).
    pub fn scan<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(u64, &RecordMeta) -> bool,
    {
        let n = self.segment_count();
        for seq in 0..n {
            if !self.scan_segment(seq, &mut f)? {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Scans segments newest-first (within a segment, records come in log
    /// order). Used for time-window queries, which must walk back from the
    /// tail because the log has no time index.
    pub fn scan_reverse<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(u64, &RecordMeta) -> bool,
    {
        let n = self.segment_count();
        for seq in (0..n).rev() {
            if !self.scan_segment(seq, &mut f)? {
                return Ok(());
            }
        }
        Ok(())
    }
}

impl Drop for SharedLog {
    fn drop(&mut self) {
        let _ = self.flusher_tx.send(FlusherMsg::Shutdown);
        if let Some(h) = self.flusher.lock().take() {
            // The flusher transiently upgrades its weak handle and may
            // therefore run this drop on its own thread; joining
            // ourselves would deadlock, and the flusher exits right
            // after, so detach in that case.
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}
