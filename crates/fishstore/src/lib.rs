//! # FishStore-like baseline for the Loom reproduction
//!
//! A reimplementation of the algorithmic core of FishStore (Xie et al.,
//! SIGMOD 2019), the ingest-optimized log store the Loom paper compares
//! against: a concurrent shared log with FasterLog-style atomic tail
//! reservation, plus *predicated subset functions* (PSFs) that chain
//! records with equal property values into exact-match hash chains.
//!
//! Three properties matter for reproducing the paper's experiments:
//!
//! 1. **Multi-threaded ingest** scales with ingest threads (Figure 15) —
//!    reservation is one fetch-add; record publication is one release
//!    store of a commit word.
//! 2. **Exact PSF indexes** accelerate point lookups (Figures 13, 17)
//!    but cannot express ranges, data-dependent predicates, or
//!    arbitrary-lookback windows.
//! 3. **No time index**: time-window queries must scan the log backward
//!    from the tail, so latency grows with lookback (Figures 12, 17).

pub mod log;
pub mod record;
pub mod segment;
pub mod store;
pub mod sync;

pub use log::{LogError, Result, SharedLog};
pub use store::{FishStore, FishStoreConfig, FsRecord, PsfFn, PsfId};
