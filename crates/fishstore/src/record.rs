//! On-log record format of the FishStore-like baseline.
//!
//! ```text
//! word 0 (commit word): total_len:u32 | psf_count:u16 | source:u16
//! word 1:               arrival timestamp (ns)
//! psf entries (24 B each):
//!   psf_id:u32 | _pad:u32
//!   property value:u64
//!   prev record address in this (psf, value) chain : u64   (atomic slot)
//! payload length : u32, payload bytes, padding to 8-byte alignment
//! ```
//!
//! The commit word is written last with release ordering; a zero commit
//! word means "nothing committed here" (segments are zero-initialized).

/// Size of the fixed header (commit word + timestamp).
pub const HEADER_SIZE: usize = 16;

/// Size of one PSF chain entry.
pub const PSF_ENTRY_SIZE: usize = 24;

/// Sentinel "no previous record" chain pointer.
pub const NIL_ADDR: u64 = u64::MAX;

/// Maximum PSF entries per record.
pub const MAX_PSFS: usize = 16;

/// Decoded record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Total on-log size (header + PSF entries + padded payload).
    pub total_len: u32,
    /// Number of PSF entries.
    pub psf_count: u16,
    /// Source tag.
    pub source: u16,
    /// Arrival timestamp in nanoseconds.
    pub ts: u64,
}

impl RecordMeta {
    /// Packs the commit word.
    pub fn commit_word(&self) -> u64 {
        (self.total_len as u64) | ((self.psf_count as u64) << 32) | ((self.source as u64) << 48)
    }

    /// Unpacks a commit word (which must be non-zero) plus the timestamp.
    pub fn from_words(word0: u64, ts: u64) -> RecordMeta {
        RecordMeta {
            total_len: (word0 & 0xffff_ffff) as u32,
            psf_count: ((word0 >> 32) & 0xffff) as u16,
            source: ((word0 >> 48) & 0xffff) as u16,
            ts,
        }
    }

    /// Byte offset of PSF entry `i` relative to the record start.
    pub fn psf_entry_offset(i: usize) -> usize {
        HEADER_SIZE + i * PSF_ENTRY_SIZE
    }

    /// Byte offset of the payload relative to the record start.
    pub fn payload_offset(&self) -> usize {
        HEADER_SIZE + self.psf_count as usize * PSF_ENTRY_SIZE
    }

    /// Total on-log size of a record: header, PSF entries, a `u32` payload
    /// length prefix, the payload itself, and padding to 8-byte alignment.
    ///
    /// The explicit length prefix is needed because `total_len` includes
    /// the alignment padding.
    pub fn on_log_size(psf_count: usize, payload_len: usize) -> usize {
        let raw = HEADER_SIZE + psf_count * PSF_ENTRY_SIZE + 4 + payload_len;
        (raw + 7) & !7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_word_round_trips() {
        let m = RecordMeta {
            total_len: 4096,
            psf_count: 3,
            source: 7,
            ts: 999,
        };
        let got = RecordMeta::from_words(m.commit_word(), 999);
        assert_eq!(got, m);
    }

    #[test]
    fn sizes_are_aligned() {
        for psfs in 0..4 {
            for len in 0..64 {
                let size = RecordMeta::on_log_size(psfs, len);
                assert_eq!(size % 8, 0);
                assert!(size >= HEADER_SIZE + psfs * PSF_ENTRY_SIZE + 4 + len);
            }
        }
    }

    #[test]
    fn offsets_are_sequential() {
        assert_eq!(RecordMeta::psf_entry_offset(0), 16);
        assert_eq!(RecordMeta::psf_entry_offset(1), 40);
        let m = RecordMeta {
            total_len: 0,
            psf_count: 2,
            source: 0,
            ts: 0,
        };
        assert_eq!(m.payload_offset(), 64);
    }
}
