//! Synchronization facade for the crate's concurrent modules.
//!
//! Normal builds re-export the `std` primitives unchanged. Under
//! `--cfg conc_check` the same names resolve to `conc-check`'s
//! instrumented types so the model-check harness in
//! `tests/conc_check.rs` can exhaustively explore the shared-log tail
//! reservation protocol. Outside a model execution the instrumented
//! types degrade to plain `std` behavior. Concurrent code in this crate
//! imports atomics and yields from here, never from `std` directly.

#[cfg(not(conc_check))]
pub use std::sync::atomic;

#[cfg(conc_check)]
pub use conc_check::sync::atomic;

/// Model-only raw-buffer access annotations (free no-ops in normal
/// builds); see the loom crate's facade for details.
pub mod hint {
    #[cfg(conc_check)]
    pub use conc_check::sync::hint::{raw_read, raw_write};

    /// Raw shared-buffer read annotation: a model-run scheduling point,
    /// a free no-op here.
    #[cfg(not(conc_check))]
    #[inline(always)]
    pub fn raw_read(_loc: usize) {}

    /// Raw shared-buffer write annotation: a model-run scheduling
    /// point, a free no-op here.
    #[cfg(not(conc_check))]
    #[inline(always)]
    pub fn raw_write(_loc: usize) {}
}

/// Scheduler-yield, facaded so model runs treat it as a voluntary
/// (unpenalized) context switch.
pub mod thread {
    #[cfg(not(conc_check))]
    pub use std::thread::yield_now;

    #[cfg(conc_check)]
    pub use conc_check::sync::thread::yield_now;
}

/// Named locks with the `conc_check` runtime lock-order witness; see
/// the loom crate's facade docs. Lock-holding code in this crate
/// should import the lock types from here.
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
