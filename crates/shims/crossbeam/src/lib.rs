//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the multi-producer multi-consumer channel subset the workspace
//! uses (`unbounded`, `bounded`, cloneable `Sender`/`Receiver`, `send`,
//! `try_send`, `recv`, `try_recv`, `recv_timeout`, disconnect-on-drop) on a
//! `Mutex<VecDeque>` + two condvars. Crossbeam proper is lock-free; this shim
//! trades that for zero external dependencies while keeping identical
//! semantics, which is what the flusher/pipeline threads in this workspace
//! rely on.

/// Synchronization facade: `std` primitives normally, `conc-check`'s
/// instrumented ones under `--cfg conc_check`, so the channel protocol
/// itself (the code that once carried a real lost-wakeup bug) can be
/// model-checked by `tests/conc_check.rs`.
pub mod sync {
    pub use std::sync::Arc;

    #[cfg(not(conc_check))]
    pub use std::sync::{Condvar, Mutex};

    #[cfg(conc_check)]
    pub use conc_check::sync::{Condvar, Mutex};
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::time::{Duration, Instant};

    use crate::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
        /// Whether dropping the last receiver discards queued messages
        /// (crossbeam semantics; always true outside the model-check
        /// regression harness — see [`unbounded_leaky`]).
        discard_on_last_rx_drop: bool,
    }

    impl<T> Shared<T> {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Self::with_discard(cap, true)
        }

        fn with_discard(cap: Option<usize>, discard_on_last_rx_drop: bool) -> Arc<Self> {
            Arc::new(Shared {
                inner: Mutex::new(Inner {
                    queue: VecDeque::new(),
                    senders: 1,
                    receivers: 1,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                cap,
                discard_on_last_rx_drop,
            })
        }

        fn full(&self, inner: &Inner<T>) -> bool {
            self.cap.is_some_and(|c| inner.queue.len() >= c)
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(None);
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates a bounded MPMC channel. A capacity of zero is treated as one:
    /// the zero-capacity rendezvous channel is not needed by this workspace.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(Some(cap.max(1)));
        (Sender(shared.clone()), Receiver(shared))
    }

    /// An unbounded channel with the pre-fix last-receiver-drop behavior:
    /// queued messages are *kept* (leaked) instead of discarded, the bug
    /// the chaos harness found and PR "fault injection" fixed. Exists
    /// only so the model-check regression harness can prove the checker
    /// rediscovers that lost wakeup deterministically; never use it in
    /// product code.
    #[cfg(conc_check)]
    pub fn unbounded_leaky<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Shared::with_discard(None, false);
        (Sender(shared.clone()), Receiver(shared))
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued or every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if !self.0.full(&inner) {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.0.not_full.wait(inner).unwrap();
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if self.0.full(&inner) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone and the
        /// queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
                if res.timed_out() && inner.queue.is_empty() {
                    if inner.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Crossbeam proper discards queued messages once no receiver
                // can ever take them. Matching that matters when a message
                // carries a channel endpoint (e.g. a sync-ack `Sender`): if
                // it lingered in the queue until the senders also dropped,
                // the peer waiting on that endpoint would never wake.
                // (`discard_on_last_rx_drop` is false only for the
                // model-check regression channel that re-creates the
                // pre-fix behavior on purpose.)
                if self.0.discard_on_last_rx_drop {
                    let orphaned = std::mem::take(&mut inner.queue);
                    drop(inner);
                    drop(orphaned);
                } else {
                    drop(inner);
                }
                self.0.not_full.notify_all();
            }
        }
    }

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_backpressure_and_mpmc() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(tx.try_send(3).unwrap_err().is_full());
        let rx2 = rx.clone();
        assert_eq!(rx2.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        drop(rx2);
        assert!(tx.try_send(4).unwrap_err().is_disconnected());
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn dropping_last_receiver_discards_queued_messages() {
        let (tx, rx) = unbounded();
        let (ack_tx, ack_rx) = unbounded::<()>();
        tx.send(ack_tx).unwrap();
        drop(rx);
        // The queued message (holding the only ack sender) must die with
        // the last receiver, so the ack receiver observes disconnection
        // instead of blocking forever.
        assert_eq!(ack_rx.recv(), Err(RecvError));
        assert!(tx.send(unbounded::<()>().0).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = std::thread::spawn(move || tx.send(9).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
