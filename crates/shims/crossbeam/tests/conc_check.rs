//! Model-check harness for the channel disconnect protocol — the code
//! that carried this workspace's one known-real concurrency bug: before
//! the fault-injection PR's fix, dropping the last receiver kept queued
//! messages alive, so a sync-ack `Sender` queued in the flusher's
//! give-up window leaked and the writer blocked forever on its ack
//! receiver (a lost wakeup the chaos harness only found by scheduling
//! luck).
//!
//! Two harnesses: the fixed channel must survive exhaustive bounded
//! exploration; the same protocol over [`channel::unbounded_leaky`]
//! (the pre-fix behavior, kept compiled only under `conc_check`) must
//! fail deterministically, proving the checker re-finds the real bug.
//!
//! Compiled only under `--cfg conc_check`; run with:
//!
//! ```text
//! RUSTFLAGS="--cfg conc_check" cargo test -p crossbeam --test conc_check
//! ```
#![cfg(conc_check)]

use conc_check::sync::thread;
use conc_check::{Checker, FailureKind};
use crossbeam::channel::{self, Receiver, Sender};

/// The PR-4 scenario, miniaturized: a writer sends a sync ack-sender to
/// a flusher that may give up (drop its receiver) at any point, then
/// blocks on the ack receiver. Exactly what `hybridlog::log`'s
/// `flush_inner` does on shutdown.
fn sync_ack_protocol(make: fn() -> (Sender<Sender<()>>, Receiver<Sender<()>>)) {
    let (tx, rx) = make();
    let flusher = thread::spawn(move || {
        // Give-up window: the flusher drops its endpoint without
        // draining, racing the writer's send below.
        drop(rx);
    });
    let (ack_tx, ack_rx) = channel::unbounded::<()>();
    match tx.send(ack_tx) {
        // The ack sender is now either queued (receiver alive at send
        // time) or owned by us having failed. Either way the writer's
        // wait must terminate: recv may only return, never block
        // forever.
        Ok(()) => {
            let _ = ack_rx.recv();
        }
        Err(_) => {}
    }
    flusher.join().unwrap();
}

/// With the disconnect fix (last receiver drop discards the queue), no
/// interleaving can strand the writer.
#[test]
fn disconnect_discards_queued_acks() {
    let report = Checker::new()
        .with_preemption_bound(3)
        .max_schedules(300_000)
        .check(|| sync_ack_protocol(channel::unbounded))
        .expect("fixed disconnect protocol must have no failing interleaving");
    assert!(report.schedules > 5);
}

/// Regression: with the fix reverted (`unbounded_leaky` keeps queued
/// messages on last-receiver drop), the checker must deterministically
/// rediscover the lost wakeup — the writer deadlocked on a condvar wait
/// nobody can ever notify — within the schedule bound, and the failing
/// schedule must replay.
#[test]
fn reverted_fix_lost_wakeup_is_found() {
    let failure = Checker::new()
        .with_preemption_bound(3)
        .check(|| sync_ack_protocol(channel::unbounded_leaky))
        .expect_err("the pre-fix lost wakeup must be rediscovered");
    // Printable replay: kind, schedule index, per-thread block reasons,
    // and the exact scheduling trace to hand to `replay_trace`.
    println!("rediscovered PR-4 lost wakeup:\n{failure}");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("condvar"), "{failure}");

    let replayed = Checker::new()
        .replay_trace(&failure.trace, || {
            sync_ack_protocol(channel::unbounded_leaky)
        })
        .expect_err("the failing schedule must reproduce on replay");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}
