//! Offline stand-in for the `criterion` crate.
//!
//! Implements the measurement surface the workspace benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`). Instead of criterion's statistical analysis it runs a
//! short warmup, then times a fixed measurement window and prints mean
//! ns/iter plus derived throughput. Good enough for relative comparisons;
//! not a replacement for criterion's outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for a warmup, then measures a fixed window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup_end = Instant::now() + WARMUP;
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let measure_end = start + MEASURE;
        while Instant::now() < measure_end {
            // Batch between clock reads so the timer is off the hot path.
            for _ in 0..BATCH {
                std::hint::black_box(routine());
            }
            iters += BATCH;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);
const BATCH: u64 = 16;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<44} (no measurement: Bencher::iter never called)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let bytes_per_sec = n as f64 * 1e9 / ns_per_iter;
            format!("  {:>10.1} MiB/s", bytes_per_sec / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            let elems_per_sec = n as f64 * 1e9 / ns_per_iter;
            format!("  {:>10.0} elem/s", elems_per_sec)
        }
        None => String::new(),
    };
    println!("{label:<44} {ns_per_iter:>12.1} ns/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
