//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides `Rng::{random, random_range, random_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` backed by xoshiro256++
//! seeded through SplitMix64. Statistical quality is more than adequate for
//! the synthetic workload generators and tests in this workspace; it is NOT
//! a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// User-facing random-value interface, mirroring rand 0.9 method names.
pub trait Rng: RngCore {
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the full value domain.
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_lossless)]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::random(rng) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full u128 domain: only reachable for u128/i128 aliases.
                    return u128::random(rng) as $t;
                }
                let offset = u128::random(rng) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f: $t = Random::random(rng);
                self.start + f * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f: $t = Random::random(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 like rand's `StdRng`
    /// contract (deterministic for a given `seed_from_u64` input).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                // SplitMix64 step.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(0..16);
            assert!((0..16).contains(&v));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn unsized_rng_param() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(1..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!((1..100).contains(&draw(&mut rng)));
    }
}
