//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `Strategy` with
//! `prop_map`, `any::<T>()`, `Just`, tuple/range strategies,
//! `collection::{vec, btree_set}`, `prop_oneof!` (weighted), and
//! `prop_assert!`/`prop_assert_eq!` returning `TestCaseError`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! case number), and there is NO shrinking — a failure reports the exact
//! inputs of the failing case instead of a minimized counterexample.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property: carries the rendered assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError(message.into())
        }

        /// Mirrors proptest's `TestCaseError::Reject` loosely: rejected
        /// cases are treated as failures here (no strategy filtering is
        /// implemented, so rejects should not occur).
        pub fn reject<S: Into<String>>(message: S) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The concrete RNG handed to strategies (keeps `Strategy` object-safe).
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Deterministic seed per (test name, case index): reruns of a
        /// failing test replay the identical input sequence.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng(rand::rngs::StdRng::seed_from_u64(seed))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// just draws one value per case.
    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            (**self).sample_value(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Weighted choice between boxed alternative strategies
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        pub fn arm<S>(mut self, weight: u32, strategy: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            self.arms.push((weight, Box::new(strategy)));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            let mut pick = rng.random_range(0..total);
            for (weight, strategy) in &self.arms {
                if pick < *weight {
                    return strategy.sample_value(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::Rng;
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below target; retry a bounded
            // number of times (sparse domains make exact sizes cheap).
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20) + 64 {
                set.insert(self.element.sample_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __sampled = $crate::strategy::Strategy::sample_value(&($strategy), &mut __rng);
                        {
                            use ::std::fmt::Write as _;
                            if !__inputs.is_empty() {
                                __inputs.push_str(", ");
                            }
                            let _ = ::core::write!(__inputs, "{} = {:?}", stringify!($arg), &__sampled);
                        }
                        let $arg = __sampled;
                    )*
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__err) = __result {
                        ::core::panic!(
                            "proptest {} failed at case {}/{}\n  inputs: {}\n  {}",
                            stringify!($name),
                            __case,
                            __cases,
                            __inputs,
                            __err,
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (or any function returning
/// `Result<_, TestCaseError>`), reporting the failing inputs on error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            __left, __right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                            ::std::format!($($fmt)+), __left, __right
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!("assertion failed: `left != right`\n  both: `{:?}`", __left),
                    ));
                }
            }
        }
    };
}

/// Weighted choice between strategies producing the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()
            $(.arm(($weight) as u32, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()
            $(.arm(1u32, $strategy))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < u64::MAX, "x = {}", x);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..100, f in -1.0..1.0f64, win in (0usize..10, 0usize..10)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(win.0 < 10 && win.1 < 10);
            helper(x as u64)?;
        }

        #[test]
        fn collections_respect_size_bounds(
            v in crate::collection::vec(any::<u8>(), 3..6),
            s in crate::collection::btree_set(0u32..1_000_000, 2..12),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!((2..12).contains(&s.len()));
        }

        #[test]
        fn oneof_and_map_compose(choice in prop_oneof![
            3 => (0u8..10).prop_map(|x| x as u16),
            1 => Just(999u16),
        ]) {
            prop_assert!(choice < 10 || choice == 999);
            prop_assert_eq!(choice, choice);
            prop_assert_ne!(choice, 1000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(any::<u64>(), 4..9);
        let a = s.sample_value(&mut TestRng::for_case("t", 5));
        let b = s.sample_value(&mut TestRng::for_case("t", 5));
        assert_eq!(a, b);
    }
}
