//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment resolves crates from an in-tree path, so this crate
//! re-exposes the subset of the `parking_lot` API the workspace uses
//! (`Mutex`, `RwLock` with non-poisoning `lock`/`read`/`write`) on top of
//! `std::sync`. Poisoned locks are recovered transparently: `parking_lot`
//! has no poisoning, so a panic while holding a lock must not wedge every
//! later acquisition.

use std::fmt;
use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
