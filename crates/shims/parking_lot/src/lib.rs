//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment resolves crates from an in-tree path, so this crate
//! re-exposes the subset of the `parking_lot` API the workspace uses
//! (`Mutex`, `RwLock` with non-poisoning `lock`/`read`/`write`) on top of
//! `std::sync`. Poisoned locks are recovered transparently: `parking_lot`
//! has no poisoning, so a panic while holding a lock must not wedge every
//! later acquisition.
//!
//! Beyond the stand-in API, locks can carry a *class name*
//! ([`Mutex::named`] / [`RwLock::named`]). Plain builds ignore the name;
//! under `--cfg conc_check` every acquisition of a named lock feeds the
//! [`witness`] lock-order witness, which panics on ordering inversions
//! with both acquisition stacks. The workspace's long-lived locks are
//! all named (see `results/lock_order.txt` for the static order graph
//! this runtime witness backs up).

use std::fmt;
use std::sync::{self, TryLockError};

#[cfg(conc_check)]
pub mod witness;

#[cfg(not(conc_check))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
#[cfg(not(conc_check))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
#[cfg(not(conc_check))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Witness-carrying guard wrappers. Field order matters: the std guard
/// drops (releasing the lock) before the witness token pops the held
/// stack, so the stack never understates what is held.
#[cfg(conc_check)]
macro_rules! witness_guard {
    ($name:ident, $inner:ident, $($mut_:tt)?) => {
        pub struct $name<'a, T: ?Sized> {
            inner: sync::$inner<'a, T>,
            _token: witness::Held,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        $(
            impl<T: ?Sized> std::ops::$mut_ for $name<'_, T> {
                fn deref_mut(&mut self) -> &mut T {
                    &mut self.inner
                }
            }
        )?

        impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

#[cfg(conc_check)]
witness_guard!(MutexGuard, MutexGuard, DerefMut);
#[cfg(conc_check)]
witness_guard!(RwLockReadGuard, RwLockReadGuard,);
#[cfg(conc_check)]
witness_guard!(RwLockWriteGuard, RwLockWriteGuard, DerefMut);

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg_attr(not(conc_check), allow(dead_code))]
    name: &'static str,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self::named("", value)
    }

    /// A mutex carrying a lock-order class name for the `conc_check`
    /// runtime witness (plain builds store and ignore it). Name
    /// convention: `crate.field`, matching `results/lock_order.txt`.
    pub const fn named(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(conc_check)]
        {
            let _token = witness::acquire(self.name);
            return MutexGuard {
                inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
                _token,
            };
        }
        #[cfg(not(conc_check))]
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(conc_check)]
        return Some(MutexGuard {
            _token: witness::acquire_try(self.name),
            inner: g,
        });
        #[cfg(not(conc_check))]
        Some(g)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg_attr(not(conc_check), allow(dead_code))]
    name: &'static str,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self::named("", value)
    }

    /// An rwlock carrying a lock-order class name for the `conc_check`
    /// runtime witness (plain builds store and ignore it). Readers and
    /// writers share the class: a read-side inversion still deadlocks
    /// against a queued writer.
    pub const fn named(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(conc_check)]
        {
            let _token = witness::acquire(self.name);
            return RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
                _token,
            };
        }
        #[cfg(not(conc_check))]
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(conc_check)]
        {
            let _token = witness::acquire(self.name);
            return RwLockWriteGuard {
                inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
                _token,
            };
        }
        #[cfg(not(conc_check))]
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(conc_check)]
        return Some(RwLockReadGuard {
            _token: witness::acquire_try(self.name),
            inner: g,
        });
        #[cfg(not(conc_check))]
        Some(g)
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(conc_check)]
        return Some(RwLockWriteGuard {
            _token: witness::acquire_try(self.name),
            inner: g,
        });
        #[cfg(not(conc_check))]
        Some(g)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable usable with this crate's [`MutexGuard`]
/// (std's `Condvar` API minus poisoning, like `parking_lot`'s).
///
/// Under `conc_check` the witness token rides along in the guard and
/// stays on the held stack through the wait: the thread is blocked and
/// acquires nothing meanwhile, and on wake it holds the mutex again,
/// so the stack never misleads the inversion check.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(conc_check)]
        {
            let MutexGuard { inner, _token } = guard;
            let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            return MutexGuard { inner, _token };
        }
        #[cfg(not(conc_check))]
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, sync::WaitTimeoutResult) {
        #[cfg(conc_check)]
        {
            let MutexGuard { inner, _token } = guard;
            let (inner, res) = self
                .0
                .wait_timeout(inner, dur)
                .unwrap_or_else(|e| e.into_inner());
            return (MutexGuard { inner, _token }, res);
        }
        #[cfg(not(conc_check))]
        self.0
            .wait_timeout(guard, dur)
            .unwrap_or_else(|e| e.into_inner())
    }
}

pub use sync::WaitTimeoutResult;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn named_locks_roundtrip() {
        let m = Mutex::named("test.m", 1);
        let l = RwLock::named("test.l", 2);
        let a = m.lock();
        let b = l.read();
        assert_eq!(*a + *b, 3);
    }
}
