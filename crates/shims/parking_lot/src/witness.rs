//! Runtime lock-order witness (`--cfg conc_check` builds only).
//!
//! The static lock-order pass in `crates/lint` proves ordering for
//! acquisitions it can see *within one function*; this witness is its
//! runtime partner, catching cross-function nesting on real
//! executions. Every [`Mutex::named`]/[`RwLock::named`] acquisition
//! pushes its class name onto a thread-local held-lock stack and
//! records `held -> acquired` edges in a process-global order table.
//! Acquiring a lock when the table already shows a path from its class
//! back to a currently-held class is an inversion: two threads running
//! the two orders concurrently can deadlock. The witness panics
//! immediately, printing the current acquisition stack and the stack
//! that established the reverse order — turning a once-in-a-year hang
//! into a deterministic test failure.
//!
//! Design notes:
//! - Classes are *names*, not instances (like lockdep): every
//!   `named("loom.registry", …)` lock shares one node, so an order
//!   learned on one engine instance protects all others.
//! - Same-class nesting is permitted (the static pass also skips
//!   self-edges); ordering within a class needs protocol-level
//!   reasoning the witness cannot see.
//! - `try_lock` acquisitions join the held stack (later blocking
//!   acquisitions underneath them are real nesting) but neither record
//!   edges nor trip the inversion check: a failed try degrades
//!   gracefully instead of blocking, so it cannot close a deadlock
//!   cycle by itself.
//! - Unnamed locks (plain `new`) are untracked.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

thread_local! {
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// `a -> (b -> held stack recorded when a->b was first seen)`.
type Edges = HashMap<&'static str, HashMap<&'static str, Vec<&'static str>>>;

fn order() -> &'static Mutex<Edges> {
    static ORDER: OnceLock<Mutex<Edges>> = OnceLock::new();
    ORDER.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Path from `from` to `to` in the order graph, if any.
fn path(edges: &Edges, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
    let mut stack = vec![vec![from]];
    let mut seen = vec![from];
    while let Some(p) = stack.pop() {
        let last = *p.last().expect("path is never empty");
        if last == to {
            return Some(p);
        }
        if let Some(next) = edges.get(last) {
            for &n in next.keys() {
                if !seen.contains(&n) {
                    seen.push(n);
                    let mut q = p.clone();
                    q.push(n);
                    stack.push(q);
                }
            }
        }
    }
    None
}

/// RAII token returned by an acquisition; dropping it pops the held
/// stack. An empty name is an untracked (unnamed) lock.
pub struct Held {
    name: &'static str,
}

impl Drop for Held {
    fn drop(&mut self) {
        if self.name.is_empty() {
            return;
        }
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Guards may drop out of acquisition order; pop the most
            // recent matching entry, not necessarily the top.
            if let Some(pos) = held.iter().rposition(|&n| n == self.name) {
                held.remove(pos);
            }
        });
    }
}

/// Records a blocking acquisition of lock class `name`: checks for an
/// inversion against everything currently held, records the new
/// ordering edges, and pushes the class onto the held stack.
///
/// Panics on inversion, printing both acquisition stacks.
pub fn acquire(name: &'static str) -> Held {
    if name.is_empty() {
        return Held { name };
    }
    let held_now: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
    if !held_now.is_empty() {
        // Check + record under the table lock, but panic outside it so
        // a caught inversion panic (tests use catch_unwind) cannot
        // poison the table for the rest of the process.
        let mut inversion = None;
        {
            let mut edges = order().lock().unwrap_or_else(|e| e.into_inner());
            for &a in &held_now {
                if a == name {
                    continue;
                }
                if let Some(p) = path(&edges, name, a) {
                    let first_hop = edges
                        .get(name)
                        .and_then(|m| m.get(p.get(1).copied().unwrap_or(a)))
                        .cloned()
                        .unwrap_or_default();
                    inversion = Some((a, p, first_hop));
                    break;
                }
            }
            if inversion.is_none() {
                for &a in &held_now {
                    if a != name {
                        edges
                            .entry(a)
                            .or_default()
                            .entry(name)
                            .or_insert_with(|| held_now.clone());
                    }
                }
            }
        }
        if let Some((a, p, recorded)) = inversion {
            panic!(
                "lock-order inversion: acquiring `{name}` while holding `{a}`, but the \
                 recorded order is {p:?}\n  this thread holds (oldest first): {held_now:?}\n  \
                 the {name:?}-first order was established while holding: {recorded:?}"
            );
        }
    }
    HELD.with(|h| h.borrow_mut().push(name));
    Held { name }
}

/// Records a successful `try_*` acquisition: joins the held stack but
/// records no edges and trips no inversion check (a failed try cannot
/// block, so a try-site cannot close a deadlock cycle by itself).
pub fn acquire_try(name: &'static str) -> Held {
    if !name.is_empty() {
        HELD.with(|h| h.borrow_mut().push(name));
    }
    Held { name }
}
