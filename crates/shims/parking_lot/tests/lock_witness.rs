//! Teeth tests for the `conc_check` lock-order witness: seed a real
//! inversion and assert the witness *catches* it, so a witness
//! regression cannot silently pass the instrumented builds.
//!
//! The witness's order table and held stacks are process-global, so
//! every scenario here uses its own lock-class names; tests stay
//! independent whatever order the harness runs them in.
#![cfg(conc_check)]

use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn consistent_order_is_silent() {
    let a = Mutex::named("t1.a", ());
    let b = Mutex::named("t1.b", ());
    for _ in 0..3 {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
}

#[test]
fn inversion_panics_with_both_stacks() {
    let a = Mutex::named("t2.a", ());
    let b = Mutex::named("t2.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }))
    .expect_err("witness must catch the a/b inversion");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lock-order inversion"), "{msg}");
    assert!(msg.contains("t2.a") && msg.contains("t2.b"), "{msg}");
    assert!(msg.contains("this thread holds"), "{msg}");
}

#[test]
fn transitive_inversion_is_caught() {
    let a = RwLock::named("t3.a", ());
    let b = Mutex::named("t3.b", ());
    let c = Mutex::named("t3.c", ());
    {
        let _ga = a.write();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // c -> a closes the cycle a -> b -> c -> a.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gc = c.lock();
        let _ga = a.read();
    }))
    .expect_err("witness must catch the transitive inversion");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lock-order inversion"), "{msg}");
}

#[test]
fn same_class_nesting_is_permitted() {
    // Two instances of one class (e.g. per-shard manifests) may nest;
    // ordering within a class is protocol-level, not witness-level.
    let a1 = Mutex::named("t4.manifest", 1);
    let a2 = Mutex::named("t4.manifest", 2);
    let g1 = a1.lock();
    let g2 = a2.lock();
    assert_eq!(*g1 + *g2, 3);
}

#[test]
fn try_lock_does_not_record_edges() {
    let a = Mutex::named("t5.a", ());
    let b = Mutex::named("t5.b", ());
    {
        // try-acquire b under a: held stack grows, but no a->b edge.
        let _ga = a.lock();
        let _gb = b.try_lock().expect("uncontended");
    }
    // The reverse blocking order must therefore still be allowed.
    let _gb = b.lock();
    let _ga = a.lock();
}

#[test]
fn unnamed_locks_are_untracked() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let _gb = b.lock();
    let _ga = a.lock();
}
