//! B+tree correctness tests: model-based insert/get/scan, append-mode
//! bulk loads, splits, persistence, and reopen.

use std::collections::BTreeMap;

use btree::{BTree, BTreeConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("btree-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d.join("tree.db")
}

#[test]
fn insert_get_small() {
    let mut t = BTree::open(BTreeConfig::new(tmp("small"))).unwrap();
    t.insert(b"b", b"2").unwrap();
    t.insert(b"a", b"1").unwrap();
    t.insert(b"c", b"3").unwrap();
    assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
    assert_eq!(t.get(b"b").unwrap(), Some(b"2".to_vec()));
    assert_eq!(t.get(b"c").unwrap(), Some(b"3".to_vec()));
    assert_eq!(t.get(b"d").unwrap(), None);
    assert_eq!(t.len(), 3);
}

#[test]
fn overwrite_replaces_value() {
    let mut t = BTree::open(BTreeConfig::new(tmp("overwrite"))).unwrap();
    t.insert(b"k", b"old").unwrap();
    t.insert(b"k", b"new").unwrap();
    assert_eq!(t.get(b"k").unwrap(), Some(b"new".to_vec()));
    assert_eq!(t.len(), 1);
}

#[test]
fn random_inserts_match_model_across_splits() {
    // Small pages force deep trees and many splits.
    let mut t = BTree::open(BTreeConfig::new(tmp("model")).with_page_size(256)).unwrap();
    let mut model = BTreeMap::new();
    let mut x: u64 = 42;
    for _ in 0..5_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = format!("key-{:08}", x % 3_000).into_bytes();
        let value = (x % 100_000).to_be_bytes().to_vec();
        t.insert(&key, &value).unwrap();
        model.insert(key, value);
    }
    assert_eq!(t.len(), model.len() as u64);
    for (k, v) in &model {
        assert_eq!(
            t.get(k).unwrap().as_ref(),
            Some(v),
            "key {:?}",
            String::from_utf8_lossy(k)
        );
    }
    // Full scan in order.
    let mut got = Vec::new();
    t.scan(None, None, |k, v| {
        got.push((k.to_vec(), v.to_vec()));
        true
    })
    .unwrap();
    let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, expected);
}

#[test]
fn range_scan_bounds_are_respected() {
    let mut t = BTree::open(BTreeConfig::new(tmp("range")).with_page_size(256)).unwrap();
    for i in 0..1_000u32 {
        t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let lo = 100u32.to_be_bytes();
    let hi = 200u32.to_be_bytes();
    let mut got = Vec::new();
    t.scan(Some(&lo), Some(&hi), |k, _| {
        got.push(u32::from_be_bytes(k.try_into().unwrap()));
        true
    })
    .unwrap();
    assert_eq!(got, (100..200).collect::<Vec<_>>());
}

#[test]
fn append_mode_bulk_load_matches_inserts() {
    let mut t = BTree::open(BTreeConfig::new(tmp("append")).with_page_size(256)).unwrap();
    for i in 0..10_000u32 {
        t.append(&i.to_be_bytes(), &(i * 2).to_le_bytes()).unwrap();
    }
    assert_eq!(t.len(), 10_000);
    for i in (0..10_000u32).step_by(173) {
        assert_eq!(
            t.get(&i.to_be_bytes()).unwrap(),
            Some((i * 2).to_le_bytes().to_vec())
        );
    }
    let mut n = 0u32;
    t.scan(None, None, |k, _| {
        assert_eq!(u32::from_be_bytes(k.try_into().unwrap()), n);
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 10_000);
}

#[test]
fn append_rejects_non_increasing_keys() {
    let mut t = BTree::open(BTreeConfig::new(tmp("append-order"))).unwrap();
    t.append(b"b", b"1").unwrap();
    assert!(t.append(b"b", b"2").is_err());
    assert!(t.append(b"a", b"3").is_err());
    t.append(b"c", b"4").unwrap();
}

#[test]
fn append_then_insert_interoperate() {
    let mut t = BTree::open(BTreeConfig::new(tmp("mixed")).with_page_size(256)).unwrap();
    for i in (0..2_000u32).step_by(2) {
        t.append(&i.to_be_bytes(), b"even").unwrap();
    }
    for i in (1..2_000u32).step_by(2) {
        t.insert(&i.to_be_bytes(), b"odd").unwrap();
    }
    assert_eq!(t.len(), 2_000);
    let mut n = 0u32;
    t.scan(None, None, |k, v| {
        assert_eq!(u32::from_be_bytes(k.try_into().unwrap()), n);
        assert_eq!(
            v,
            if n.is_multiple_of(2) {
                b"even".as_slice()
            } else {
                b"odd"
            }
        );
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 2_000);
}

#[test]
fn persistence_across_reopen() {
    let path = tmp("reopen");
    {
        let mut t = BTree::open(BTreeConfig::new(&path).with_page_size(512)).unwrap();
        for i in 0..3_000u32 {
            t.insert(&i.to_be_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        t.commit().unwrap();
    }
    let mut t = BTree::open(BTreeConfig::new(&path).with_page_size(512)).unwrap();
    assert_eq!(t.len(), 3_000);
    for i in (0..3_000u32).step_by(61) {
        assert_eq!(
            t.get(&i.to_be_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes())
        );
    }
    // Appends continue to work after reopen.
    t.append(&5_000u32.to_be_bytes(), b"post").unwrap();
    assert_eq!(
        t.get(&5_000u32.to_be_bytes()).unwrap(),
        Some(b"post".to_vec())
    );
}

#[test]
fn oversized_entries_are_rejected() {
    let mut t = BTree::open(BTreeConfig::new(tmp("oversize")).with_page_size(256)).unwrap();
    assert!(t.insert(b"k", &vec![0u8; 500]).is_err());
    assert!(t.insert(b"", b"v").is_err());
    assert!(t.append(b"k", &vec![0u8; 500]).is_err());
}

#[test]
fn scan_early_stop() {
    let mut t = BTree::open(BTreeConfig::new(tmp("stop"))).unwrap();
    for i in 0..100u32 {
        t.insert(&i.to_be_bytes(), b"v").unwrap();
    }
    let mut n = 0;
    t.scan(None, None, |_, _| {
        n += 1;
        n < 7
    })
    .unwrap();
    assert_eq!(n, 7);
}

#[test]
fn empty_tree_behaves() {
    let mut t = BTree::open(BTreeConfig::new(tmp("empty"))).unwrap();
    assert!(t.is_empty());
    assert_eq!(t.get(b"x").unwrap(), None);
    let mut n = 0;
    t.scan(None, None, |_, _| {
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 0);
}
