//! Property-based tests: the B+tree must behave exactly like a
//! `BTreeMap` model for arbitrary insert sequences, across splits,
//! commits, and reopens; append mode must agree with insert mode.

use std::collections::BTreeMap;

use proptest::prelude::*;

use btree::{BTree, BTreeConfig};

fn unique_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "btree-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d.join("t.db")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inserts_match_btreemap_model(
        entries in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..500),
        commit_every in 1usize..100,
    ) {
        // Small pages force deep trees and frequent splits.
        let path = unique_path();
        let mut tree = BTree::open(BTreeConfig::new(&path).with_page_size(128)).unwrap();
        let mut model = BTreeMap::new();
        for (i, (k, v)) in entries.iter().enumerate() {
            let key = k.to_be_bytes().to_vec();
            let value = vec![*v; 2];
            tree.insert(&key, &value).unwrap();
            model.insert(key, value);
            if i % commit_every == 0 {
                tree.commit().unwrap();
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);

        // Scan order and contents equal the model.
        let mut got = Vec::new();
        tree.scan(None, None, |k, v| {
            got.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&got, &expected);

        // Reopen: everything committed must survive; commit first so all is.
        tree.commit().unwrap();
        drop(tree);
        let mut tree = BTree::open(BTreeConfig::new(&path).with_page_size(128)).unwrap();
        for (k, v) in &model {
            let got = tree.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    #[test]
    fn append_equals_sorted_insert(
        raw_keys in proptest::collection::btree_set(any::<u32>(), 1..300),
    ) {
        let keys: Vec<u32> = raw_keys.into_iter().collect();
        let path_a = unique_path();
        let path_b = unique_path();
        let mut appended = BTree::open(BTreeConfig::new(&path_a).with_page_size(128)).unwrap();
        let mut inserted = BTree::open(BTreeConfig::new(&path_b).with_page_size(128)).unwrap();
        for k in &keys {
            let key = k.to_be_bytes();
            appended.append(&key, &key).unwrap();
            inserted.insert(&key, &key).unwrap();
        }
        prop_assert_eq!(appended.len(), inserted.len());
        let collect = |t: &mut BTree| {
            let mut v = Vec::new();
            t.scan(None, None, |k, val| {
                v.push((k.to_vec(), val.to_vec()));
                true
            })
            .unwrap();
            v
        };
        prop_assert_eq!(collect(&mut appended), collect(&mut inserted));
    }
}
