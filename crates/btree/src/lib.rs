//! # Persistent B+tree (LMDB stand-in)
//!
//! A single-writer, page-based persistent B+tree used as the Loom
//! paper's LMDB baseline in Figure 15. It provides the normal
//! descent-and-split insert path plus an `MDB_APPEND`-style fast path
//! for sorted bulk loads (the fastest way to ingest sequential telemetry
//! into LMDB, and the configuration the paper benchmarks).
//!
//! The engine demonstrates why tree construction cannot keep up with
//! HFT ingest: every insert pays page-local sorting and periodic split
//! costs, and durability requires rewriting whole pages.

pub mod node;
pub mod tree;

pub use node::Node;
pub use tree::{BTree, BTreeConfig};
