//! The persistent B+tree engine (LMDB stand-in).
//!
//! A single-writer, page-based B+tree over a file. Parsed nodes live in
//! an in-memory cache (standing in for LMDB's memory map); `commit`
//! serializes dirty pages. Two ingest paths exist, mirroring LMDB:
//!
//! * [`BTree::insert`] — the normal descent-and-split path;
//! * [`BTree::append`] — the `MDB_APPEND` analog for sorted bulk loads,
//!   which fills the rightmost leaf and splits by starting fresh right
//!   siblings instead of moving half the entries (the fastest way to
//!   load sequential data into LMDB, used by Figure 15).

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

use crate::node::{Node, NO_PAGE};

/// Magic value for the meta page.
const MAGIC: u64 = 0x4254_5245_4550_4721; // "BTREEPG!"

/// Configuration for a [`BTree`].
#[derive(Debug, Clone)]
pub struct BTreeConfig {
    /// Backing file path.
    pub path: PathBuf,
    /// Page size in bytes.
    pub page_size: usize,
    /// Commit automatically every `auto_commit_every` mutations
    /// (0 disables auto-commit).
    pub auto_commit_every: u64,
}

impl BTreeConfig {
    /// Default configuration: 4 KiB pages, auto-commit every 64k writes
    /// (approximating LMDB transaction batching).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        BTreeConfig {
            path: path.into(),
            page_size: 4096,
            auto_commit_every: 65_536,
        }
    }

    /// Overrides the page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }
}

/// A persistent B+tree.
pub struct BTree {
    file: File,
    config: BTreeConfig,
    cache: HashMap<u64, Node>,
    dirty: HashSet<u64>,
    root: u64,
    next_page: u64,
    count: u64,
    writes_since_commit: u64,
    /// Rightmost path for the append fast path: page ids from root to the
    /// rightmost leaf. Rebuilt lazily.
    right_path: Vec<u64>,
    /// Largest key ever inserted (append-order enforcement).
    max_key: Option<Vec<u8>>,
}

impl BTree {
    /// Opens (creating if necessary) a tree at `config.path`.
    pub fn open(config: BTreeConfig) -> io::Result<BTree> {
        assert!(config.page_size >= 64, "page size too small");
        if let Some(parent) = config.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&config.path)?;
        let len = file.metadata()?.len();
        let mut tree = BTree {
            file,
            cache: HashMap::new(),
            dirty: HashSet::new(),
            root: 1,
            next_page: 2,
            count: 0,
            writes_since_commit: 0,
            right_path: Vec::new(),
            max_key: None,
            config,
        };
        if len >= tree.config.page_size as u64 {
            tree.read_meta()?;
        } else {
            // Fresh tree: page 0 is meta, page 1 an empty leaf root.
            tree.cache.insert(1, Node::empty_leaf());
            tree.dirty.insert(1);
            tree.commit()?;
        }
        Ok(tree)
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest key currently stored.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.max_key.as_deref()
    }

    /// The maximum key+value size storable on one page.
    pub fn max_entry_size(&self) -> usize {
        self.config.page_size / 4
    }

    fn check_entry(&self, key: &[u8], value: &[u8]) -> io::Result<()> {
        if key.is_empty() || key.len() + value.len() > self.max_entry_size() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "entry of {} bytes outside (0, {}]",
                    key.len() + value.len(),
                    self.max_entry_size()
                ),
            ));
        }
        Ok(())
    }

    /// Inserts or replaces `key` (normal descent path).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        self.check_entry(key, value)?;
        self.right_path.clear(); // structure may change
        let root = self.root;
        if let Some((sep, right)) = self.insert_into(root, key, value)? {
            let new_root = self.alloc(Node::Branch {
                children: vec![root, right],
                keys: vec![sep],
            });
            self.root = new_root;
        }
        if self.max_key.as_deref().is_none_or(|m| key > m) {
            self.max_key = Some(key.to_vec());
        }
        self.after_write()?;
        Ok(())
    }

    /// Appends a key strictly greater than every existing key
    /// (`MDB_APPEND` analog): constant amortized work per entry.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        self.check_entry(key, value)?;
        if let Some(m) = &self.max_key {
            if key <= m.as_slice() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "append requires strictly increasing keys",
                ));
            }
        }
        if self.right_path.is_empty() {
            self.build_right_path()?;
        }
        let leaf_page = *self.right_path.last().expect("path non-empty");
        // Fast path: room in the rightmost leaf.
        let page_size = self.config.page_size;
        let fits = {
            let node = self.node(leaf_page)?;
            node.encoded_size() + 4 + key.len() + value.len() <= page_size
        };
        if fits {
            let Node::Leaf { entries, .. } = self.node_mut(leaf_page)? else {
                return Err(corrupt("rightmost path does not end in a leaf"));
            };
            entries.push((key.to_vec(), value.to_vec()));
            self.dirty.insert(leaf_page);
        } else {
            // Start a fresh rightmost leaf (bulk-load split: the old leaf
            // stays full instead of donating half its entries).
            let new_leaf = self.alloc(Node::Leaf {
                entries: vec![(key.to_vec(), value.to_vec())],
                next: NO_PAGE,
            });
            let Node::Leaf { next, .. } = self.node_mut(leaf_page)? else {
                return Err(corrupt("rightmost path does not end in a leaf"));
            };
            *next = new_leaf;
            self.dirty.insert(leaf_page);
            self.attach_rightmost(new_leaf, key.to_vec())?;
        }
        self.count += 1;
        self.max_key = Some(key.to_vec());
        self.after_write()?;
        Ok(())
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            match self.node(page)? {
                Node::Branch { children, keys } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone()));
                }
            }
        }
    }

    /// Ordered scan over `[lo, hi)`; `f` returns `false` to stop.
    pub fn scan(
        &mut self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> io::Result<()> {
        // Descend to the leaf containing `lo` (or the leftmost leaf).
        let mut page = self.root;
        while let Node::Branch { children, keys } = self.node(page)? {
            let idx = match lo {
                Some(lo) => keys.partition_point(|k| k.as_slice() <= lo),
                None => 0,
            };
            page = children[idx];
        }
        loop {
            let (entries, next) = match self.node(page)? {
                Node::Leaf { entries, next } => (entries.clone(), *next),
                Node::Branch { .. } => return Err(corrupt("leaf chain hit a branch")),
            };
            for (k, v) in &entries {
                if let Some(lo) = lo {
                    if k.as_slice() < lo {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    if k.as_slice() >= hi {
                        return Ok(());
                    }
                }
                if !f(k, v) {
                    return Ok(());
                }
            }
            if next == NO_PAGE {
                return Ok(());
            }
            page = next;
        }
    }

    /// Serializes dirty pages and the meta page to the file.
    pub fn commit(&mut self) -> io::Result<()> {
        let ps = self.config.page_size;
        let dirty: Vec<u64> = self.dirty.drain().collect();
        for page_id in dirty {
            let node = self.cache.get(&page_id).expect("dirty page must be cached");
            let bytes = node.encode(ps);
            self.file.write_all_at(&bytes, page_id * ps as u64)?;
        }
        // Meta page last (commit point).
        let mut meta = vec![0u8; ps];
        meta[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        meta[8..16].copy_from_slice(&self.root.to_le_bytes());
        meta[16..24].copy_from_slice(&self.next_page.to_le_bytes());
        meta[24..32].copy_from_slice(&self.count.to_le_bytes());
        let mk = self.max_key.as_deref().unwrap_or(b"");
        meta[32..34].copy_from_slice(&(mk.len() as u16).to_le_bytes());
        meta[34..34 + mk.len()].copy_from_slice(mk);
        self.file.write_all_at(&meta, 0)?;
        self.writes_since_commit = 0;
        Ok(())
    }

    /// Pages allocated so far (including meta).
    pub fn pages(&self) -> u64 {
        self.next_page
    }

    // ---- internals -----------------------------------------------------

    fn read_meta(&mut self) -> io::Result<()> {
        let ps = self.config.page_size;
        let mut meta = vec![0u8; ps];
        self.file.read_exact_at(&mut meta, 0)?;
        if u64::from_le_bytes(meta[0..8].try_into().expect("len 8")) != MAGIC {
            return Err(corrupt("bad meta magic"));
        }
        self.root = u64::from_le_bytes(meta[8..16].try_into().expect("len 8"));
        self.next_page = u64::from_le_bytes(meta[16..24].try_into().expect("len 8"));
        self.count = u64::from_le_bytes(meta[24..32].try_into().expect("len 8"));
        let klen = u16::from_le_bytes(meta[32..34].try_into().expect("len 2")) as usize;
        self.max_key = (klen > 0).then(|| meta[34..34 + klen].to_vec());
        Ok(())
    }

    fn alloc(&mut self, node: Node) -> u64 {
        let id = self.next_page;
        self.next_page += 1;
        self.cache.insert(id, node);
        self.dirty.insert(id);
        id
    }

    fn node(&mut self, page: u64) -> io::Result<&Node> {
        if !self.cache.contains_key(&page) {
            let ps = self.config.page_size;
            let mut buf = vec![0u8; ps];
            self.file.read_exact_at(&mut buf, page * ps as u64)?;
            self.cache.insert(page, Node::decode(&buf)?);
        }
        Ok(self.cache.get(&page).expect("just inserted"))
    }

    fn node_mut(&mut self, page: u64) -> io::Result<&mut Node> {
        self.node(page)?;
        Ok(self.cache.get_mut(&page).expect("just loaded"))
    }

    /// Recursive insert; returns `(separator, right_page)` on split.
    fn insert_into(
        &mut self,
        page: u64,
        key: &[u8],
        value: &[u8],
    ) -> io::Result<Option<(Vec<u8>, u64)>> {
        enum Step {
            Leaf { idx: usize, replace: bool },
            Descend { child: u64, idx: usize },
        }
        let step = match self.node(page)? {
            Node::Leaf { entries, .. } => {
                let idx = entries.partition_point(|(k, _)| k.as_slice() < key);
                let replace = entries.get(idx).is_some_and(|(k, _)| k == key);
                Step::Leaf { idx, replace }
            }
            Node::Branch { children, keys } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                Step::Descend {
                    child: children[idx],
                    idx,
                }
            }
        };
        match step {
            Step::Leaf { idx, replace } => {
                let Node::Leaf { entries, .. } = self.node_mut(page)? else {
                    unreachable!("node kind is stable");
                };
                if replace {
                    entries[idx].1 = value.to_vec();
                } else {
                    entries.insert(idx, (key.to_vec(), value.to_vec()));
                    self.count += 1;
                }
                self.dirty.insert(page);
                self.maybe_split_leaf(page)
            }
            Step::Descend { child, idx } => {
                let Some((sep, right)) = self.insert_into(child, key, value)? else {
                    return Ok(None);
                };
                let Node::Branch { children, keys } = self.node_mut(page)? else {
                    unreachable!("node kind is stable");
                };
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                self.dirty.insert(page);
                self.maybe_split_branch(page)
            }
        }
    }

    fn maybe_split_leaf(&mut self, page: u64) -> io::Result<Option<(Vec<u8>, u64)>> {
        let ps = self.config.page_size;
        let needs_split = self.node(page)?.encoded_size() > ps;
        if !needs_split {
            return Ok(None);
        }
        let Node::Leaf { entries, next } = self.node_mut(page)? else {
            unreachable!("caller ensured leaf");
        };
        let mid = entries.len() / 2;
        let right_entries = entries.split_off(mid);
        let old_next = *next;
        let sep = right_entries[0].0.clone();
        let right = self.alloc(Node::Leaf {
            entries: right_entries,
            next: old_next,
        });
        let Node::Leaf { next, .. } = self.node_mut(page)? else {
            unreachable!("kind is stable");
        };
        *next = right;
        self.dirty.insert(page);
        Ok(Some((sep, right)))
    }

    fn maybe_split_branch(&mut self, page: u64) -> io::Result<Option<(Vec<u8>, u64)>> {
        let ps = self.config.page_size;
        let needs_split = self.node(page)?.encoded_size() > ps;
        if !needs_split {
            return Ok(None);
        }
        let Node::Branch { children, keys } = self.node_mut(page)? else {
            unreachable!("caller ensured branch");
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // the separator moves up
        let right_children = children.split_off(mid + 1);
        let right = self.alloc(Node::Branch {
            children: right_children,
            keys: right_keys,
        });
        self.dirty.insert(page);
        Ok(Some((sep, right)))
    }

    /// Rebuilds the root-to-rightmost-leaf path.
    fn build_right_path(&mut self) -> io::Result<()> {
        self.right_path.clear();
        let mut page = self.root;
        loop {
            self.right_path.push(page);
            match self.node(page)? {
                Node::Branch { children, .. } => {
                    page = *children.last().expect("branch has children");
                }
                Node::Leaf { .. } => return Ok(()),
            }
        }
    }

    /// Attaches a freshly started rightmost leaf, splitting full branches
    /// along the right spine bulk-load style.
    fn attach_rightmost(&mut self, new_leaf: u64, sep: Vec<u8>) -> io::Result<()> {
        let ps = self.config.page_size;
        let mut carry: Option<(Vec<u8>, u64)> = Some((sep, new_leaf));
        // Walk up the right spine (skip the leaf itself).
        let mut level = self.right_path.len().saturating_sub(1);
        while let Some((sep, child)) = carry.take() {
            if level == 0 {
                // Split the root: new root above.
                let old_root = self.root;
                let new_root = self.alloc(Node::Branch {
                    children: vec![old_root, child],
                    keys: vec![sep],
                });
                self.root = new_root;
                self.build_right_path()?;
                return Ok(());
            }
            level -= 1;
            let parent = self.right_path[level];
            let fits = self.node(parent)?.encoded_size() + 2 + sep.len() + 8 <= ps;
            if fits {
                let Node::Branch { children, keys } = self.node_mut(parent)? else {
                    return Err(corrupt("right spine holds a leaf above a leaf"));
                };
                keys.push(sep);
                children.push(child);
                self.dirty.insert(parent);
                self.build_right_path()?;
                return Ok(());
            }
            // Start a fresh right sibling branch containing just the new
            // child and push the separator further up.
            let fresh = self.alloc(Node::Branch {
                children: vec![child],
                keys: vec![],
            });
            carry = Some((sep, fresh));
            // Note: the fresh branch with one child and zero keys is valid
            // (`children == keys + 1`).
        }
        self.build_right_path()?;
        Ok(())
    }

    fn after_write(&mut self) -> io::Result<()> {
        self.writes_since_commit += 1;
        if self.config.auto_commit_every > 0
            && self.writes_since_commit >= self.config.auto_commit_every
        {
            self.commit()?;
        }
        Ok(())
    }
}

impl Drop for BTree {
    fn drop(&mut self) {
        let _ = self.commit();
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}
