//! B+tree node representation and page serialization.
//!
//! Nodes live as parsed structures in an in-memory cache (playing the
//! role of LMDB's memory map) and serialize to fixed-size pages on
//! commit. Leaves carry a `next` pointer for ordered scans.

use std::io;

/// Page type tag for leaves.
const TAG_LEAF: u8 = 1;
/// Page type tag for branches.
const TAG_BRANCH: u8 = 2;

/// Sentinel "no page".
pub const NO_PAGE: u64 = u64::MAX;

/// A parsed B+tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted `(key, value)` entries plus a next-leaf pointer.
    Leaf {
        /// Sorted entries.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Page id of the next leaf, or [`NO_PAGE`].
        next: u64,
    },
    /// Branch: `children.len() == keys.len() + 1`; keys are separators
    /// (`keys[i]` is the smallest key reachable via `children[i + 1]`).
    Branch {
        /// Child page ids.
        children: Vec<u64>,
        /// Separator keys.
        keys: Vec<Vec<u8>>,
    },
}

impl Node {
    /// An empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
            next: NO_PAGE,
        }
    }

    /// Estimated on-page size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                12 + entries
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.len())
                    .sum::<usize>()
            }
            Node::Branch { children, keys } => {
                4 + children.len() * 8 + keys.iter().map(|k| 2 + k.len()).sum::<usize>()
            }
        }
    }

    /// Serializes the node into a zero-padded page of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the node exceeds the page (callers must split first).
    pub fn encode(&self, page_size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(page_size);
        match self {
            Node::Leaf { entries, next } => {
                out.push(TAG_LEAF);
                out.push(0);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&next.to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(v);
                }
            }
            Node::Branch { children, keys } => {
                assert_eq!(children.len(), keys.len() + 1, "branch arity invariant");
                out.push(TAG_BRANCH);
                out.push(0);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                out.extend_from_slice(&children[0].to_le_bytes());
                for (k, child) in keys.iter().zip(&children[1..]) {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&child.to_le_bytes());
                }
            }
        }
        assert!(
            out.len() <= page_size,
            "node of {} bytes exceeds page size {}",
            out.len(),
            page_size
        );
        out.resize(page_size, 0);
        out
    }

    /// Parses a node from a page.
    pub fn decode(page: &[u8]) -> io::Result<Node> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if page.len() < 4 {
            return Err(bad("page too short"));
        }
        let n = u16::from_le_bytes(page[2..4].try_into().expect("len 2")) as usize;
        match page[0] {
            TAG_LEAF => {
                if page.len() < 12 {
                    return Err(bad("leaf too short"));
                }
                let next = u64::from_le_bytes(page[4..12].try_into().expect("len 8"));
                let mut pos = 12usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    if pos + 4 > page.len() {
                        return Err(bad("leaf entry header truncated"));
                    }
                    let klen =
                        u16::from_le_bytes(page[pos..pos + 2].try_into().expect("len 2")) as usize;
                    let vlen = u16::from_le_bytes(page[pos + 2..pos + 4].try_into().expect("len 2"))
                        as usize;
                    pos += 4;
                    if pos + klen + vlen > page.len() {
                        return Err(bad("leaf entry truncated"));
                    }
                    let key = page[pos..pos + klen].to_vec();
                    pos += klen;
                    let value = page[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((key, value));
                }
                Ok(Node::Leaf { entries, next })
            }
            TAG_BRANCH => {
                if page.len() < 12 {
                    return Err(bad("branch too short"));
                }
                let mut children = Vec::with_capacity(n + 1);
                let mut keys = Vec::with_capacity(n);
                children.push(u64::from_le_bytes(page[4..12].try_into().expect("len 8")));
                let mut pos = 12usize;
                for _ in 0..n {
                    if pos + 2 > page.len() {
                        return Err(bad("branch entry truncated"));
                    }
                    let klen =
                        u16::from_le_bytes(page[pos..pos + 2].try_into().expect("len 2")) as usize;
                    pos += 2;
                    if pos + klen + 8 > page.len() {
                        return Err(bad("branch key truncated"));
                    }
                    keys.push(page[pos..pos + klen].to_vec());
                    pos += klen;
                    children.push(u64::from_le_bytes(
                        page[pos..pos + 8].try_into().expect("len 8"),
                    ));
                    pos += 8;
                }
                Ok(Node::Branch { children, keys })
            }
            t => Err(bad(&format!("unknown page tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trips() {
        let n = Node::Leaf {
            entries: vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (b"beta".to_vec(), b"22".to_vec()),
            ],
            next: 77,
        };
        let page = n.encode(4096);
        assert_eq!(page.len(), 4096);
        assert_eq!(Node::decode(&page).unwrap(), n);
    }

    #[test]
    fn branch_round_trips() {
        let n = Node::Branch {
            children: vec![3, 9, 12],
            keys: vec![b"m".to_vec(), b"t".to_vec()],
        };
        let page = n.encode(4096);
        assert_eq!(Node::decode(&page).unwrap(), n);
    }

    #[test]
    fn empty_leaf_round_trips() {
        let n = Node::empty_leaf();
        assert_eq!(Node::decode(&n.encode(256)).unwrap(), n);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_node_panics() {
        let n = Node::Leaf {
            entries: vec![(vec![0u8; 300], vec![0u8; 300])],
            next: NO_PAGE,
        };
        n.encode(256);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Node::decode(&[9u8; 64]).is_err());
        assert!(Node::decode(&[]).is_err());
    }

    #[test]
    fn encoded_size_matches_encode() {
        let n = Node::Leaf {
            entries: vec![(b"key".to_vec(), b"value".to_vec())],
            next: 0,
        };
        let exact = {
            let page = n.encode(4096);
            // Find last non-zero byte as a lower bound check.
            page.iter().rposition(|b| *b != 0).unwrap() + 1
        };
        assert!(n.encoded_size() >= exact);
    }
}
