//! Property-based tests: the LSM engine must behave exactly like a
//! `BTreeMap` model for arbitrary operation sequences, across flushes
//! and compactions.

use std::collections::BTreeMap;

use proptest::prelude::*;

use lsm::{Db, LsmConfig};

/// One step of a random workload.
#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        3 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        1 => Just(Op::Flush),
    ]
}

fn unique_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "lsm-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lsm_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let dir = unique_dir();
        let db = Db::open(LsmConfig::small(&dir).with_memtable_bytes(512)).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    let value = vec![*v; 3];
                    db.put(&key, &value).unwrap();
                    model.insert(key, value);
                }
                Op::Delete(k) => {
                    let key = k.to_be_bytes().to_vec();
                    db.delete(&key).unwrap();
                    model.remove(&key);
                }
                Op::Flush => db.flush_all().unwrap(),
            }
        }
        db.flush_all().unwrap();

        // Full scan equals the model.
        let mut got = Vec::new();
        db.scan(None, None, |k, v| {
            got.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&got, &expected);

        // Spot-check point gets, including deleted and absent keys.
        for k in (0..512u16).step_by(31) {
            let key = k.to_be_bytes();
            prop_assert_eq!(db.get(&key).unwrap(), model.get(key.as_slice()).cloned());
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_preserves_the_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let dir = unique_dir();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let db = Db::open(LsmConfig::small(&dir).with_memtable_bytes(512)).unwrap();
            for op in &ops {
                match op {
                    Op::Put(k, v) => {
                        let key = k.to_be_bytes().to_vec();
                        let value = vec![*v; 3];
                        db.put(&key, &value).unwrap();
                        model.insert(key, value);
                    }
                    Op::Delete(k) => {
                        let key = k.to_be_bytes().to_vec();
                        db.delete(&key).unwrap();
                        model.remove(&key);
                    }
                    Op::Flush => db.flush_all().unwrap(),
                }
            }
            // Drop without a final flush: the WAL must cover the tail.
        }
        let db = Db::open(LsmConfig::small(&dir).with_memtable_bytes(512)).unwrap();
        let mut got = Vec::new();
        db.scan(None, None, |k, v| {
            got.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&got, &expected);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
