//! Fault-injection tests for the LSM baseline's disk touchpoints.
//!
//! Gated on the `failpoints` feature, which arms the shared
//! `loom::fault` registry at the WAL and SSTable write sites.

#![cfg(feature = "failpoints")]

use loom::fault::{self, FaultKind, FaultSpec, Trigger};
use lsm::{Db, LsmConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("lsm-fp-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn wal_append_eio_surfaces_to_put() {
    let _s = fault::Scenario::begin();
    let db = Db::open(LsmConfig::small(tmp("wal-eio"))).unwrap();
    db.put(b"before", b"ok").unwrap();

    fault::configure(
        "lsm::wal_append",
        FaultSpec::new(FaultKind::Eio, Trigger::Always),
    );
    let err = db.put(b"during", b"fails").unwrap_err();
    assert_eq!(err.raw_os_error(), Some(5), "EIO must reach the caller");

    fault::clear("lsm::wal_append");
    db.put(b"after", b"ok again").unwrap();
    assert_eq!(db.get(b"before").unwrap().as_deref(), Some(&b"ok"[..]));
    assert_eq!(db.get(b"after").unwrap().as_deref(), Some(&b"ok again"[..]));
}

#[test]
fn transient_sstable_enospc_is_absorbed_by_the_worker() {
    let _s = fault::Scenario::begin();
    let db = Db::open(LsmConfig::small(tmp("sst-enospc"))).unwrap();
    for i in 0..100u32 {
        db.put(format!("k{i:04}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }

    // First SSTable write attempt fails with ENOSPC; the background
    // worker logs it and retries the flush on its next pass, which
    // succeeds — flush_all blocks through the failure rather than
    // losing the memtable.
    fault::configure(
        "lsm::sstable_write",
        FaultSpec::new(FaultKind::Enospc, Trigger::Nth(1)),
    );
    db.flush_all().unwrap();
    assert!(
        fault::fires("lsm::sstable_write") >= 1,
        "the fault must have been hit"
    );
    assert_eq!(
        db.get(b"k0042").unwrap().as_deref(),
        Some(&42u32.to_le_bytes()[..])
    );
}
