//! End-to-end LSM engine tests: model-based correctness against a
//! `BTreeMap`, compaction behaviour, recovery, and concurrency.

use std::collections::BTreeMap;

use lsm::{Db, LsmConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("lsm-db-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn put_get_across_flushes_and_compactions() {
    let dir = tmp("basic");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for i in 0..5_000u32 {
        db.put(&i.to_be_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.flush_all().unwrap();
    assert!(
        db.stats()
            .flushes
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    for i in (0..5_000u32).step_by(37) {
        assert_eq!(
            db.get(&i.to_be_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes()),
            "key {i}"
        );
    }
    assert_eq!(db.get(&99_999u32.to_be_bytes()).unwrap(), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overwrites_return_newest_value() {
    let dir = tmp("overwrite");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for round in 0..5u32 {
        for i in 0..1_000u32 {
            db.put(&i.to_be_bytes(), &round.to_be_bytes()).unwrap();
        }
        db.flush_all().unwrap();
    }
    for i in (0..1_000u32).step_by(13) {
        assert_eq!(
            db.get(&i.to_be_bytes()).unwrap(),
            Some(4u32.to_be_bytes().to_vec())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deletes_shadow_older_values() {
    let dir = tmp("delete");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for i in 0..2_000u32 {
        db.put(&i.to_be_bytes(), b"live").unwrap();
    }
    db.flush_all().unwrap();
    for i in (0..2_000u32).step_by(2) {
        db.delete(&i.to_be_bytes()).unwrap();
    }
    db.flush_all().unwrap();
    for i in 0..2_000u32 {
        let got = db.get(&i.to_be_bytes()).unwrap();
        if i % 2 == 0 {
            assert_eq!(got, None, "key {i} should be deleted");
        } else {
            assert_eq!(got, Some(b"live".to_vec()), "key {i} should live");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_matches_btreemap_model() {
    let dir = tmp("model");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    // Deterministic pseudo-random workload with puts, overwrites, deletes.
    let mut x = 12345u64;
    for _ in 0..8_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = ((x >> 32) % 2_000).to_be_bytes().to_vec();
        match x % 10 {
            0..=6 => {
                let value = (x % 1_000_000).to_be_bytes().to_vec();
                db.put(&key, &value).unwrap();
                model.insert(key, value);
            }
            _ => {
                db.delete(&key).unwrap();
                model.remove(&key);
            }
        }
    }
    db.flush_all().unwrap();

    // Full scan equals the model.
    let mut got = Vec::new();
    db.scan(None, None, |k, v| {
        got.push((k.to_vec(), v.to_vec()));
        true
    })
    .unwrap();
    let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, expected);

    // Bounded range scan equals the model's range.
    let lo = 500u64.to_be_bytes();
    let hi = 1_500u64.to_be_bytes();
    let mut got = Vec::new();
    db.scan(Some(&lo), Some(&hi), |k, v| {
        got.push((k.to_vec(), v.to_vec()));
        true
    })
    .unwrap();
    let expected: Vec<_> = model
        .range(lo.to_vec()..hi.to_vec())
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(got, expected);

    // Point gets agree everywhere.
    for i in 0..2_000u64 {
        let key = i.to_be_bytes();
        assert_eq!(db.get(&key).unwrap(), model.get(key.as_slice()).cloned());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_early_stop_works() {
    let dir = tmp("early-stop");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for i in 0..100u32 {
        db.put(&i.to_be_bytes(), b"v").unwrap();
    }
    let mut n = 0;
    db.scan(None, None, |_, _| {
        n += 1;
        n < 10
    })
    .unwrap();
    assert_eq!(n, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_reduces_table_count_and_preserves_data() {
    let dir = tmp("compact");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for i in 0..20_000u32 {
        db.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    db.flush_all().unwrap();
    // Give compaction a chance to reach fixpoint.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        let sizes = db.level_sizes();
        if sizes.iter().all(|s| *s < 3) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        db.stats()
            .compactions
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "no compaction ran; levels: {:?}",
        db.level_sizes()
    );
    for i in (0..20_000u32).step_by(101) {
        assert_eq!(
            db.get(&i.to_be_bytes()).unwrap(),
            Some(i.to_le_bytes().to_vec())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_restores_flushed_and_walled_data() {
    let dir = tmp("recovery");
    {
        let db = Db::open(LsmConfig::small(&dir)).unwrap();
        for i in 0..3_000u32 {
            db.put(&i.to_be_bytes(), format!("r{i}").as_bytes())
                .unwrap();
        }
        db.flush_all().unwrap();
        // These stay only in the WAL + memtable.
        for i in 3_000..3_500u32 {
            db.put(&i.to_be_bytes(), format!("r{i}").as_bytes())
                .unwrap();
        }
        // Drop without flushing the tail.
    }
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for i in (0..3_500u32).step_by(97) {
        assert_eq!(
            db.get(&i.to_be_bytes()).unwrap(),
            Some(format!("r{i}").into_bytes()),
            "key {i} lost across restart"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_and_readers() {
    let dir = tmp("concurrent");
    let db = Db::open(LsmConfig::small(&dir).with_wal(false)).unwrap();
    let mut writers = Vec::new();
    for t in 0..4u32 {
        let db = db.clone();
        writers.push(std::thread::spawn(move || {
            for i in 0..2_000u32 {
                let key = (t * 1_000_000 + i).to_be_bytes();
                db.put(&key, &i.to_le_bytes()).unwrap();
            }
        }));
    }
    let reader = {
        let db = db.clone();
        std::thread::spawn(move || {
            for _ in 0..200 {
                let _ = db.get(&42u32.to_be_bytes());
                let mut n = 0;
                db.scan(None, None, |_, _| {
                    n += 1;
                    n < 100
                })
                .unwrap();
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    reader.join().unwrap();
    db.flush_all().unwrap();
    for t in 0..4u32 {
        for i in (0..2_000u32).step_by(333) {
            let key = (t * 1_000_000 + i).to_be_bytes();
            assert_eq!(db.get(&key).unwrap(), Some(i.to_le_bytes().to_vec()));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn maintenance_time_is_tracked() {
    let dir = tmp("maint");
    let db = Db::open(LsmConfig::small(&dir).with_wal(false)).unwrap();
    for i in 0..30_000u32 {
        db.put(&i.to_be_bytes(), &[0u8; 32]).unwrap();
    }
    db.flush_all().unwrap();
    assert!(db.stats().maintenance_nanos() > 0);
    assert!(
        db.stats()
            .bytes_flushed
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn block_cache_serves_repeated_reads() {
    let dir = tmp("cache");
    let db = Db::open(LsmConfig::small(&dir)).unwrap();
    for i in 0..5_000u32 {
        db.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    db.flush_all().unwrap();
    // First pass populates the cache, second pass must hit it.
    for _ in 0..2 {
        for i in (0..5_000u32).step_by(50) {
            assert!(db.get(&i.to_be_bytes()).unwrap().is_some());
        }
    }
    let (hits, misses) = db.cache_stats();
    assert!(hits > 0, "no cache hits after repeated reads");
    assert!(misses > 0, "first reads should have missed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_cache_reports_zero_stats() {
    let dir = tmp("nocache");
    let mut config = LsmConfig::small(&dir);
    config.block_cache_bytes = 0;
    let db = Db::open(config).unwrap();
    for i in 0..2_000u32 {
        db.put(&i.to_be_bytes(), b"v").unwrap();
    }
    db.flush_all().unwrap();
    for i in (0..2_000u32).step_by(10) {
        assert!(db.get(&i.to_be_bytes()).unwrap().is_some());
    }
    assert_eq!(db.cache_stats(), (0, 0));
    let _ = std::fs::remove_dir_all(&dir);
}
