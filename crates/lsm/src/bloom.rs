//! Per-table Bloom filters.
//!
//! Point lookups consult a table's Bloom filter before touching its index
//! or data blocks, skipping tables that cannot contain the key. Uses the
//! standard double-hashing scheme (Kirsch & Mitzenmacher) over a 64-bit
//! FNV-1a hash.

/// A Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    k: u32,
}

/// 64-bit FNV-1a.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Bloom {
    /// Builds a filter sized for `n` keys at `bits_per_key` bits each.
    pub fn new(n: usize, bits_per_key: usize) -> Self {
        let nbits = (n * bits_per_key).max(64);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        Bloom {
            bits: vec![0u8; nbits.div_ceil(8)],
            k,
        }
    }

    /// Number of probe functions.
    pub fn probes(&self) -> u32 {
        self.k
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let h = fnv1a(key);
        let delta = h.rotate_left(17) | 1;
        let nbits = self.bits.len() as u64 * 8;
        let mut pos = h;
        for _ in 0..self.k {
            let bit = pos % nbits;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
            pos = pos.wrapping_add(delta);
        }
    }

    /// Whether the key may be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h = fnv1a(key);
        let delta = h.rotate_left(17) | 1;
        let nbits = self.bits.len() as u64 * 8;
        let mut pos = h;
        for _ in 0..self.k {
            let bit = pos % nbits;
            if self.bits[(bit / 8) as usize] & (1 << (bit % 8)) == 0 {
                return false;
            }
            pos = pos.wrapping_add(delta);
        }
        true
    }

    /// Serializes the filter (probe count then bit array).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bits);
    }

    /// Deserializes a filter previously written by [`Bloom::encode`].
    pub fn decode(data: &[u8]) -> Option<Bloom> {
        if data.len() < 8 {
            return None;
        }
        let k = u32::from_le_bytes(data[0..4].try_into().ok()?);
        let len = u32::from_le_bytes(data[4..8].try_into().ok()?) as usize;
        if data.len() < 8 + len {
            return None;
        }
        Some(Bloom {
            bits: data[8..8 + len].to_vec(),
            k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1_000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut b = Bloom::new(keys.len(), 10);
        for k in &keys {
            b.insert(k);
        }
        for k in &keys {
            assert!(b.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = Bloom::new(1_000, 10);
        for i in 0..1_000u32 {
            b.insert(&i.to_be_bytes());
        }
        let fp = (1_000_000u32..1_010_000)
            .filter(|i| b.may_contain(&i.to_be_bytes()))
            .count();
        // ~1% expected at 10 bits/key; allow generous slack.
        assert!(fp < 500, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut b = Bloom::new(100, 10);
        for i in 0..100u32 {
            b.insert(&i.to_le_bytes());
        }
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let decoded = Bloom::decode(&buf).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut b = Bloom::new(10, 10);
        b.insert(b"x");
        let mut buf = Vec::new();
        b.encode(&mut buf);
        assert!(Bloom::decode(&buf[..buf.len() - 1]).is_none());
        assert!(Bloom::decode(&[]).is_none());
    }

    #[test]
    fn hash_is_stable() {
        // The on-disk format depends on this hash; pin its value.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
