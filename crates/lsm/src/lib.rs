//! # LSM-tree storage engine (RocksDB stand-in)
//!
//! A from-scratch log-structured merge-tree used by the Loom reproduction
//! in two roles:
//!
//! 1. **Figure 15 baseline**: the paper benchmarks Loom's hybrid log
//!    against RocksDB's LSM-tree for raw ingest; this crate provides the
//!    equivalent engine (memtable → L0 SSTables → size-tiered compaction,
//!    WAL optional and off by default, exactly as the paper configures
//!    RocksDB).
//! 2. **Storage layer of the `tsdb` crate**, the InfluxDB-like baseline:
//!    its write-path index maintenance cost is the LSM flush/compaction
//!    work, which [`db::LsmStats`] exposes so Figure 2 can be
//!    regenerated.
//!
//! The engine supports puts, deletes (tombstones), point gets, ordered
//! range scans, crash recovery (manifest + WAL replay), and Bloom-filtered
//! point lookups.

pub mod bloom;

/// Consults the shared `loom::fault` failpoint registry at `site`,
/// converting a triggered fault into an `io::Error`. Compiles to nothing
/// without the `failpoints` feature.
#[cfg(feature = "failpoints")]
#[inline]
pub(crate) fn failpoint(site: &str) -> std::io::Result<()> {
    match loom::fault::check(site, "") {
        Some(k) => Err(k.to_io_error()),
        None => Ok(()),
    }
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn failpoint(_site: &str) -> std::io::Result<()> {
    Ok(())
}

pub mod cache;
pub mod db;
pub mod memtable;
pub mod merge;
pub mod sstable;
pub mod wal;

pub use db::{Db, LsmConfig, LsmStats};
