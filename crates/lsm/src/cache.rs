//! A sharded LRU block cache for SSTable data blocks.
//!
//! Point lookups and scans read 4 KiB data blocks; re-reading hot blocks
//! from the file on every query wastes I/O, so the engine caches decoded
//! blocks keyed by (table id, block offset) — the same role RocksDB's
//! block cache plays. Sharding bounds lock contention; each shard runs
//! an intrusive-free LRU over a `HashMap` + recency queue.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Cache key: (table id, block offset).
pub type BlockKey = (u64, u64);

/// A sharded LRU cache of data blocks.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Shard {
    map: HashMap<BlockKey, Arc<Vec<u8>>>,
    /// Recency queue (front = oldest). May contain stale keys; the map is
    /// authoritative and eviction skips keys already removed.
    order: VecDeque<BlockKey>,
    bytes: usize,
}

impl BlockCache {
    /// Creates a cache bounded at roughly `capacity_bytes` across
    /// `shards` shards.
    pub fn new(capacity_bytes: usize, shards: usize) -> BlockCache {
        let shards = shards.max(1);
        BlockCache {
            capacity_per_shard: (capacity_bytes / shards).max(4096),
            shards: (0..shards)
                .map(|_| {
                    Mutex::named(
                        "lsm.cache_shard",
                        Shard {
                            map: HashMap::new(),
                            order: VecDeque::new(),
                            bytes: 0,
                        },
                    )
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &BlockKey) -> &Mutex<Shard> {
        let h = key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ key.1;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Looks up a block.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.shard(key).lock();
        match shard.map.get(key).cloned() {
            Some(block) => {
                // Refresh recency (lazy: push a duplicate entry; stale
                // duplicates are skipped during eviction).
                shard.order.push_back(*key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(block)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a block, evicting least-recently-used entries as needed.
    pub fn insert(&self, key: BlockKey, block: Arc<Vec<u8>>) {
        let mut shard = self.shard(&key).lock();
        if let Some(old) = shard.map.insert(key, Arc::clone(&block)) {
            shard.bytes -= old.len();
        }
        shard.bytes += block.len();
        shard.order.push_back(key);
        while shard.bytes > self.capacity_per_shard {
            let Some(victim) = shard.order.pop_front() else {
                break;
            };
            // Skip stale recency entries (refreshed or re-inserted keys).
            if shard.order.contains(&victim) {
                continue;
            }
            if let Some(evicted) = shard.map.remove(&victim) {
                shard.bytes -= evicted.len();
            }
        }
    }

    /// Drops every cached block for `table` (called when a compaction
    /// deletes the table's file).
    pub fn evict_table(&self, table: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let victims: Vec<BlockKey> = shard
                .map
                .keys()
                .filter(|(t, _)| *t == table)
                .copied()
                .collect();
            for key in victims {
                if let Some(evicted) = shard.map.remove(&key) {
                    shard.bytes -= evicted.len();
                }
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total cached bytes (approximate under concurrency).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn get_after_insert_hits() {
        let c = BlockCache::new(1 << 20, 4);
        assert!(c.get(&(1, 0)).is_none());
        c.insert((1, 0), block(100));
        assert!(c.get(&(1, 0)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn eviction_respects_capacity() {
        let c = BlockCache::new(4096, 1);
        for i in 0..100u64 {
            c.insert((1, i), block(1024));
        }
        assert!(c.bytes() <= 4096, "bytes {} exceed capacity", c.bytes());
        // The most recent entry survives.
        assert!(c.get(&(1, 99)).is_some());
    }

    #[test]
    fn lru_keeps_recently_used_blocks() {
        let c = BlockCache::new(4096, 1);
        c.insert((1, 0), block(1500));
        c.insert((1, 1), block(1500));
        // Touch block 0 so block 1 is the LRU victim.
        assert!(c.get(&(1, 0)).is_some());
        c.insert((1, 2), block(1500));
        assert!(c.get(&(1, 0)).is_some(), "recently used block evicted");
        assert!(c.get(&(1, 1)).is_none(), "LRU block survived");
    }

    #[test]
    fn evict_table_removes_only_that_table() {
        let c = BlockCache::new(1 << 20, 4);
        c.insert((1, 0), block(10));
        c.insert((2, 0), block(10));
        c.evict_table(1);
        assert!(c.get(&(1, 0)).is_none());
        assert!(c.get(&(2, 0)).is_some());
    }

    #[test]
    fn reinsert_updates_size_accounting() {
        let c = BlockCache::new(1 << 20, 1);
        c.insert((1, 0), block(100));
        c.insert((1, 0), block(200));
        assert_eq!(c.bytes(), 200);
    }
}
