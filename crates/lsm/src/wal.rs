//! Write-ahead log for memtable durability.
//!
//! One WAL file exists per memtable generation (`wal-<seq>`); the file is
//! deleted once its memtable has been flushed to an SSTable. Recovery
//! replays surviving WAL files in sequence order. Records are length-
//! prefixed; a truncated tail (torn write at crash) is ignored.
//!
//! The paper's Figure 15 runs RocksDB with the WAL *off* (it slows down
//! writes); the engine therefore makes the WAL optional.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::memtable::Slot;

/// Tombstone marker in the value-length field.
const TOMBSTONE: u32 = u32::MAX;

/// Appends records to one WAL file.
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    seq: u64,
}

impl WalWriter {
    /// Creates `wal-<seq>` in `dir`.
    pub fn create(dir: &Path, seq: u64) -> io::Result<WalWriter> {
        let path = dir.join(format!("wal-{seq:010}"));
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(WalWriter {
            file: BufWriter::new(file),
            path,
            seq,
        })
    }

    /// The WAL's sequence number (matches its memtable generation).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry (no fsync: the engine trades durability for
    /// ingest throughput exactly like the evaluated systems).
    pub fn append(&mut self, key: &[u8], value: &Slot) -> io::Result<()> {
        crate::failpoint("lsm::wal_append")?;
        self.file.write_all(&(key.len() as u32).to_le_bytes())?;
        match value {
            Some(v) => {
                self.file.write_all(&(v.len() as u32).to_le_bytes())?;
                self.file.write_all(key)?;
                self.file.write_all(v)?;
            }
            None => {
                self.file.write_all(&TOMBSTONE.to_le_bytes())?;
                self.file.write_all(key)?;
            }
        }
        Ok(())
    }

    /// Flushes buffered appends to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        crate::failpoint("lsm::wal_flush")?;
        self.file.flush()
    }
}

/// Replays a WAL file, invoking `f(key, value)` per entry. A truncated
/// final record is ignored (torn write).
pub fn replay(path: &Path, mut f: impl FnMut(Vec<u8>, Slot)) -> io::Result<()> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("len 4")) as usize;
        let vlen = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("len 4"));
        pos += 8;
        if pos + klen > data.len() {
            break;
        }
        let key = data[pos..pos + klen].to_vec();
        pos += klen;
        if vlen == TOMBSTONE {
            f(key, None);
        } else {
            let vlen = vlen as usize;
            if pos + vlen > data.len() {
                break;
            }
            f(key, Some(data[pos..pos + vlen].to_vec()));
            pos += vlen;
        }
    }
    Ok(())
}

/// Lists `wal-*` files in `dir` ordered by sequence number.
pub fn list_wals(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name.strip_prefix("wal-") {
            if let Ok(seq) = seq.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsm-wal-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_and_replay() {
        let dir = tmp("roundtrip");
        let mut w = WalWriter::create(&dir, 3).unwrap();
        w.append(b"a", &Some(b"1".to_vec())).unwrap();
        w.append(b"b", &None).unwrap();
        w.append(b"c", &Some(b"333".to_vec())).unwrap();
        w.flush().unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let mut got = Vec::new();
        replay(&path, |k, v| got.push((k, v))).unwrap();
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), Some(b"1".to_vec())),
                (b"b".to_vec(), None),
                (b"c".to_vec(), Some(b"333".to_vec())),
            ]
        );
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = tmp("torn");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append(b"good", &Some(b"entry".to_vec())).unwrap();
        w.flush().unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        // Append half a record.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&100u32.to_le_bytes());
        std::fs::write(&path, data).unwrap();
        let mut got = Vec::new();
        replay(&path, |k, v| got.push((k, v))).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn list_wals_sorts_by_seq() {
        let dir = tmp("list");
        for seq in [5u64, 1, 3] {
            WalWriter::create(&dir, seq).unwrap().flush().unwrap();
        }
        std::fs::write(dir.join("not-a-wal"), b"x").unwrap();
        let wals = list_wals(&dir).unwrap();
        let seqs: Vec<u64> = wals.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 3, 5]);
    }
}
