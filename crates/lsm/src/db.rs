//! The LSM-tree storage engine.
//!
//! Writes go to a write-ahead log (optional) and a sorted in-memory
//! memtable; full memtables rotate to an immutable list that a background
//! worker flushes to level-0 SSTables. Size-tiered compaction merges a
//! level's tables into the next level when it accumulates too many. Reads
//! consult the memtable, immutable memtables, and tables newest-first.
//!
//! The background flush/compaction CPU time is tracked explicitly: in the
//! Loom paper this *index maintenance* cost is what makes LSM-based
//! systems fall behind on HFT ingest (Figure 2) and what drives their
//! probe effect (Figure 14).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::cache::BlockCache;
use crate::memtable::{Memtable, Slot};
use crate::merge::{MergeIter, RankedSource};
use crate::sstable::{Table, TableBuilder};
use crate::wal::{self, WalWriter};

/// Configuration for an LSM [`Db`].
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Directory for SSTables, WALs, and the manifest.
    pub dir: PathBuf,
    /// Memtable size threshold before rotation.
    pub memtable_bytes: usize,
    /// SSTable data-block target size.
    pub block_bytes: usize,
    /// Tables per level before that level is compacted into the next.
    pub level_trigger: usize,
    /// Immutable memtables tolerated before writers stall.
    pub max_immutables: usize,
    /// Whether to write a WAL (the paper benchmarks with WAL off).
    pub wal: bool,
    /// Block-cache capacity in bytes (0 disables caching).
    pub block_cache_bytes: usize,
}

impl LsmConfig {
    /// Paper-like defaults rooted at `dir` (WAL off, as in §6.3).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LsmConfig {
            dir: dir.into(),
            memtable_bytes: 4 * 1024 * 1024,
            block_bytes: 4096,
            level_trigger: 4,
            max_immutables: 2,
            wal: false,
            block_cache_bytes: 8 * 1024 * 1024,
        }
    }

    /// Small-footprint configuration for tests.
    pub fn small(dir: impl Into<PathBuf>) -> Self {
        LsmConfig {
            dir: dir.into(),
            memtable_bytes: 16 * 1024,
            block_bytes: 1024,
            level_trigger: 3,
            max_immutables: 2,
            wal: true,
            block_cache_bytes: 256 * 1024,
        }
    }

    /// Overrides the memtable size.
    pub fn with_memtable_bytes(mut self, bytes: usize) -> Self {
        self.memtable_bytes = bytes;
        self
    }

    /// Enables or disables the WAL.
    pub fn with_wal(mut self, wal: bool) -> Self {
        self.wal = wal;
        self
    }
}

/// Background-maintenance and ingest statistics.
#[derive(Debug, Default)]
pub struct LsmStats {
    /// Records written.
    pub puts: AtomicU64,
    /// Memtable flushes completed.
    pub flushes: AtomicU64,
    /// Compactions completed.
    pub compactions: AtomicU64,
    /// Bytes written by flushes.
    pub bytes_flushed: AtomicU64,
    /// Bytes written by compactions (write amplification).
    pub bytes_compacted: AtomicU64,
    /// Nanoseconds the background worker spent flushing.
    pub flush_nanos: AtomicU64,
    /// Nanoseconds the background worker spent compacting.
    pub compact_nanos: AtomicU64,
    /// Nanoseconds writers spent stalled on backpressure.
    pub stall_nanos: AtomicU64,
}

impl LsmStats {
    /// Total background maintenance time (flush + compaction), in ns.
    ///
    /// This is the "CPU spent on index maintenance" of Figure 2.
    pub fn maintenance_nanos(&self) -> u64 {
        self.flush_nanos.load(Ordering::Relaxed) + self.compact_nanos.load(Ordering::Relaxed)
    }
}

struct DbState {
    memtable: Memtable,
    /// (wal sequence, contents) of rotated memtables, oldest first.
    immutables: VecDeque<(u64, Arc<Memtable>)>,
    /// `levels[0]` is newest; within a level, later tables are newer.
    levels: Vec<Vec<Arc<Table>>>,
    /// WAL sequence of the active memtable.
    wal_seq: u64,
}

struct DbInner {
    config: LsmConfig,
    cache: Option<Arc<BlockCache>>,
    state: RwLock<DbState>,
    wal: Mutex<Option<WalWriter>>,
    next_table_id: AtomicU64,
    stats: LsmStats,
    kick: Sender<()>,
    shutdown: AtomicBool,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Joins the background worker when the last *user* handle drops.
///
/// The worker itself holds only a `Weak<DbInner>` (upgraded transiently
/// per iteration), so without this token the final teardown — including
/// flushing the WAL writer's buffer — could run asynchronously on the
/// worker thread, racing with an immediate reopen. The token is owned
/// exclusively by user handles and is declared before `inner` so that it
/// drops first: it joins the worker synchronously, after which the
/// caller's `Arc<DbInner>` is guaranteed to be the last and teardown
/// completes on the caller's thread before `Db::drop` returns.
struct ShutdownToken {
    inner: std::sync::Weak<DbInner>,
}

impl Drop for ShutdownToken {
    fn drop(&mut self) {
        if let Some(db) = self.inner.upgrade() {
            db.shutdown.store(true, Ordering::Release);
            let _ = db.kick.try_send(());
            if let Some(h) = db.worker.lock().take() {
                let _ = h.join();
            }
        }
    }
}

/// An LSM-tree database handle (cloneable; all clones share state).
#[derive(Clone)]
pub struct Db {
    // Field order matters: the token must drop before `inner`.
    _token: Arc<ShutdownToken>,
    inner: Arc<DbInner>,
}

impl Db {
    /// Opens (or recovers) a database in `config.dir`.
    pub fn open(config: LsmConfig) -> std::io::Result<Db> {
        std::fs::create_dir_all(&config.dir)?;
        let mut levels: Vec<Vec<Arc<Table>>> = Vec::new();
        let mut max_table_id = 0u64;
        // Recover tables from the manifest.
        let manifest = config.dir.join("MANIFEST");
        if manifest.exists() {
            for line in std::fs::read_to_string(&manifest)?.lines() {
                let mut parts = line.split_whitespace();
                let (Some(level), Some(id)) = (parts.next(), parts.next()) else {
                    continue;
                };
                let level: usize = level.parse().map_err(bad_manifest)?;
                let id: u64 = id.parse().map_err(bad_manifest)?;
                max_table_id = max_table_id.max(id);
                while levels.len() <= level {
                    levels.push(Vec::new());
                }
                let table = Table::open(&config.dir.join(format!("sst-{id:010}.sst")))?;
                levels[level].push(Arc::new(table));
            }
        }
        // Recover the memtable from surviving WALs.
        let mut memtable = Memtable::new();
        let mut wal_seq = 0u64;
        for (seq, path) in wal::list_wals(&config.dir)? {
            wal_seq = wal_seq.max(seq + 1);
            wal::replay(&path, |k, v| match v {
                Some(v) => memtable.put(&k, &v),
                None => memtable.delete(&k),
            })?;
            std::fs::remove_file(&path)?;
        }
        // Re-log recovered entries into a fresh WAL so they survive a
        // second crash before the memtable flushes.
        let wal_writer = if config.wal {
            let mut w = WalWriter::create(&config.dir, wal_seq)?;
            for (k, v) in memtable.iter() {
                w.append(k, v)?;
            }
            w.flush()?;
            Some(w)
        } else {
            None
        };

        let cache = (config.block_cache_bytes > 0)
            .then(|| Arc::new(BlockCache::new(config.block_cache_bytes, 8)));
        // Attach the cache to recovered tables.
        if let Some(cache) = &cache {
            for level in &mut levels {
                for table in level {
                    Arc::get_mut(table)
                        .expect("tables are not yet shared at open")
                        .set_cache(Arc::clone(cache));
                }
            }
        }
        let (kick_tx, kick_rx) = bounded(16);
        let inner = Arc::new(DbInner {
            state: RwLock::named(
                "lsm.state",
                DbState {
                    memtable,
                    immutables: VecDeque::new(),
                    levels,
                    wal_seq,
                },
            ),
            wal: Mutex::named("lsm.wal", wal_writer),
            next_table_id: AtomicU64::new(max_table_id + 1),
            stats: LsmStats::default(),
            kick: kick_tx,
            shutdown: AtomicBool::new(false),
            worker: Mutex::named("lsm.worker", None),
            cache,
            config,
        });
        let weak = Arc::downgrade(&inner);
        let handle = std::thread::Builder::new()
            .name("lsm-worker".into())
            .spawn(move || worker_loop(weak, kick_rx))?;
        *inner.worker.lock() = Some(handle);
        Ok(Db {
            _token: Arc::new(ShutdownToken {
                inner: Arc::downgrade(&inner),
            }),
            inner,
        })
    }

    /// Inserts or replaces a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        self.write(key, &Some(value.to_vec()))
    }

    /// Deletes a key (tombstone).
    pub fn delete(&self, key: &[u8]) -> std::io::Result<()> {
        self.write(key, &None)
    }

    fn write(&self, key: &[u8], slot: &Slot) -> std::io::Result<()> {
        let inner = &self.inner;
        loop {
            {
                let mut state = inner.state.write();
                if state.immutables.len() < inner.config.max_immutables {
                    if let Some(w) = inner.wal.lock().as_mut() {
                        w.append(key, slot)?;
                    }
                    match slot {
                        Some(v) => state.memtable.put(key, v),
                        None => state.memtable.delete(key),
                    }
                    inner.stats.puts.fetch_add(1, Ordering::Relaxed);
                    if state.memtable.bytes() >= inner.config.memtable_bytes {
                        self.rotate_locked(&mut state)?;
                    }
                    return Ok(());
                }
            }
            // Backpressure: too many unflushed memtables.
            let stall_start = Instant::now();
            let _ = inner.kick.try_send(());
            std::thread::yield_now();
            inner
                .stats
                .stall_nanos
                .fetch_add(stall_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Rotates the active memtable into the immutable list.
    fn rotate_locked(&self, state: &mut DbState) -> std::io::Result<()> {
        let inner = &self.inner;
        let full = std::mem::take(&mut state.memtable);
        let seq = state.wal_seq;
        state.wal_seq += 1;
        state.immutables.push_back((seq, Arc::new(full)));
        if inner.config.wal {
            *inner.wal.lock() = Some(WalWriter::create(&inner.config.dir, state.wal_seq)?);
        }
        let _ = inner.kick.try_send(());
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
        let state = self.inner.state.read();
        if let Some(slot) = state.memtable.get(key) {
            return Ok(slot.clone());
        }
        for (_, imm) in state.immutables.iter().rev() {
            if let Some(slot) = imm.get(key) {
                return Ok(slot.clone());
            }
        }
        for level in &state.levels {
            for table in level.iter().rev() {
                if let Some(slot) = table.get(key)? {
                    return Ok(slot);
                }
            }
        }
        Ok(None)
    }

    /// Ordered scan over `[lo, hi)`; `f` returns `false` to stop early.
    /// `None` bounds mean unbounded.
    pub fn scan(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> std::io::Result<()> {
        // Capture a consistent set of sources under the read lock, then
        // iterate without holding it (tables and immutables are Arcs; the
        // active memtable's matching range is copied).
        let mut sources: Vec<RankedSource> = Vec::new();
        {
            let state = self.inner.state.read();
            let mut rank = 0usize;
            let lo_bound = match lo {
                Some(lo) => std::ops::Bound::Included(lo),
                None => std::ops::Bound::Unbounded,
            };
            let hi_bound = match hi {
                Some(hi) => std::ops::Bound::Excluded(hi),
                None => std::ops::Bound::Unbounded,
            };
            let mem: Vec<(Vec<u8>, Slot)> = state
                .memtable
                .range(lo_bound, hi_bound)
                .map(|(k, v)| (k.to_vec(), v.clone()))
                .collect();
            sources.push(RankedSource::new(rank, Box::new(mem.into_iter())));
            rank += 1;
            for (_, imm) in state.immutables.iter().rev() {
                let imm = Arc::clone(imm);
                let items: Vec<(Vec<u8>, Slot)> = imm
                    .range(lo_bound, hi_bound)
                    .map(|(k, v)| (k.to_vec(), v.clone()))
                    .collect();
                sources.push(RankedSource::new(rank, Box::new(items.into_iter())));
                rank += 1;
            }
            for level in &state.levels {
                for table in level.iter().rev() {
                    let table = Arc::clone(table);
                    let lo_owned = lo.map(|l| l.to_vec());
                    sources.push(RankedSource::new(
                        rank,
                        Box::new(OwnedTableIter::new(table, lo_owned)),
                    ));
                    rank += 1;
                }
            }
        }
        let hi_owned = hi.map(|h| h.to_vec());
        for (k, v) in MergeIter::new(sources) {
            if let Some(hi) = &hi_owned {
                if k.as_slice() >= hi.as_slice() {
                    break;
                }
            }
            if let Some(v) = v {
                if !f(&k, &v) {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Rotates and flushes everything, then waits for the worker to drain.
    pub fn flush_all(&self) -> std::io::Result<()> {
        {
            let mut state = self.inner.state.write();
            if !state.memtable.is_empty() {
                self.rotate_locked(&mut state)?;
            }
        }
        let _ = self.inner.kick.try_send(());
        while !self.inner.state.read().immutables.is_empty() {
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Blocks until background maintenance (flush and compaction) has
    /// reached a fixpoint: no immutable memtables remain and no level
    /// exceeds its compaction trigger.
    pub fn wait_maintenance_idle(&self) {
        loop {
            let busy = {
                let state = self.inner.state.read();
                !state.immutables.is_empty()
                    || state
                        .levels
                        .iter()
                        .any(|l| l.len() >= self.inner.config.level_trigger)
            };
            if !busy {
                // One settle round: the worker may be mid-compaction.
                let before = self.inner.stats.compactions.load(Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(20));
                if self.inner.stats.compactions.load(Ordering::Relaxed) == before {
                    return;
                }
            } else {
                let _ = self.inner.kick.try_send(());
                std::thread::yield_now();
            }
        }
    }

    /// Engine statistics.
    pub fn stats(&self) -> &LsmStats {
        &self.inner.stats
    }

    /// Block-cache statistics: `(hits, misses)`, zeros when disabled.
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.inner.cache {
            Some(c) => (c.hits(), c.misses()),
            None => (0, 0),
        }
    }

    /// Tables per level (diagnostics).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.inner
            .state
            .read()
            .levels
            .iter()
            .map(Vec::len)
            .collect()
    }
}

// Teardown is driven by `ShutdownToken` (see its docs): by the time
// `DbInner` drops, the worker has been joined, so the derived field drops
// (which flush the WAL writer's buffer) happen synchronously on the last
// user handle's thread.

fn bad_manifest<E: std::fmt::Display>(e: E) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("bad manifest: {e}"),
    )
}

/// Iterator over an `Arc<Table>` that owns its handle (unlike
/// [`Table::iter_from`], which borrows), decoding one block at a time.
struct OwnedTableIter {
    table: Arc<Table>,
    block_idx: usize,
    entries: std::vec::IntoIter<(Vec<u8>, Slot)>,
    lo: Option<Vec<u8>>,
    started: bool,
}

impl OwnedTableIter {
    fn new(table: Arc<Table>, lo: Option<Vec<u8>>) -> Self {
        OwnedTableIter {
            table,
            block_idx: 0,
            entries: Vec::new().into_iter(),
            lo,
            started: false,
        }
    }

    fn load_next_block(&mut self) -> bool {
        if !self.started {
            self.started = true;
            if let Some(lo) = &self.lo {
                self.block_idx = self
                    .table
                    .index()
                    .partition_point(|e| e.last_key.as_slice() < lo.as_slice());
            }
        }
        let Some(entry) = self.table.index().get(self.block_idx) else {
            return false;
        };
        let Ok(block) = self.table.read_block(entry) else {
            return false;
        };
        self.block_idx += 1;
        // Decode the whole block into owned entries.
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= block.len() {
            let klen = u32::from_le_bytes(block[pos..pos + 4].try_into().expect("len 4")) as usize;
            let vlen = u32::from_le_bytes(block[pos + 4..pos + 8].try_into().expect("len 4"));
            pos += 8;
            let key = block[pos..pos + klen].to_vec();
            pos += klen;
            let value = if vlen == u32::MAX {
                None
            } else {
                let v = block[pos..pos + vlen as usize].to_vec();
                pos += vlen as usize;
                Some(v)
            };
            if let Some(lo) = &self.lo {
                if key.as_slice() < lo.as_slice() {
                    continue;
                }
            }
            out.push((key, value));
        }
        self.entries = out.into_iter();
        true
    }
}

impl Iterator for OwnedTableIter {
    type Item = (Vec<u8>, Slot);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.entries.next() {
                return Some(e);
            }
            if !self.load_next_block() {
                return None;
            }
        }
    }
}

/// Background worker: flushes immutable memtables and compacts levels.
fn worker_loop(inner: std::sync::Weak<DbInner>, kick: Receiver<()>) {
    loop {
        // Wait for work (or poll periodically to catch shutdown).
        let _ = kick.recv_timeout(std::time::Duration::from_millis(20));
        let Some(db) = inner.upgrade() else { return };
        if db.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Err(e) = drain(&db) {
            // Background I/O failure (and not a shutdown race): reads
            // still work from existing state, so record and keep going.
            if !db.shutdown.load(Ordering::Acquire) {
                eprintln!("lsm worker error: {e}");
            }
        }
    }
}

/// Flushes all pending immutables, then runs compactions to fixpoint.
fn drain(db: &Arc<DbInner>) -> std::io::Result<()> {
    // Flush immutable memtables, oldest first.
    loop {
        if db.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let oldest = {
            let state = db.state.read();
            state.immutables.front().cloned()
        };
        let Some((wal_seq, imm)) = oldest else { break };
        let start = Instant::now();
        let id = db.next_table_id.fetch_add(1, Ordering::Relaxed);
        let path = db.config.dir.join(format!("sst-{id:010}.sst"));
        let mut builder = TableBuilder::create(&path, db.config.block_bytes)?;
        let mut bytes = 0u64;
        for (k, v) in imm.iter() {
            bytes += (k.len() + v.as_ref().map_or(0, |v| v.len())) as u64;
            builder.add(k, v)?;
        }
        let mut table = builder.finish()?;
        if let Some(cache) = &db.cache {
            table.set_cache(Arc::clone(cache));
        }
        {
            let mut state = db.state.write();
            if state.levels.is_empty() {
                state.levels.push(Vec::new());
            }
            state.levels[0].push(Arc::new(table));
            // Publish the flush statistics before dropping the immutable:
            // waiters poll `immutables.is_empty()` (e.g. `sync`,
            // `wait_maintenance_idle`) and must not observe an empty queue
            // with the flush still unaccounted.
            db.stats.flushes.fetch_add(1, Ordering::Relaxed);
            db.stats.bytes_flushed.fetch_add(bytes, Ordering::Relaxed);
            db.stats
                .flush_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            state.immutables.pop_front();
            save_manifest(db, &state)?;
        }
        let _ = std::fs::remove_file(db.config.dir.join(format!("wal-{wal_seq:010}")));
    }
    // Size-tiered compaction to fixpoint.
    loop {
        if db.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let job = {
            let state = db.state.read();
            let mut found = None;
            for (level, tables) in state.levels.iter().enumerate() {
                if tables.len() >= db.config.level_trigger {
                    let deepest = state.levels[level + 1..].iter().all(Vec::is_empty);
                    found = Some((level, tables.clone(), deepest));
                    break;
                }
            }
            found
        };
        let Some((level, tables, into_deepest)) = job else {
            break;
        };
        let start = Instant::now();
        let id = db.next_table_id.fetch_add(1, Ordering::Relaxed);
        let path = db.config.dir.join(format!("sst-{id:010}.sst"));
        let mut builder = TableBuilder::create(&path, db.config.block_bytes)?;
        let sources: Vec<RankedSource> = tables
            .iter()
            .rev() // newest first = lowest rank
            .enumerate()
            .map(|(rank, t)| {
                RankedSource::new(rank, Box::new(OwnedTableIter::new(Arc::clone(t), None)))
            })
            .collect();
        let mut bytes = 0u64;
        for (k, v) in MergeIter::new(sources) {
            if v.is_none() && into_deepest {
                continue; // tombstones die at the bottom
            }
            bytes += (k.len() + v.as_ref().map_or(0, |v| v.len())) as u64;
            builder.add(&k, &v)?;
        }
        let mut merged = builder.finish()?;
        if let Some(cache) = &db.cache {
            merged.set_cache(Arc::clone(cache));
            for t in &tables {
                cache.evict_table(t.id());
            }
        }
        let removed: Vec<PathBuf> = tables.iter().map(|t| t.path().to_path_buf()).collect();
        {
            let mut state = db.state.write();
            let merged_ids: std::collections::HashSet<_> =
                tables.iter().map(|t| t.path().to_path_buf()).collect();
            state.levels[level].retain(|t| !merged_ids.contains(t.path()));
            while state.levels.len() <= level + 1 {
                state.levels.push(Vec::new());
            }
            state.levels[level + 1].push(Arc::new(merged));
            save_manifest(db, &state)?;
        }
        for path in removed {
            let _ = std::fs::remove_file(path);
        }
        db.stats.compactions.fetch_add(1, Ordering::Relaxed);
        db.stats.bytes_compacted.fetch_add(bytes, Ordering::Relaxed);
        db.stats
            .compact_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    Ok(())
}

/// Atomically rewrites the manifest (`level table_id` lines).
fn save_manifest(db: &DbInner, state: &DbState) -> std::io::Result<()> {
    let mut out = String::new();
    for (level, tables) in state.levels.iter().enumerate() {
        for table in tables {
            let name = table
                .path()
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("");
            if let Some(id) = name.strip_prefix("sst-") {
                out.push_str(&format!("{level} {}\n", id.parse::<u64>().unwrap_or(0)));
            }
        }
    }
    let tmp = db.config.dir.join("MANIFEST.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(tmp, db.config.dir.join("MANIFEST"))?;
    Ok(())
}
