//! Sorted string tables (SSTables): immutable, sorted on-disk runs.
//!
//! Layout:
//!
//! ```text
//! data blocks : entries [klen:u32][vlen:u32][key][value]
//!               (vlen == u32::MAX marks a tombstone, no value bytes)
//! index       : [entry_count:u64][n_blocks:u32]
//!               then per block [klen:u32][last_key][off:u64][len:u32]
//! bloom       : Bloom::encode
//! footer (40B): index_off:u64 index_len:u64 bloom_off:u64 bloom_len:u64 magic:u64
//! ```
//!
//! The index and Bloom filter are small and kept in memory per open table;
//! data blocks are read on demand with `pread`.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use std::sync::Arc;

use crate::bloom::Bloom;
use crate::cache::BlockCache;
use crate::memtable::Slot;

/// Footer magic value.
const MAGIC: u64 = 0x4c53_4d54_4142_4c45; // "LSMTABLE"

/// Tombstone marker in the value-length field.
const TOMBSTONE: u32 = u32::MAX;

/// Builds an SSTable from entries supplied in strictly increasing key
/// order.
pub struct TableBuilder {
    file: io::BufWriter<File>,
    path: PathBuf,
    block_target: usize,
    block: Vec<u8>,
    block_start: u64,
    offset: u64,
    index: Vec<IndexEntry>,
    last_key: Option<Vec<u8>>,
    keys: Vec<u64>, // FNV hashes for the bloom filter
    count: u64,
}

/// One index entry: the block's last key and its extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Largest key in the block.
    pub last_key: Vec<u8>,
    /// File offset of the block.
    pub offset: u64,
    /// Length of the block in bytes.
    pub len: u32,
}

impl TableBuilder {
    /// Creates a builder writing to `path`.
    pub fn create(path: &Path, block_target: usize) -> io::Result<TableBuilder> {
        // Read access too: `finish` hands the same descriptor to the
        // returned `Table` for serving lookups.
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(TableBuilder {
            file: io::BufWriter::new(file),
            path: path.to_path_buf(),
            block_target: block_target.max(256),
            block: Vec::new(),
            block_start: 0,
            offset: 0,
            index: Vec::new(),
            last_key: None,
            keys: Vec::new(),
            count: 0,
        })
    }

    /// Appends an entry; keys must arrive in strictly increasing order.
    ///
    /// # Panics
    ///
    /// Panics if keys are not strictly increasing (an LSM invariant whose
    /// violation would corrupt every read path).
    pub fn add(&mut self, key: &[u8], value: &Slot) -> io::Result<()> {
        if let Some(prev) = &self.last_key {
            assert!(
                key > prev.as_slice(),
                "keys must be strictly increasing in an SSTable"
            );
        }
        self.block
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        match value {
            Some(v) => {
                self.block
                    .extend_from_slice(&(v.len() as u32).to_le_bytes());
                self.block.extend_from_slice(key);
                self.block.extend_from_slice(v);
            }
            None => {
                self.block.extend_from_slice(&TOMBSTONE.to_le_bytes());
                self.block.extend_from_slice(key);
            }
        }
        self.keys.push(crate::bloom::fnv1a(key));
        self.last_key = Some(key.to_vec());
        self.count += 1;
        if self.block.len() >= self.block_target {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> io::Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        crate::failpoint("lsm::sstable_write")?;
        self.file.write_all(&self.block)?;
        self.index.push(IndexEntry {
            last_key: self.last_key.clone().expect("non-empty block has a key"),
            offset: self.block_start,
            len: self.block.len() as u32,
        });
        self.offset += self.block.len() as u64;
        self.block_start = self.offset;
        self.block.clear();
        Ok(())
    }

    /// Finalizes the table and returns an open handle to it.
    pub fn finish(mut self) -> io::Result<Table> {
        self.finish_block()?;
        crate::failpoint("lsm::sstable_write")?;
        // Bloom filter over all keys.
        let mut bloom = Bloom::new(self.keys.len().max(1), 10);
        for h in &self.keys {
            // Insert by pre-computed hash: re-hash the 8 hash bytes. This
            // keeps the builder from retaining every key.
            bloom.insert(&h.to_le_bytes());
        }
        let index_off = self.offset;
        let mut index_buf = Vec::new();
        index_buf.extend_from_slice(&self.count.to_le_bytes());
        index_buf.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            index_buf.extend_from_slice(&(e.last_key.len() as u32).to_le_bytes());
            index_buf.extend_from_slice(&e.last_key);
            index_buf.extend_from_slice(&e.offset.to_le_bytes());
            index_buf.extend_from_slice(&e.len.to_le_bytes());
        }
        self.file.write_all(&index_buf)?;
        let bloom_off = index_off + index_buf.len() as u64;
        let mut bloom_buf = Vec::new();
        bloom.encode(&mut bloom_buf);
        self.file.write_all(&bloom_buf)?;
        let mut footer = Vec::with_capacity(40);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&(bloom_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        self.file.write_all(&footer)?;
        self.file.flush()?;
        let file = self.file.into_inner().map_err(|e| e.into_error())?;
        let id = crate::bloom::fnv1a(self.path.as_os_str().as_encoded_bytes());
        Ok(Table {
            file,
            path: self.path,
            index: self.index,
            bloom,
            count: self.count,
            id,
            cache: None,
        })
    }
}

/// An open, immutable SSTable.
pub struct Table {
    file: File,
    path: PathBuf,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    count: u64,
    /// Stable id for block-cache keys (hash of the file path).
    id: u64,
    /// Optional shared block cache.
    cache: Option<Arc<BlockCache>>,
}

impl Table {
    /// Opens an existing table file.
    pub fn open(path: &Path) -> io::Result<Table> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < 40 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "table too short",
            ));
        }
        let mut footer = [0u8; 40];
        file.read_exact_at(&mut footer, len - 40)?;
        let magic = u64::from_le_bytes(footer[32..40].try_into().expect("len 8"));
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad table magic",
            ));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().expect("len 8"));
        let index_len = u64::from_le_bytes(footer[8..16].try_into().expect("len 8"));
        let bloom_off = u64::from_le_bytes(footer[16..24].try_into().expect("len 8"));
        let bloom_len = u64::from_le_bytes(footer[24..32].try_into().expect("len 8"));

        let mut index_buf = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_buf, index_off)?;
        let count = u64::from_le_bytes(index_buf[0..8].try_into().expect("len 8"));
        let n_blocks = u32::from_le_bytes(index_buf[8..12].try_into().expect("len 4"));
        let mut pos = 12usize;
        let mut index = Vec::with_capacity(n_blocks as usize);
        for _ in 0..n_blocks {
            let klen =
                u32::from_le_bytes(index_buf[pos..pos + 4].try_into().expect("len 4")) as usize;
            pos += 4;
            let last_key = index_buf[pos..pos + klen].to_vec();
            pos += klen;
            let offset = u64::from_le_bytes(index_buf[pos..pos + 8].try_into().expect("len 8"));
            pos += 8;
            let blen = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().expect("len 4"));
            pos += 4;
            index.push(IndexEntry {
                last_key,
                offset,
                len: blen,
            });
        }
        let mut bloom_buf = vec![0u8; bloom_len as usize];
        file.read_exact_at(&mut bloom_buf, bloom_off)?;
        let bloom = Bloom::decode(&bloom_buf)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad bloom filter"))?;
        Ok(Table {
            file,
            path: path.to_path_buf(),
            index,
            bloom,
            count,
            id: crate::bloom::fnv1a(path.as_os_str().as_encoded_bytes()),
            cache: None,
        })
    }

    /// Number of entries (including tombstones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Stable id used for block-cache keys.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a shared block cache; subsequent block reads consult it.
    pub fn set_cache(&mut self, cache: Arc<BlockCache>) {
        self.cache = Some(cache);
    }

    /// The table's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Smallest key in the table (first block's entries start with it),
    /// or `None` for an empty table.
    pub fn last_key(&self) -> Option<&[u8]> {
        self.index.last().map(|e| e.last_key.as_slice())
    }

    /// Point lookup. Returns `None` if absent, `Some(None)` for a
    /// tombstone.
    pub fn get(&self, key: &[u8]) -> io::Result<Option<Slot>> {
        if !self
            .bloom
            .may_contain(&crate::bloom::fnv1a(key).to_le_bytes())
        {
            return Ok(None);
        }
        // First block whose last_key >= key.
        let idx = self.index.partition_point(|e| e.last_key.as_slice() < key);
        let Some(entry) = self.index.get(idx) else {
            return Ok(None);
        };
        let block = self.read_block(entry)?;
        for (k, v) in BlockIter::new(&block) {
            match k.cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(v.map(|v| v.to_vec()))),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Reads a data block, consulting the block cache when attached.
    pub fn read_block(&self, entry: &IndexEntry) -> io::Result<Arc<Vec<u8>>> {
        let key = (self.id, entry.offset);
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(&key) {
                return Ok(block);
            }
        }
        let mut buf = vec![0u8; entry.len as usize];
        self.file.read_exact_at(&mut buf, entry.offset)?;
        let block = Arc::new(buf);
        if let Some(cache) = &self.cache {
            cache.insert(key, Arc::clone(&block));
        }
        Ok(block)
    }

    /// The block index.
    pub fn index(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Iterates all entries in key order starting at the first key `>= lo`
    /// (or the beginning when `lo` is `None`).
    pub fn iter_from(&self, lo: Option<&[u8]>) -> TableIter<'_> {
        let start_block = match lo {
            Some(lo) => self.index.partition_point(|e| e.last_key.as_slice() < lo),
            None => 0,
        };
        TableIter {
            table: self,
            block_idx: start_block,
            block: Arc::new(Vec::new()),
            pos: 0,
            loaded: false,
            lo: lo.map(|k| k.to_vec()),
        }
    }
}

/// Iterator over one in-memory data block.
struct BlockIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BlockIter<'a> {
    fn new(data: &'a [u8]) -> Self {
        BlockIter { data, pos: 0 }
    }
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = (&'a [u8], Option<&'a [u8]>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + 8 > self.data.len() {
            return None;
        }
        let klen = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(self.data[self.pos + 4..self.pos + 8].try_into().ok()?);
        self.pos += 8;
        let key = &self.data[self.pos..self.pos + klen];
        self.pos += klen;
        if vlen == TOMBSTONE {
            Some((key, None))
        } else {
            let value = &self.data[self.pos..self.pos + vlen as usize];
            self.pos += vlen as usize;
            Some((key, Some(value)))
        }
    }
}

/// Owning iterator over a whole table (loads one block at a time).
pub struct TableIter<'a> {
    table: &'a Table,
    block_idx: usize,
    block: Arc<Vec<u8>>,
    pos: usize,
    loaded: bool,
    lo: Option<Vec<u8>>,
}

impl TableIter<'_> {
    fn load_next_block(&mut self) -> bool {
        let Some(entry) = self.table.index.get(self.block_idx) else {
            return false;
        };
        match self.table.read_block(entry) {
            Ok(b) => {
                self.block = b;
                self.pos = 0;
                self.block_idx += 1;
                self.loaded = true;
                true
            }
            Err(_) => false,
        }
    }
}

impl Iterator for TableIter<'_> {
    type Item = (Vec<u8>, Slot);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if (!self.loaded || self.pos >= self.block.len()) && !self.load_next_block() {
                return None;
            }
            // Decode one entry at pos.
            if self.pos + 8 > self.block.len() {
                self.loaded = false;
                continue;
            }
            let klen =
                u32::from_le_bytes(self.block[self.pos..self.pos + 4].try_into().ok()?) as usize;
            let vlen = u32::from_le_bytes(self.block[self.pos + 4..self.pos + 8].try_into().ok()?);
            self.pos += 8;
            let key = self.block[self.pos..self.pos + klen].to_vec();
            self.pos += klen;
            let value = if vlen == TOMBSTONE {
                None
            } else {
                let v = self.block[self.pos..self.pos + vlen as usize].to_vec();
                self.pos += vlen as usize;
                Some(v)
            };
            if let Some(lo) = &self.lo {
                if key.as_slice() < lo.as_slice() {
                    continue;
                }
            }
            return Some((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsm-sst-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("t.sst")
    }

    fn build(path: &Path, n: u32) -> Table {
        let mut b = TableBuilder::create(path, 512).unwrap();
        for i in 0..n {
            let key = i.to_be_bytes();
            if i % 17 == 3 {
                b.add(&key, &None).unwrap();
            } else {
                b.add(&key, &Some(format!("value-{i}").into_bytes()))
                    .unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn build_and_get() {
        let path = tmp("get");
        let t = build(&path, 1_000);
        assert_eq!(t.count(), 1_000);
        assert_eq!(
            t.get(&42u32.to_be_bytes()).unwrap(),
            Some(Some(b"value-42".to_vec()))
        );
        assert_eq!(t.get(&3u32.to_be_bytes()).unwrap(), Some(None)); // tombstone
        assert_eq!(t.get(&5_000u32.to_be_bytes()).unwrap(), None);
    }

    #[test]
    fn reopen_matches_built_table() {
        let path = tmp("reopen");
        let t = build(&path, 500);
        drop(t);
        let t = Table::open(&path).unwrap();
        assert_eq!(t.count(), 500);
        for i in 0..500u32 {
            let got = t.get(&i.to_be_bytes()).unwrap();
            if i % 17 == 3 {
                assert_eq!(got, Some(None));
            } else {
                assert_eq!(got, Some(Some(format!("value-{i}").into_bytes())));
            }
        }
    }

    #[test]
    fn iter_returns_all_in_order() {
        let path = tmp("iter");
        let t = build(&path, 777);
        let keys: Vec<u32> = t
            .iter_from(None)
            .map(|(k, _)| u32::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(keys, (0..777).collect::<Vec<_>>());
    }

    #[test]
    fn iter_from_seeks_to_lower_bound() {
        let path = tmp("seek");
        let t = build(&path, 300);
        let from = 123u32.to_be_bytes();
        let keys: Vec<u32> = t
            .iter_from(Some(&from))
            .map(|(k, _)| u32::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(keys, (123..300).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_keys_panic() {
        let path = tmp("order");
        let mut b = TableBuilder::create(&path, 512).unwrap();
        b.add(b"b", &Some(vec![1])).unwrap();
        b.add(b"a", &Some(vec![2])).unwrap();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmp("magic");
        build(&path, 10);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xff;
        std::fs::write(&path, data).unwrap();
        assert!(Table::open(&path).is_err());
    }

    #[test]
    fn empty_table_works() {
        let path = tmp("empty");
        let b = TableBuilder::create(&path, 512).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.count(), 0);
        assert_eq!(t.get(b"x").unwrap(), None);
        assert_eq!(t.iter_from(None).count(), 0);
    }
}
