//! In-memory write buffer (memtable).
//!
//! A sorted map of the most recent writes. When it reaches the configured
//! size it is rotated to the immutable list and flushed to an SSTable by
//! the background thread. Deletes are tombstones (`None` values) so they
//! shadow older entries in lower levels until compaction drops them.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A value or a tombstone.
pub type Slot = Option<Vec<u8>>;

/// Sorted in-memory write buffer.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Slot>,
    bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Inserts or replaces a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.bytes += key.len() + value.len();
        if let Some(old) = self.map.insert(key.to_vec(), Some(value.to_vec())) {
            self.bytes -= old.map_or(0, |v| v.len());
        }
    }

    /// Inserts a tombstone for `key`.
    pub fn delete(&mut self, key: &[u8]) {
        self.bytes += key.len();
        if let Some(old) = self.map.insert(key.to_vec(), None) {
            self.bytes -= old.map_or(0, |v| v.len());
        }
    }

    /// Looks up a key. `Some(None)` means a tombstone shadows the key.
    pub fn get(&self, key: &[u8]) -> Option<&Slot> {
        self.map.get(key)
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memtable is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates entries with keys in `[lo, hi]` in key order.
    pub fn range<'a>(
        &'a self,
        lo: Bound<&'a [u8]>,
        hi: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a [u8], &'a Slot)> + 'a {
        self.map
            .range::<[u8], _>((lo, hi))
            .map(|(k, v)| (k.as_slice(), v))
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Slot)> + '_ {
        self.map.iter().map(|(k, v)| (k.as_slice(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(b"a", b"1");
        m.put(b"b", b"2");
        m.put(b"a", b"3");
        assert_eq!(m.get(b"a"), Some(&Some(b"3".to_vec())));
        assert_eq!(m.get(b"b"), Some(&Some(b"2".to_vec())));
        assert_eq!(m.get(b"c"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn tombstones_shadow() {
        let mut m = Memtable::new();
        m.put(b"a", b"1");
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(&None));
    }

    #[test]
    fn range_is_ordered_and_bounded() {
        let mut m = Memtable::new();
        for i in [5u8, 1, 9, 3, 7] {
            m.put(&[i], &[i * 10]);
        }
        let got: Vec<u8> = m
            .range(Bound::Included(&[3][..]), Bound::Included(&[7][..]))
            .map(|(k, _)| k[0])
            .collect();
        assert_eq!(got, vec![3, 5, 7]);
    }

    #[test]
    fn bytes_tracks_growth() {
        let mut m = Memtable::new();
        assert_eq!(m.bytes(), 0);
        m.put(b"key", b"value");
        assert_eq!(m.bytes(), 8);
        m.put(b"key", b"longer-value");
        assert!(m.bytes() >= 12);
    }
}
