//! K-way merge of sorted entry streams with recency-based shadowing.

use crate::memtable::Slot;

/// One sorted input stream tagged with a recency rank (lower = newer).
pub struct RankedSource {
    iter: Box<dyn Iterator<Item = (Vec<u8>, Slot)>>,
    head: Option<(Vec<u8>, Slot)>,
    rank: usize,
}

impl RankedSource {
    /// Wraps a sorted iterator with recency `rank`.
    pub fn new(rank: usize, iter: Box<dyn Iterator<Item = (Vec<u8>, Slot)>>) -> Self {
        let mut s = RankedSource {
            iter,
            head: None,
            rank,
        };
        s.advance();
        s
    }

    fn advance(&mut self) {
        self.head = self.iter.next();
    }
}

/// Merges sorted streams; for duplicate keys the lowest-rank (newest)
/// stream wins. Tombstones are *returned* (the caller decides whether to
/// drop them, e.g. only at the deepest compaction level).
pub struct MergeIter {
    sources: Vec<RankedSource>,
}

impl MergeIter {
    /// Creates a merge over `sources`.
    pub fn new(sources: Vec<RankedSource>) -> Self {
        MergeIter { sources }
    }
}

impl Iterator for MergeIter {
    type Item = (Vec<u8>, Slot);

    fn next(&mut self) -> Option<Self::Item> {
        // Find the smallest key; among equals, the lowest rank wins.
        let mut best: Option<(usize, &[u8], usize)> = None; // (idx, key, rank)
        for (i, s) in self.sources.iter().enumerate() {
            if let Some((k, _)) = &s.head {
                let better = match &best {
                    None => true,
                    Some((_, bk, br)) => {
                        k.as_slice() < *bk || (k.as_slice() == *bk && s.rank < *br)
                    }
                };
                if better {
                    best = Some((i, k.as_slice(), s.rank));
                }
            }
        }
        let (idx, key, _) = best?;
        let key = key.to_vec();
        let winner = self.sources[idx].head.take().expect("head checked");
        self.sources[idx].advance();
        // Discard shadowed duplicates from every other source.
        for s in &mut self.sources {
            while matches!(&s.head, Some((k, _)) if k == &key) {
                s.advance();
            }
        }
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(rank: usize, entries: Vec<(&str, Option<&str>)>) -> RankedSource {
        let items: Vec<(Vec<u8>, Slot)> = entries
            .into_iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.map(|v| v.as_bytes().to_vec())))
            .collect();
        RankedSource::new(rank, Box::new(items.into_iter()))
    }

    fn collect(m: MergeIter) -> Vec<(String, Option<String>)> {
        m.map(|(k, v)| {
            (
                String::from_utf8(k).unwrap(),
                v.map(|v| String::from_utf8(v).unwrap()),
            )
        })
        .collect()
    }

    #[test]
    fn merges_disjoint_streams_in_order() {
        let m = MergeIter::new(vec![
            src(0, vec![("a", Some("1")), ("c", Some("3"))]),
            src(1, vec![("b", Some("2")), ("d", Some("4"))]),
        ]);
        let got = collect(m);
        assert_eq!(
            got,
            vec![
                ("a".into(), Some("1".into())),
                ("b".into(), Some("2".into())),
                ("c".into(), Some("3".into())),
                ("d".into(), Some("4".into())),
            ]
        );
    }

    #[test]
    fn newest_rank_shadows_duplicates() {
        let m = MergeIter::new(vec![
            src(1, vec![("a", Some("old")), ("b", Some("keep"))]),
            src(0, vec![("a", Some("new"))]),
        ]);
        let got = collect(m);
        assert_eq!(
            got,
            vec![
                ("a".into(), Some("new".into())),
                ("b".into(), Some("keep".into())),
            ]
        );
    }

    #[test]
    fn tombstones_pass_through_and_shadow() {
        let m = MergeIter::new(vec![
            src(0, vec![("a", None)]),
            src(1, vec![("a", Some("dead")), ("b", Some("live"))]),
        ]);
        let got = collect(m);
        assert_eq!(
            got,
            vec![("a".into(), None), ("b".into(), Some("live".into()))]
        );
    }

    #[test]
    fn three_way_duplicate_resolution() {
        let m = MergeIter::new(vec![
            src(2, vec![("k", Some("v2"))]),
            src(0, vec![("k", Some("v0"))]),
            src(1, vec![("k", Some("v1"))]),
        ]);
        assert_eq!(collect(m), vec![("k".into(), Some("v0".into()))]);
    }

    #[test]
    fn empty_sources_are_fine() {
        let m = MergeIter::new(vec![src(0, vec![]), src(1, vec![("a", Some("1"))])]);
        assert_eq!(collect(m), vec![("a".into(), Some("1".into()))]);
        let m = MergeIter::new(vec![]);
        assert_eq!(collect(m).len(), 0);
    }
}
