//! Monitored-application simulator for probe-effect measurements
//! (Figure 14, §6.2).
//!
//! Probe effect is the throughput decline a monitored application
//! suffers because telemetry collection competes for host resources. The
//! paper measures RocksDB's request throughput while capturing ≈8 M
//! records/s into each backend. This module provides the equivalent
//! co-located workload: a sharded in-memory key-value store driven by
//! worker threads, where every operation emits a latency record through
//! a caller-supplied per-thread telemetry callback. The callback's cost
//! (plus whatever the backend does with the records) *is* the probe
//! effect.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::records::LatencyRecord;

/// Configuration for the KV-store workload.
#[derive(Debug, Clone)]
pub struct KvAppConfig {
    /// Number of keys in the store.
    pub keys: usize,
    /// Worker threads driving operations.
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvAppConfig {
    fn default() -> Self {
        KvAppConfig {
            keys: 100_000,
            threads: 2,
            duration: Duration::from_millis(500),
            read_fraction: 0.8,
            seed: 1,
        }
    }
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct KvAppReport {
    /// Total operations completed.
    pub ops: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
}

impl KvAppReport {
    /// Application throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// A sharded in-memory KV store (the monitored application).
struct Shards {
    shards: Vec<parking_lot::Mutex<std::collections::HashMap<u64, u64>>>,
}

impl Shards {
    fn new(n: usize) -> Shards {
        Shards {
            shards: (0..n)
                .map(|_| {
                    parking_lot::Mutex::named(
                        "telemetry.kvapp_shard",
                        std::collections::HashMap::new(),
                    )
                })
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &parking_lot::Mutex<std::collections::HashMap<u64, u64>> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.shard(key).lock().get(&key).copied()
    }

    fn put(&self, key: u64, value: u64) {
        self.shard(key).lock().insert(key, value);
    }
}

/// Runs the monitored workload; `make_telemetry(thread_index)` builds the
/// per-thread telemetry callback invoked once per operation.
///
/// Returns the application's achieved throughput. Run once with a no-op
/// callback to obtain the baseline, then with a real collection pipeline
/// to measure probe effect as the relative throughput decline.
pub fn run<F>(config: &KvAppConfig, make_telemetry: impl Fn(usize) -> F) -> KvAppReport
where
    F: FnMut(&LatencyRecord) + Send + 'static,
{
    let shards = Arc::new(Shards::new(64));
    // Preload keys.
    for k in 0..config.keys as u64 {
        shards.put(k, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..config.threads {
        let shards = Arc::clone(&shards);
        let stop = Arc::clone(&stop);
        let total_ops = Arc::clone(&total_ops);
        let mut telemetry = make_telemetry(t);
        let keys = config.keys as u64;
        let read_fraction = config.read_fraction;
        let seed = config.seed.wrapping_add(t as u64);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ops = 0u64;
            let epoch = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                // A small batch between stop checks.
                for _ in 0..64 {
                    let key = rng.random_range(0..keys);
                    let op_start = Instant::now();
                    let op;
                    if rng.random_range(0.0..1.0) < read_fraction {
                        op = 0;
                        std::hint::black_box(shards.get(key));
                    } else {
                        op = 1;
                        shards.put(key, ops);
                    }
                    let latency_ns = op_start.elapsed().as_nanos() as u64;
                    let rec = LatencyRecord {
                        ts: epoch.elapsed().as_nanos() as u64,
                        latency_ns,
                        op,
                        pid: 3000,
                        key_hash: key,
                        seq: ops,
                        flags: 0,
                        cpu: t as u32,
                    };
                    telemetry(&rec);
                    ops += 1;
                }
            }
            total_ops.fetch_add(ops, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("kv worker panicked");
    }
    KvAppReport {
        ops: total_ops.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_completes_and_counts_ops() {
        let config = KvAppConfig {
            keys: 1_000,
            threads: 2,
            duration: Duration::from_millis(100),
            ..Default::default()
        };
        let report = run(&config, |_| |_: &LatencyRecord| {});
        assert!(report.ops > 0);
        assert!(report.ops_per_sec() > 0.0);
    }

    #[test]
    fn telemetry_callback_sees_every_op() {
        let config = KvAppConfig {
            keys: 100,
            threads: 3,
            duration: Duration::from_millis(80),
            ..Default::default()
        };
        let counter = Arc::new(AtomicU64::new(0));
        let report = run(&config, |_| {
            let counter = Arc::clone(&counter);
            move |_: &LatencyRecord| {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), report.ops);
    }

    #[test]
    fn expensive_telemetry_lowers_throughput() {
        let config = KvAppConfig {
            keys: 10_000,
            threads: 2,
            duration: Duration::from_millis(200),
            ..Default::default()
        };
        let fast = run(&config, |_| |_: &LatencyRecord| {});
        let slow = run(&config, |_| {
            |r: &LatencyRecord| {
                // Burn cycles proportional to a heavy collection path.
                let mut x = r.latency_ns;
                for _ in 0..2_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(x);
            }
        });
        assert!(
            slow.ops_per_sec() < fast.ops_per_sec(),
            "heavy telemetry should reduce throughput ({} vs {})",
            slow.ops_per_sec(),
            fast.ops_per_sec()
        );
    }
}
