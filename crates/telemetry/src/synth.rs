//! Generic synthetic record streams for drill-down benchmarks.
//!
//! Figures 2 and 15 use ingest-only workloads of fixed-size records at a
//! configurable rate; this module provides an allocation-free generator
//! for them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An allocation-free stream of fixed-size records at a constant rate.
///
/// Record payloads are pseudo-random but deterministic for a seed; the
/// first 8 bytes carry a little-endian value usable by index extractors.
pub struct SyntheticStream {
    rng: StdRng,
    record_size: usize,
    interval_ns: u64,
    next_ts: u64,
    seq: u64,
}

impl SyntheticStream {
    /// Creates a stream of `record_size`-byte records at `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics unless `record_size >= 8` and `rate_per_sec > 0`.
    pub fn new(seed: u64, record_size: usize, rate_per_sec: f64) -> SyntheticStream {
        assert!(record_size >= 8, "records carry an 8-byte value");
        assert!(rate_per_sec > 0.0, "rate must be positive");
        SyntheticStream {
            rng: StdRng::seed_from_u64(seed),
            record_size,
            interval_ns: (1e9 / rate_per_sec).max(1.0) as u64,
            next_ts: 0,
            seq: 0,
        }
    }

    /// Fills `buf` with the next record and returns its timestamp.
    pub fn next_into(&mut self, buf: &mut Vec<u8>) -> u64 {
        let ts = self.next_ts;
        self.next_ts += self.interval_ns;
        buf.resize(self.record_size, 0);
        let value: u64 = self.rng.random_range(0..1_000_000);
        buf[0..8].copy_from_slice(&value.to_le_bytes());
        if self.record_size >= 16 {
            buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        }
        // Fill the remainder with cheap deterministic noise.
        for (i, b) in buf[16.min(self.record_size)..].iter_mut().enumerate() {
            *b = (self.seq as usize + i) as u8;
        }
        self.seq += 1;
        ts
    }

    /// Records generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    /// The fixed record size.
    pub fn record_size(&self) -> usize {
        self.record_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_advance_at_the_configured_rate() {
        let mut s = SyntheticStream::new(1, 48, 1_000_000.0); // 1M/s => 1000 ns apart
        let mut buf = Vec::new();
        let t0 = s.next_into(&mut buf);
        let t1 = s.next_into(&mut buf);
        assert_eq!(t1 - t0, 1_000);
        assert_eq!(buf.len(), 48);
        assert_eq!(s.generated(), 2);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let collect = |seed| {
            let mut s = SyntheticStream::new(seed, 32, 1e6);
            let mut buf = Vec::new();
            (0..10)
                .map(|_| {
                    s.next_into(&mut buf);
                    buf.clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    #[should_panic(expected = "8-byte value")]
    fn tiny_records_are_rejected() {
        SyntheticStream::new(0, 4, 1e6);
    }
}
