//! # HFT workload substrate for the Loom reproduction
//!
//! The paper evaluates Loom with telemetry captured from real Redis and
//! RocksDB deployments instrumented via eBPF and packet capture. This
//! crate is the synthetic equivalent: seeded, deterministic generators
//! that reproduce the workloads of Figure 10 — record sizes (48 B
//! latency records, 60 B page-cache events, variable packets), per-phase
//! rates, and the rare-event correlations of §2.1 (six slow requests
//! caused by six mangled packets) — plus uniform sampling (Figure 3) and
//! a monitored-application simulator for probe-effect measurements
//! (Figure 14).

pub mod dist;
pub mod kvapp;
pub mod records;
pub mod redis;
pub mod rocksdb;
pub mod sampling;
pub mod sink;
pub mod synth;

pub use records::{LatencyRecord, PacketRecord, PageCacheRecord};
pub use sink::{NullSink, RawFileSink, SourceKind, TelemetrySink};
