//! Uniform sampling of telemetry streams (Figure 3).
//!
//! Sampling reduces the data rate so a slower backend can keep up — at
//! the cost of missing rare events. The paper's Figure 3 shows uniform
//! 10 % sampling catching one of six slow Redis requests and none of the
//! six mangled packets; the `fig03` bench reproduces that with this
//! sampler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded uniform (Bernoulli) sampler.
pub struct UniformSampler {
    rng: StdRng,
    keep_fraction: f64,
    offered: u64,
    kept: u64,
}

impl UniformSampler {
    /// Creates a sampler keeping `keep_fraction` of records.
    ///
    /// # Panics
    ///
    /// Panics unless `keep_fraction` lies in `[0, 1]`.
    pub fn new(seed: u64, keep_fraction: f64) -> UniformSampler {
        assert!(
            (0.0..=1.0).contains(&keep_fraction),
            "keep fraction must be in [0, 1]"
        );
        UniformSampler {
            rng: StdRng::seed_from_u64(seed),
            keep_fraction,
            offered: 0,
            kept: 0,
        }
    }

    /// Decides whether the next record is kept.
    pub fn keep(&mut self) -> bool {
        self.offered += 1;
        let keep = self.rng.random_range(0.0..1.0) < self.keep_fraction;
        if keep {
            self.kept += 1;
        }
        keep
    }

    /// Records offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Records kept so far.
    pub fn kept(&self) -> u64 {
        self.kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_fraction_is_respected() {
        let mut s = UniformSampler::new(3, 0.1);
        for _ in 0..100_000 {
            s.keep();
        }
        let fraction = s.kept() as f64 / s.offered() as f64;
        assert!((fraction - 0.1).abs() < 0.01, "fraction {fraction}");
    }

    #[test]
    fn degenerate_fractions() {
        let mut all = UniformSampler::new(0, 1.0);
        let mut none = UniformSampler::new(0, 0.0);
        for _ in 0..100 {
            assert!(all.keep());
            assert!(!none.keep());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let decisions = |seed| {
            let mut s = UniformSampler::new(seed, 0.5);
            (0..64).map(|_| s.keep()).collect::<Vec<_>>()
        };
        assert_eq!(decisions(9), decisions(9));
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn out_of_range_fraction_panics() {
        UniformSampler::new(0, 1.5);
    }
}
