//! The RocksDB case study workload (Figure 10b).
//!
//! Based on a real Linux performance-debugging scenario (page-cache
//! behaviour under a RocksDB read workload). Three phases, each adding a
//! source:
//!
//! | Phase | Sources                         | Paper rate (records/s) |
//! |-------|---------------------------------|------------------------|
//! | P1    | RocksDB request latency         | 4.7 M                  |
//! | P2    | + OS syscall latency            | + 3.2 M                |
//! | P3    | + OS page-cache events          | + 39 k                 |
//!
//! The phase queries are aggregations of increasing selectivity: max and
//! p99.99 over all requests (P1), the same over only `pread64` syscalls
//! (≈3 % of the data, P2), and a count of
//! `mm_filemap_add_to_page_cache` events (≈0.5 % of the data, P3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::LogNormal;
use crate::records::{page_cache_events, LatencyRecord, PageCacheRecord};
use crate::sink::SourceKind;

/// Paper ingest rate of the RocksDB request-latency source (records/s).
pub const APP_RATE: f64 = 4_700_000.0;
/// Paper ingest rate of the syscall-latency source (records/s).
pub const SYSCALL_RATE: f64 = 3_200_000.0;
/// Paper ingest rate of the page-cache event source (records/s).
pub const PAGE_CACHE_RATE: f64 = 39_000.0;

/// Syscall number for `pread64` (the P2 query target).
pub const SYS_PREAD64: u32 = 17;
/// Syscall number for `write`.
pub const SYS_WRITE: u32 = 1;
/// Syscall number for `futex`.
pub const SYS_FUTEX: u32 = 202;

/// Fraction of syscall records that are `pread64` (tuned so pread64 is
/// ~3 % of all data, as in Figure 10b).
pub const PREAD64_FRACTION: f64 = 0.078;

/// Fraction of page-cache events that are `mm_filemap_add_to_page_cache`.
pub const ADD_EVENT_FRACTION: f64 = 0.6;

/// Investigation phase (same semantics as the Redis case study).
pub use crate::redis::Phase;

/// Configuration for the RocksDB case study generator.
#[derive(Debug, Clone)]
pub struct RocksdbConfig {
    /// RNG seed.
    pub seed: u64,
    /// Rate multiplier applied to the paper's rates.
    pub scale: f64,
    /// Duration of each phase in seconds (simulated time).
    pub phase_secs: f64,
}

impl Default for RocksdbConfig {
    fn default() -> Self {
        RocksdbConfig {
            seed: 0xD00DAD,
            scale: 0.01,
            phase_secs: 10.0,
        }
    }
}

/// One generated event.
pub struct Event<'a> {
    /// Investigation phase.
    pub phase: Phase,
    /// Source kind.
    pub kind: SourceKind,
    /// Arrival timestamp (ns since workload start).
    pub ts: u64,
    /// Encoded record bytes.
    pub bytes: &'a [u8],
}

/// The deterministic RocksDB case-study generator.
pub struct RocksdbGenerator {
    config: RocksdbConfig,
    rng: StdRng,
    req_latency: LogNormal,
    pread_latency: LogNormal,
    other_latency: LogNormal,
}

impl RocksdbGenerator {
    /// Creates a generator.
    pub fn new(config: RocksdbConfig) -> RocksdbGenerator {
        assert!(config.scale > 0.0 && config.phase_secs > 0.0);
        RocksdbGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            req_latency: LogNormal::from_median(30_000.0, 0.6), // 30 µs
            pread_latency: LogNormal::from_median(80_000.0, 0.9), // 80 µs, long tail
            other_latency: LogNormal::from_median(3_000.0, 0.5), // 3 µs
            config,
        }
    }

    /// Duration of one phase in nanoseconds.
    pub fn phase_ns(&self) -> u64 {
        (self.config.phase_secs * 1e9) as u64
    }

    /// The `[start, end)` time range of a phase.
    pub fn phase_range(&self, phase: Phase) -> (u64, u64) {
        let p = self.phase_ns();
        match phase {
            Phase::P1 => (0, p),
            Phase::P2 => (p, 2 * p),
            Phase::P3 => (2 * p, 3 * p),
        }
    }

    /// Generates the full three-phase stream in arrival order; returns
    /// the total number of events.
    pub fn run(&mut self, mut f: impl FnMut(Event<'_>)) -> u64 {
        let phase_ns = self.phase_ns();
        let end = 3 * phase_ns;
        let scale = self.config.scale;
        let mut req_next = 0u64;
        let req_int = (1e9 / (APP_RATE * scale)).max(1.0) as u64;
        let mut req_seq = 0u64;
        let mut sys_next = phase_ns;
        let sys_int = (1e9 / (SYSCALL_RATE * scale)).max(1.0) as u64;
        let mut sys_seq = 0u64;
        let mut pc_next = 2 * phase_ns;
        let pc_int = (1e9 / (PAGE_CACHE_RATE * scale)).max(1.0) as u64;
        let mut pc_seq = 0u64;

        let mut total = 0u64;
        let mut buf = Vec::new();
        loop {
            let (ts, which) = {
                let mut best = (req_next, 0u8);
                if sys_next < best.0 {
                    best = (sys_next, 1);
                }
                if pc_next < best.0 {
                    best = (pc_next, 2);
                }
                best
            };
            if ts >= end {
                break;
            }
            let phase = if ts < phase_ns {
                Phase::P1
            } else if ts < 2 * phase_ns {
                Phase::P2
            } else {
                Phase::P3
            };
            match which {
                0 => {
                    let rec = LatencyRecord {
                        ts,
                        latency_ns: self.req_latency.sample(&mut self.rng) as u64,
                        op: self.rng.random_range(0..3), // get/put/scan
                        pid: 2000,
                        key_hash: self.rng.random(),
                        seq: req_seq,
                        flags: 0,
                        cpu: self.rng.random_range(0..16),
                    };
                    buf.clear();
                    buf.extend_from_slice(&rec.encode());
                    f(Event {
                        phase,
                        kind: SourceKind::AppRequest,
                        ts,
                        bytes: &buf,
                    });
                    req_seq += 1;
                    req_next += req_int;
                }
                1 => {
                    let is_pread = self.rng.random_range(0.0..1.0) < PREAD64_FRACTION;
                    let (op, latency) = if is_pread {
                        (SYS_PREAD64, self.pread_latency.sample(&mut self.rng))
                    } else {
                        let op = if self.rng.random_range(0..2) == 0 {
                            SYS_WRITE
                        } else {
                            SYS_FUTEX
                        };
                        (op, self.other_latency.sample(&mut self.rng))
                    };
                    let rec = LatencyRecord {
                        ts,
                        latency_ns: latency as u64,
                        op,
                        pid: 2000,
                        key_hash: self.rng.random(),
                        seq: sys_seq,
                        flags: 0,
                        cpu: self.rng.random_range(0..16),
                    };
                    buf.clear();
                    buf.extend_from_slice(&rec.encode());
                    f(Event {
                        phase,
                        kind: SourceKind::Syscall,
                        ts,
                        bytes: &buf,
                    });
                    sys_seq += 1;
                    sys_next += sys_int;
                }
                _ => {
                    let event_id = if self.rng.random_range(0.0..1.0) < ADD_EVENT_FRACTION {
                        page_cache_events::ADD_TO_PAGE_CACHE
                    } else {
                        match self.rng.random_range(0..3) {
                            0 => page_cache_events::DELETE_FROM_PAGE_CACHE,
                            1 => page_cache_events::READAHEAD,
                            _ => page_cache_events::WRITEBACK,
                        }
                    };
                    let rec = PageCacheRecord {
                        ts,
                        seq: pc_seq,
                        dev: 0x801,
                        inode: self.rng.random_range(1..100_000),
                        offset: self.rng.random_range(0..1 << 20),
                        event_id,
                        pid: 2000,
                        flags: 0,
                        cpu: self.rng.random_range(0..16),
                        _pad: 0,
                    };
                    buf.clear();
                    buf.extend_from_slice(&rec.encode());
                    f(Event {
                        phase,
                        kind: SourceKind::PageCache,
                        ts,
                        bytes: &buf,
                    });
                    pc_seq += 1;
                    pc_next += pc_int;
                }
            }
            total += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RocksdbConfig {
        RocksdbConfig {
            seed: 7,
            scale: 0.001,
            phase_secs: 1.0,
        }
    }

    #[test]
    fn phase_structure_is_additive() {
        let mut g = RocksdbGenerator::new(small());
        let mut counts: std::collections::HashMap<(Phase, SourceKind), u64> =
            std::collections::HashMap::new();
        g.run(|e| *counts.entry((e.phase, e.kind)).or_insert(0) += 1);
        assert!(counts.contains_key(&(Phase::P1, SourceKind::AppRequest)));
        assert!(!counts.contains_key(&(Phase::P1, SourceKind::Syscall)));
        assert!(counts.contains_key(&(Phase::P2, SourceKind::Syscall)));
        assert!(!counts.contains_key(&(Phase::P2, SourceKind::PageCache)));
        assert!(counts.contains_key(&(Phase::P3, SourceKind::PageCache)));
    }

    #[test]
    fn pread64_fraction_is_small() {
        let mut g = RocksdbGenerator::new(RocksdbConfig {
            scale: 0.01,
            ..small()
        });
        let mut pread = 0u64;
        let mut total = 0u64;
        g.run(|e| {
            if e.kind == SourceKind::Syscall {
                total += 1;
                let r = LatencyRecord::decode(e.bytes).unwrap();
                if r.op == SYS_PREAD64 {
                    pread += 1;
                }
            }
        });
        let fraction = pread as f64 / total as f64;
        assert!(
            (fraction - PREAD64_FRACTION).abs() < 0.02,
            "pread fraction {fraction}"
        );
    }

    #[test]
    fn page_cache_events_have_mixed_ids() {
        let mut g = RocksdbGenerator::new(RocksdbConfig {
            scale: 0.1,
            ..small()
        });
        let mut add = 0u64;
        let mut total = 0u64;
        g.run(|e| {
            if e.kind == SourceKind::PageCache {
                total += 1;
                let r = PageCacheRecord::decode(e.bytes).unwrap();
                if r.event_id == page_cache_events::ADD_TO_PAGE_CACHE {
                    add += 1;
                }
            }
        });
        assert!(total > 0);
        let fraction = add as f64 / total as f64;
        assert!(
            (fraction - ADD_EVENT_FRACTION).abs() < 0.15,
            "add fraction {fraction}"
        );
    }

    #[test]
    fn time_ordered_and_deterministic() {
        let run_hash = || {
            let mut g = RocksdbGenerator::new(small());
            let mut last = 0u64;
            let mut h = 0u64;
            g.run(|e| {
                assert!(e.ts >= last);
                last = e.ts;
                h = h
                    // MMIX LCG multiplier; any odd mixer works here,
                    // but not the FNV prime (fnv-drift lint).
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(e.bytes.len() as u64);
            });
            h
        };
        assert_eq!(run_hash(), run_hash());
    }
}
