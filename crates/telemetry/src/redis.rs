//! The Redis case study workload (§2.1, Figure 10a).
//!
//! An engineer investigates occasional high Redis request tail latency.
//! The investigation has three phases, each adding an HFT source:
//!
//! | Phase | Sources                            | Paper rate (records/s) |
//! |-------|------------------------------------|------------------------|
//! | P1    | application request latency        | 865 k                  |
//! | P2    | + OS syscall latency (eBPF)        | + 2.7 M                |
//! | P3    | + client TCP packets               | + 3.5 M                |
//!
//! The root cause: a buggy packet filter mangles the destination port of
//! a handful of packets, each causing a slow `recv` syscall and a slow
//! application request. The generator injects `anomalies` such events in
//! phase 3 and exposes their ground truth so benchmarks can verify that
//! a capture pipeline caught (or missed — Figure 3) the needles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{BoundedPareto, LogNormal};
use crate::records::{LatencyRecord, PacketRecord};
use crate::sink::SourceKind;

/// Paper ingest rate of the application-latency source (records/s).
pub const APP_RATE: f64 = 865_000.0;
/// Paper ingest rate of the syscall-latency source (records/s).
pub const SYSCALL_RATE: f64 = 2_700_000.0;
/// Paper ingest rate of the packet-capture source (records/s).
pub const PACKET_RATE: f64 = 3_500_000.0;

/// Redis server port.
pub const REDIS_PORT: u16 = 6379;
/// Syscall number used for `recvfrom` records.
pub const SYS_RECVFROM: u32 = 45;
/// Syscall number used for `sendto` records.
pub const SYS_SENDTO: u32 = 44;
/// Syscall number used for `epoll_wait` records.
pub const SYS_EPOLL_WAIT: u32 = 232;

/// Flag bit set on anomalous (injected) records, for ground-truth
/// verification only — capture pipelines must not rely on it.
pub const FLAG_ANOMALY: u32 = 1 << 31;

/// The investigation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Application latency only.
    P1,
    /// Plus syscall latencies.
    P2,
    /// Plus packet capture.
    P3,
}

impl Phase {
    /// All phases in order.
    pub const ALL: [Phase; 3] = [Phase::P1, Phase::P2, Phase::P3];
}

/// Configuration for the Redis case study generator.
#[derive(Debug, Clone)]
pub struct RedisConfig {
    /// RNG seed (the workload is fully deterministic given the seed).
    pub seed: u64,
    /// Rate multiplier applied to the paper's per-source rates.
    pub scale: f64,
    /// Duration of each phase in seconds (of simulated time).
    pub phase_secs: f64,
    /// Number of slow-request/mangled-packet anomalies injected in P3
    /// (the paper's scenario has six).
    pub anomalies: usize,
}

impl Default for RedisConfig {
    fn default() -> Self {
        RedisConfig {
            seed: 0xC0FFEE,
            scale: 0.01,
            phase_secs: 10.0,
            anomalies: 6,
        }
    }
}

/// Ground truth for one injected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anomaly {
    /// Nominal injection time (ns since workload start).
    pub ts: u64,
    /// Sequence number of the mangled packet.
    pub packet_seq: u64,
    /// Sequence number of the slow `recv` syscall record.
    pub syscall_seq: u64,
    /// Sequence number of the slow application request record.
    pub request_seq: u64,
}

/// One generated event, delivered to the consumer callback.
pub struct Event<'a> {
    /// Investigation phase the event belongs to.
    pub phase: Phase,
    /// Source kind.
    pub kind: SourceKind,
    /// Arrival timestamp (ns since workload start).
    pub ts: u64,
    /// Encoded record bytes.
    pub bytes: &'a [u8],
}

struct SourceClock {
    interval_ns: u64,
    next_ts: u64,
    seq: u64,
}

impl SourceClock {
    fn new(rate: f64, start: u64) -> SourceClock {
        SourceClock {
            interval_ns: (1e9 / rate).max(1.0) as u64,
            next_ts: start,
            seq: 0,
        }
    }
}

/// The deterministic Redis case-study generator.
pub struct RedisGenerator {
    config: RedisConfig,
    rng: StdRng,
    app_latency: LogNormal,
    syscall_latency: LogNormal,
    packet_size: BoundedPareto,
    anomalies: Vec<Anomaly>,
}

impl RedisGenerator {
    /// Creates a generator; anomaly *times* are fixed immediately, their
    /// record sequence numbers are filled in during generation.
    pub fn new(config: RedisConfig) -> RedisGenerator {
        assert!(config.scale > 0.0 && config.phase_secs > 0.0);
        let phase_ns = (config.phase_secs * 1e9) as u64;
        let p3_start = 2 * phase_ns;
        let mut anomalies = Vec::with_capacity(config.anomalies);
        // Spread anomalies over the middle 80% of phase 3.
        for i in 0..config.anomalies {
            let offset =
                phase_ns / 10 + (i as u64) * (phase_ns * 8 / 10) / config.anomalies.max(1) as u64;
            anomalies.push(Anomaly {
                ts: p3_start + offset,
                packet_seq: u64::MAX,
                syscall_seq: u64::MAX,
                request_seq: u64::MAX,
            });
        }
        RedisGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            app_latency: LogNormal::from_median(200_000.0, 0.5), // 200 µs
            syscall_latency: LogNormal::from_median(5_000.0, 0.7), // 5 µs
            packet_size: BoundedPareto::new(64.0, 1500.0, 1.2),
            config,
            anomalies,
        }
    }

    /// Duration of one phase in nanoseconds.
    pub fn phase_ns(&self) -> u64 {
        (self.config.phase_secs * 1e9) as u64
    }

    /// The `[start, end)` time range of a phase.
    pub fn phase_range(&self, phase: Phase) -> (u64, u64) {
        let p = self.phase_ns();
        match phase {
            Phase::P1 => (0, p),
            Phase::P2 => (p, 2 * p),
            Phase::P3 => (2 * p, 3 * p),
        }
    }

    /// Ground-truth anomalies (sequence numbers valid after [`run`]).
    ///
    /// [`run`]: RedisGenerator::run
    pub fn ground_truth(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// Generates the full three-phase event stream in arrival order,
    /// invoking `f` for every event. Returns total events generated.
    pub fn run(&mut self, mut f: impl FnMut(Event<'_>)) -> u64 {
        let phase_ns = self.phase_ns();
        let end = 3 * phase_ns;
        let scale = self.config.scale;
        let mut app = SourceClock::new(APP_RATE * scale, 0);
        let mut sys = SourceClock::new(SYSCALL_RATE * scale, phase_ns);
        let mut pkt = SourceClock::new(PACKET_RATE * scale, 2 * phase_ns);
        // Pending anomaly injections per source (indices into anomalies).
        let mut next_anomaly = 0usize;
        let mut pending_pkt: Vec<usize> = Vec::new();
        let mut pending_sys: Vec<usize> = Vec::new();
        let mut pending_app: Vec<usize> = Vec::new();

        let mut total = 0u64;
        let mut buf = Vec::new();
        loop {
            // The next event is the earliest source clock.
            let (ts, which) = {
                let mut best = (app.next_ts, 0u8);
                if sys.next_ts < best.0 {
                    best = (sys.next_ts, 1);
                }
                if pkt.next_ts < best.0 {
                    best = (pkt.next_ts, 2);
                }
                best
            };
            if ts >= end {
                break;
            }
            // Arm anomaly injections whose time has come.
            while next_anomaly < self.anomalies.len() && self.anomalies[next_anomaly].ts <= ts {
                pending_pkt.push(next_anomaly);
                pending_sys.push(next_anomaly);
                pending_app.push(next_anomaly);
                next_anomaly += 1;
            }
            let phase = if ts < phase_ns {
                Phase::P1
            } else if ts < 2 * phase_ns {
                Phase::P2
            } else {
                Phase::P3
            };
            match which {
                0 => {
                    let anomaly = pending_app.pop();
                    let latency = match anomaly {
                        Some(_) => 60_000_000.0 + self.rng.random_range(0.0..20e6), // ~60-80 ms
                        None => self.app_latency.sample(&mut self.rng),
                    };
                    let rec = LatencyRecord {
                        ts,
                        latency_ns: latency as u64,
                        op: self.rng.random_range(0..2), // GET / SET
                        pid: 1000,
                        key_hash: self.rng.random(),
                        seq: app.seq,
                        flags: if anomaly.is_some() { FLAG_ANOMALY } else { 0 },
                        cpu: self.rng.random_range(0..16),
                    };
                    if let Some(i) = anomaly {
                        self.anomalies[i].request_seq = app.seq;
                    }
                    buf.clear();
                    buf.extend_from_slice(&rec.encode());
                    f(Event {
                        phase,
                        kind: SourceKind::AppRequest,
                        ts,
                        bytes: &buf,
                    });
                    app.seq += 1;
                    app.next_ts += app.interval_ns;
                }
                1 => {
                    let anomaly = pending_sys.pop();
                    let (op, latency) = match anomaly {
                        Some(_) => (
                            SYS_RECVFROM,
                            50_000_000.0 + self.rng.random_range(0.0..10e6), // ~50-60 ms
                        ),
                        None => {
                            let op = match self.rng.random_range(0..10) {
                                0..=3 => SYS_RECVFROM,
                                4..=7 => SYS_SENDTO,
                                _ => SYS_EPOLL_WAIT,
                            };
                            (op, self.syscall_latency.sample(&mut self.rng))
                        }
                    };
                    let rec = LatencyRecord {
                        ts,
                        latency_ns: latency as u64,
                        op,
                        pid: 1000,
                        key_hash: self.rng.random(),
                        seq: sys.seq,
                        flags: if anomaly.is_some() { FLAG_ANOMALY } else { 0 },
                        cpu: self.rng.random_range(0..16),
                    };
                    if let Some(i) = anomaly {
                        self.anomalies[i].syscall_seq = sys.seq;
                    }
                    buf.clear();
                    buf.extend_from_slice(&rec.encode());
                    f(Event {
                        phase,
                        kind: SourceKind::Syscall,
                        ts,
                        bytes: &buf,
                    });
                    sys.seq += 1;
                    sys.next_ts += sys.interval_ns;
                }
                _ => {
                    let anomaly = pending_pkt.pop();
                    // A buggy packet filter mangles the destination port.
                    let dst_port = match anomaly {
                        Some(_) => REDIS_PORT ^ 0x00ff,
                        None => REDIS_PORT,
                    };
                    let size = self.packet_size.sample(&mut self.rng) as u16;
                    let rec = PacketRecord {
                        ts,
                        wire_len: size,
                        src_port: self.rng.random_range(32768..60999),
                        dst_port,
                        tcp_flags: 0x18, // PSH|ACK
                        seq: pkt.seq,
                        payload: vec![0xAB; 16.min(size as usize)],
                    };
                    if let Some(i) = anomaly {
                        self.anomalies[i].packet_seq = pkt.seq;
                    }
                    buf.clear();
                    buf.extend_from_slice(&rec.encode());
                    f(Event {
                        phase,
                        kind: SourceKind::Packet,
                        ts,
                        bytes: &buf,
                    });
                    pkt.seq += 1;
                    pkt.next_ts += pkt.interval_ns;
                }
            }
            total += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RedisConfig {
        RedisConfig {
            seed: 42,
            scale: 0.001,
            phase_secs: 1.0,
            anomalies: 3,
        }
    }

    #[test]
    fn phases_activate_sources_incrementally() {
        let mut g = RedisGenerator::new(small_config());
        let mut seen: std::collections::HashMap<(Phase, SourceKind), u64> =
            std::collections::HashMap::new();
        g.run(|e| *seen.entry((e.phase, e.kind)).or_insert(0) += 1);
        assert!(seen.contains_key(&(Phase::P1, SourceKind::AppRequest)));
        assert!(!seen.contains_key(&(Phase::P1, SourceKind::Syscall)));
        assert!(!seen.contains_key(&(Phase::P1, SourceKind::Packet)));
        assert!(seen.contains_key(&(Phase::P2, SourceKind::Syscall)));
        assert!(!seen.contains_key(&(Phase::P2, SourceKind::Packet)));
        assert!(seen.contains_key(&(Phase::P3, SourceKind::Packet)));
    }

    #[test]
    fn rates_scale_with_config() {
        let mut g = RedisGenerator::new(small_config());
        let mut app_p1 = 0u64;
        g.run(|e| {
            if e.phase == Phase::P1 && e.kind == SourceKind::AppRequest {
                app_p1 += 1;
            }
        });
        // 865k * 0.001 = 865/s for 1 second.
        let expected = (APP_RATE * 0.001) as u64;
        assert!(
            (app_p1 as i64 - expected as i64).unsigned_abs() <= expected / 10,
            "app P1 count {app_p1} vs expected {expected}"
        );
    }

    #[test]
    fn events_arrive_in_time_order() {
        let mut g = RedisGenerator::new(small_config());
        let mut last = 0u64;
        g.run(|e| {
            assert!(e.ts >= last, "time went backwards");
            last = e.ts;
        });
    }

    #[test]
    fn anomalies_are_injected_and_correlated() {
        let mut g = RedisGenerator::new(small_config());
        let mut mangled_packets = Vec::new();
        let mut slow_requests = Vec::new();
        let mut slow_recvs = Vec::new();
        g.run(|e| match e.kind {
            SourceKind::Packet => {
                let p = PacketRecord::decode(e.bytes).unwrap();
                if p.dst_port != REDIS_PORT {
                    mangled_packets.push((e.ts, p.seq));
                }
            }
            SourceKind::AppRequest => {
                let r = LatencyRecord::decode(e.bytes).unwrap();
                if r.latency_ns > 10_000_000 {
                    slow_requests.push((e.ts, r.seq));
                }
            }
            SourceKind::Syscall => {
                let r = LatencyRecord::decode(e.bytes).unwrap();
                if r.op == SYS_RECVFROM && r.latency_ns > 10_000_000 {
                    slow_recvs.push((e.ts, r.seq));
                }
            }
            _ => {}
        });
        assert_eq!(mangled_packets.len(), 3);
        assert_eq!(slow_requests.len(), 3);
        assert_eq!(slow_recvs.len(), 3);

        // Ground truth sequence numbers were filled in.
        for (i, a) in g.ground_truth().iter().enumerate() {
            assert_eq!(a.packet_seq, mangled_packets[i].1);
            assert_eq!(a.request_seq, slow_requests[i].1);
            assert_eq!(a.syscall_seq, slow_recvs[i].1);
            // Correlation: the three events happen near the anomaly time.
            assert!(mangled_packets[i].0.abs_diff(a.ts) < 100_000_000);
            assert!(slow_requests[i].0.abs_diff(a.ts) < 100_000_000);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let digest = |seed| {
            let mut g = RedisGenerator::new(RedisConfig {
                seed,
                ..small_config()
            });
            let mut h = 0u64;
            g.run(|e| {
                for b in e.bytes {
                    h = h.wrapping_mul(31).wrapping_add(*b as u64);
                }
            });
            h
        };
        assert_eq!(digest(5), digest(5));
        assert_ne!(digest(5), digest(6));
    }
}
