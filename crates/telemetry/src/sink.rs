//! Telemetry sinks: where captured records go.
//!
//! The end-to-end and probe-effect experiments (Figures 11–14) compare
//! capturing the same event stream into Loom, FishStore, the TSDB, and a
//! raw file. This trait is the common interface; the engine adapters
//! live in the `daemon` crate (which depends on every engine), while the
//! raw-file and null sinks live here.

use std::io::{BufWriter, Write};
use std::path::Path;

/// The kind of HFT source an event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Application request latency records (48 B).
    AppRequest,
    /// OS syscall latency records (48 B).
    Syscall,
    /// Captured TCP packets (variable size).
    Packet,
    /// Kernel page-cache events (60 B).
    PageCache,
}

impl SourceKind {
    /// All source kinds, in a stable order.
    pub const ALL: [SourceKind; 4] = [
        SourceKind::AppRequest,
        SourceKind::Syscall,
        SourceKind::Packet,
        SourceKind::PageCache,
    ];

    /// A stable small integer id.
    pub fn id(self) -> u16 {
        match self {
            SourceKind::AppRequest => 1,
            SourceKind::Syscall => 2,
            SourceKind::Packet => 3,
            SourceKind::PageCache => 4,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::AppRequest => "app_request",
            SourceKind::Syscall => "syscall",
            SourceKind::Packet => "packet",
            SourceKind::PageCache => "page_cache",
        }
    }
}

/// A destination for captured telemetry.
pub trait TelemetrySink {
    /// Offers one record; returns `false` if the sink dropped it.
    fn push(&mut self, kind: SourceKind, ts: u64, bytes: &[u8]) -> bool;

    /// Flushes buffered state (end of an experiment phase).
    fn flush(&mut self) {}

    /// Records offered so far.
    fn offered(&self) -> u64;

    /// Records dropped so far.
    fn dropped(&self) -> u64;

    /// Fraction of offered records that were dropped.
    fn drop_fraction(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.offered() as f64
        }
    }
}

/// The raw-file baseline: appends length-prefixed records to a file, the
/// way `perf record` style capture does. The cheapest possible sink and
/// the paper's probe-effect floor (Figure 14).
pub struct RawFileSink {
    file: BufWriter<std::fs::File>,
    offered: u64,
}

impl RawFileSink {
    /// Creates (truncating) a raw capture file.
    pub fn create(path: &Path) -> std::io::Result<RawFileSink> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(RawFileSink {
            file: BufWriter::with_capacity(
                1 << 20,
                std::fs::OpenOptions::new()
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(path)?,
            ),
            offered: 0,
        })
    }
}

impl TelemetrySink for RawFileSink {
    fn push(&mut self, kind: SourceKind, ts: u64, bytes: &[u8]) -> bool {
        self.offered += 1;
        // [kind u16][len u16][ts u64][bytes]

        self.file.write_all(&kind.id().to_le_bytes()).is_ok()
            && self
                .file
                .write_all(&(bytes.len() as u16).to_le_bytes())
                .is_ok()
            && self.file.write_all(&ts.to_le_bytes()).is_ok()
            && self.file.write_all(bytes).is_ok()
    }

    fn flush(&mut self) {
        let _ = self.file.flush();
    }

    fn offered(&self) -> u64 {
        self.offered
    }

    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards everything (no-collection baseline).
#[derive(Debug, Default)]
pub struct NullSink {
    offered: u64,
}

impl TelemetrySink for NullSink {
    fn push(&mut self, _kind: SourceKind, _ts: u64, bytes: &[u8]) -> bool {
        self.offered += 1;
        std::hint::black_box(bytes);
        true
    }

    fn offered(&self) -> u64 {
        self.offered
    }

    fn dropped(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_ids_are_distinct() {
        let ids: std::collections::HashSet<u16> = SourceKind::ALL.iter().map(|k| k.id()).collect();
        assert_eq!(ids.len(), SourceKind::ALL.len());
    }

    #[test]
    fn raw_file_sink_writes_framed_records() {
        let dir = std::env::temp_dir().join(format!("telemetry-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("capture.bin");
        let mut sink = RawFileSink::create(&path).unwrap();
        assert!(sink.push(SourceKind::AppRequest, 42, b"hello"));
        assert!(sink.push(SourceKind::Packet, 43, b"pkt"));
        sink.flush();
        assert_eq!(sink.offered(), 2);
        assert_eq!(sink.drop_fraction(), 0.0);
        let data = std::fs::read(&path).unwrap();
        // kind(2) + len(2) + ts(8) + 5 + kind(2) + len(2) + ts(8) + 3
        assert_eq!(data.len(), 12 + 5 + 12 + 3);
        assert_eq!(u16::from_le_bytes(data[0..2].try_into().unwrap()), 1);
        assert_eq!(u16::from_le_bytes(data[2..4].try_into().unwrap()), 5);
        assert_eq!(&data[12..17], b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn null_sink_counts() {
        let mut s = NullSink::default();
        for _ in 0..5 {
            s.push(SourceKind::Syscall, 0, b"x");
        }
        assert_eq!(s.offered(), 5);
        assert_eq!(s.dropped(), 0);
    }
}
