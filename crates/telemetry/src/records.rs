//! Binary record schemas for the paper's HFT sources (Figure 10).
//!
//! Observability records are small: the end-to-end workloads use 48-byte
//! application-request and syscall-latency records, 60-byte page-cache
//! events, and variable-size packet captures. All encodings are packed
//! little-endian with fixed field offsets, so Loom index extractors can
//! pull values straight out of the payload bytes.

/// Size of a [`LatencyRecord`] on the wire.
pub const LATENCY_RECORD_SIZE: usize = 48;

/// Size of a [`PageCacheRecord`] on the wire.
pub const PAGE_CACHE_RECORD_SIZE: usize = 60;

/// Size of a [`PacketRecord`] header (payload prefix follows).
pub const PACKET_HEADER_SIZE: usize = 24;

/// Byte offset of `latency_ns` in a [`LatencyRecord`] (for extractors).
pub const LATENCY_NS_OFFSET: usize = 8;

/// Byte offset of `op` in a [`LatencyRecord`] (for extractors).
pub const OP_OFFSET: usize = 16;

/// Byte offset of `event_id` in a [`PageCacheRecord`] (for extractors).
pub const EVENT_ID_OFFSET: usize = 40;

/// Byte offset of `dst_port` in a [`PacketRecord`] (for extractors).
pub const DST_PORT_OFFSET: usize = 12;

/// A 48-byte latency record: application requests and syscall latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRecord {
    /// External event timestamp (ns).
    pub ts: u64,
    /// Measured latency (ns).
    pub latency_ns: u64,
    /// Operation id (application op, or syscall number).
    pub op: u32,
    /// Process id.
    pub pid: u32,
    /// Hash of the request key / syscall argument.
    pub key_hash: u64,
    /// Per-source sequence number.
    pub seq: u64,
    /// Flag bits.
    pub flags: u32,
    /// CPU the event was recorded on.
    pub cpu: u32,
}

impl LatencyRecord {
    /// Encodes the record into its fixed wire format.
    pub fn encode(&self) -> [u8; LATENCY_RECORD_SIZE] {
        let mut b = [0u8; LATENCY_RECORD_SIZE];
        b[0..8].copy_from_slice(&self.ts.to_le_bytes());
        b[8..16].copy_from_slice(&self.latency_ns.to_le_bytes());
        b[16..20].copy_from_slice(&self.op.to_le_bytes());
        b[20..24].copy_from_slice(&self.pid.to_le_bytes());
        b[24..32].copy_from_slice(&self.key_hash.to_le_bytes());
        b[32..40].copy_from_slice(&self.seq.to_le_bytes());
        b[40..44].copy_from_slice(&self.flags.to_le_bytes());
        b[44..48].copy_from_slice(&self.cpu.to_le_bytes());
        b
    }

    /// Decodes a record from wire bytes.
    pub fn decode(b: &[u8]) -> Option<LatencyRecord> {
        if b.len() < LATENCY_RECORD_SIZE {
            return None;
        }
        Some(LatencyRecord {
            ts: u64::from_le_bytes(b[0..8].try_into().ok()?),
            latency_ns: u64::from_le_bytes(b[8..16].try_into().ok()?),
            op: u32::from_le_bytes(b[16..20].try_into().ok()?),
            pid: u32::from_le_bytes(b[20..24].try_into().ok()?),
            key_hash: u64::from_le_bytes(b[24..32].try_into().ok()?),
            seq: u64::from_le_bytes(b[32..40].try_into().ok()?),
            flags: u32::from_le_bytes(b[40..44].try_into().ok()?),
            cpu: u32::from_le_bytes(b[44..48].try_into().ok()?),
        })
    }
}

/// A 60-byte kernel page-cache event (e.g.,
/// `mm_filemap_add_to_page_cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCacheRecord {
    /// External event timestamp (ns).
    pub ts: u64,
    /// Per-source sequence number.
    pub seq: u64,
    /// Device id.
    pub dev: u64,
    /// Inode number.
    pub inode: u64,
    /// Page offset within the file.
    pub offset: u64,
    /// Tracepoint event id (see [`page_cache_events`]).
    pub event_id: u32,
    /// Process id.
    pub pid: u32,
    /// Flag bits.
    pub flags: u32,
    /// CPU the event was recorded on.
    pub cpu: u32,
    /// Reserved padding (keeps the record at 60 bytes, per Figure 10b).
    pub _pad: u32,
}

/// Well-known page-cache tracepoint ids used by the RocksDB case study.
pub mod page_cache_events {
    /// `mm_filemap_add_to_page_cache` — the event Figure 10b counts.
    pub const ADD_TO_PAGE_CACHE: u32 = 1;
    /// `mm_filemap_delete_from_page_cache`.
    pub const DELETE_FROM_PAGE_CACHE: u32 = 2;
    /// Page-cache readahead.
    pub const READAHEAD: u32 = 3;
    /// Dirty page writeback.
    pub const WRITEBACK: u32 = 4;
}

impl PageCacheRecord {
    /// Encodes the record into its fixed wire format.
    pub fn encode(&self) -> [u8; PAGE_CACHE_RECORD_SIZE] {
        let mut b = [0u8; PAGE_CACHE_RECORD_SIZE];
        b[0..8].copy_from_slice(&self.ts.to_le_bytes());
        b[8..16].copy_from_slice(&self.seq.to_le_bytes());
        b[16..24].copy_from_slice(&self.dev.to_le_bytes());
        b[24..32].copy_from_slice(&self.inode.to_le_bytes());
        b[32..40].copy_from_slice(&self.offset.to_le_bytes());
        b[40..44].copy_from_slice(&self.event_id.to_le_bytes());
        b[44..48].copy_from_slice(&self.pid.to_le_bytes());
        b[48..52].copy_from_slice(&self.flags.to_le_bytes());
        b[52..56].copy_from_slice(&self.cpu.to_le_bytes());
        b[56..60].copy_from_slice(&self._pad.to_le_bytes());
        b
    }

    /// Decodes a record from wire bytes.
    pub fn decode(b: &[u8]) -> Option<PageCacheRecord> {
        if b.len() < PAGE_CACHE_RECORD_SIZE {
            return None;
        }
        Some(PageCacheRecord {
            ts: u64::from_le_bytes(b[0..8].try_into().ok()?),
            seq: u64::from_le_bytes(b[8..16].try_into().ok()?),
            dev: u64::from_le_bytes(b[16..24].try_into().ok()?),
            inode: u64::from_le_bytes(b[24..32].try_into().ok()?),
            offset: u64::from_le_bytes(b[32..40].try_into().ok()?),
            event_id: u32::from_le_bytes(b[40..44].try_into().ok()?),
            pid: u32::from_le_bytes(b[44..48].try_into().ok()?),
            flags: u32::from_le_bytes(b[48..52].try_into().ok()?),
            cpu: u32::from_le_bytes(b[52..56].try_into().ok()?),
            _pad: u32::from_le_bytes(b[56..60].try_into().ok()?),
        })
    }
}

/// A variable-size captured TCP packet: fixed header + payload prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// Capture timestamp (ns).
    pub ts: u64,
    /// Original packet length on the wire.
    pub wire_len: u16,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// TCP flag bits.
    pub tcp_flags: u16,
    /// Per-source sequence number.
    pub seq: u64,
    /// Captured payload prefix (truncated snaplen).
    pub payload: Vec<u8>,
}

impl PacketRecord {
    /// Encodes the record (header + payload prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(PACKET_HEADER_SIZE + self.payload.len());
        b.extend_from_slice(&self.ts.to_le_bytes());
        b.extend_from_slice(&self.wire_len.to_le_bytes());
        b.extend_from_slice(&self.src_port.to_le_bytes());
        b.extend_from_slice(&self.dst_port.to_le_bytes());
        b.extend_from_slice(&self.tcp_flags.to_le_bytes());
        b.extend_from_slice(&self.seq.to_le_bytes());
        b.extend_from_slice(&self.payload);
        b
    }

    /// Decodes a record from wire bytes.
    pub fn decode(b: &[u8]) -> Option<PacketRecord> {
        if b.len() < PACKET_HEADER_SIZE {
            return None;
        }
        Some(PacketRecord {
            ts: u64::from_le_bytes(b[0..8].try_into().ok()?),
            wire_len: u16::from_le_bytes(b[8..10].try_into().ok()?),
            src_port: u16::from_le_bytes(b[10..12].try_into().ok()?),
            dst_port: u16::from_le_bytes(b[12..14].try_into().ok()?),
            tcp_flags: u16::from_le_bytes(b[14..16].try_into().ok()?),
            seq: u64::from_le_bytes(b[16..24].try_into().ok()?),
            payload: b[PACKET_HEADER_SIZE..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_record_round_trips_at_48_bytes() {
        let r = LatencyRecord {
            ts: 1,
            latency_ns: 250_000,
            op: 3,
            pid: 42,
            key_hash: 0xabcdef,
            seq: 7,
            flags: 0b101,
            cpu: 11,
        };
        let b = r.encode();
        assert_eq!(b.len(), 48);
        assert_eq!(LatencyRecord::decode(&b), Some(r));
        assert_eq!(LatencyRecord::decode(&b[..47]), None);
    }

    #[test]
    fn latency_offsets_match_encoding() {
        let r = LatencyRecord {
            ts: 0,
            latency_ns: 777,
            op: 55,
            pid: 0,
            key_hash: 0,
            seq: 0,
            flags: 0,
            cpu: 0,
        };
        let b = r.encode();
        assert_eq!(
            u64::from_le_bytes(
                b[LATENCY_NS_OFFSET..LATENCY_NS_OFFSET + 8]
                    .try_into()
                    .unwrap()
            ),
            777
        );
        assert_eq!(
            u32::from_le_bytes(b[OP_OFFSET..OP_OFFSET + 4].try_into().unwrap()),
            55
        );
    }

    #[test]
    fn page_cache_record_round_trips_at_60_bytes() {
        let r = PageCacheRecord {
            ts: 9,
            seq: 1,
            dev: 2,
            inode: 3,
            offset: 4,
            event_id: page_cache_events::ADD_TO_PAGE_CACHE,
            pid: 6,
            flags: 7,
            cpu: 8,
            _pad: 0,
        };
        let b = r.encode();
        assert_eq!(b.len(), 60);
        assert_eq!(PageCacheRecord::decode(&b), Some(r));
        assert_eq!(
            u32::from_le_bytes(b[EVENT_ID_OFFSET..EVENT_ID_OFFSET + 4].try_into().unwrap()),
            page_cache_events::ADD_TO_PAGE_CACHE
        );
    }

    #[test]
    fn packet_record_round_trips_with_payload() {
        let r = PacketRecord {
            ts: 100,
            wire_len: 1500,
            src_port: 55555,
            dst_port: 6379,
            tcp_flags: 0x18,
            seq: 12,
            payload: vec![1, 2, 3, 4, 5],
        };
        let b = r.encode();
        assert_eq!(b.len(), 24 + 5);
        assert_eq!(PacketRecord::decode(&b), Some(r));
        assert_eq!(
            u16::from_le_bytes(b[DST_PORT_OFFSET..DST_PORT_OFFSET + 2].try_into().unwrap()),
            6379
        );
    }

    #[test]
    fn empty_payload_packet_is_valid() {
        let r = PacketRecord {
            ts: 0,
            wire_len: 64,
            src_port: 1,
            dst_port: 2,
            tcp_flags: 0,
            seq: 0,
            payload: Vec::new(),
        };
        assert_eq!(PacketRecord::decode(&r.encode()), Some(r));
    }
}
