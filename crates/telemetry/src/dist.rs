//! Latency and size distributions for synthetic telemetry.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so
//! the non-uniform distributions telemetry needs (log-normal latencies,
//! exponential inter-arrivals, Pareto packet sizes) are implemented here
//! via inverse-transform and Box–Muller sampling.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal distribution parameterized by the *median* and the shape
/// `sigma` — the natural fit for latency distributions, which are skewed
/// with long right tails.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given median and shape.
    ///
    /// # Panics
    ///
    /// Panics unless `median > 0` and `sigma >= 0`.
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0 && sigma >= 0.0, "invalid log-normal params");
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// An exponential distribution (inter-arrival gaps of a Poisson process).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0`.
    pub fn with_mean(mean: f64) -> Exponential {
        assert!(mean > 0.0, "exponential mean must be positive");
        Exponential { mean }
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        -self.mean * u.ln()
    }
}

/// A bounded Pareto distribution (heavy-tailed packet/message sizes).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> BoundedPareto {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "invalid Pareto params");
        BoundedPareto { lo, hi, alpha }
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random_range(0.0..1.0);
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = LogNormal::from_median(100.0, 0.5);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() / 100.0 < 0.05, "median {median}");
        // Long right tail: p99 well above the median.
        let p99 = samples[(samples.len() as f64 * 0.99) as usize];
        assert!(p99 > 2.0 * median);
        assert!(samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Exponential::with_mean(250.0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() / 250.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = BoundedPareto::new(64.0, 1500.0, 1.2);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((64.0..=1500.0).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let d = LogNormal::from_median(10.0, 1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_params_panic() {
        LogNormal::from_median(0.0, 1.0);
    }
}
