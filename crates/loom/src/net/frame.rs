//! Length-prefixed, CRC-framed wire format.
//!
//! Every message on a Loom network connection travels inside one frame:
//!
//! ```text
//! [u32 len (LE)] [u8 frame-type] [body ...] [u32 crc32 (LE)]
//!                 `------------ len bytes ------------------'
//! ```
//!
//! `len` counts everything after the length prefix (type byte, body,
//! and trailing checksum), and the CRC covers the type byte plus the
//! body, using the same slice-by-8 CRC-32 as the durable log format
//! ([`crate::durability::format::crc32`]). A frame therefore either
//! decodes completely and checksum-verified, or it is rejected whole —
//! the framing layer is what makes a batch atomic on the wire: a client
//! killed mid-frame leaves a torn prefix that never parses, so no
//! partial batch can reach the engine.
//!
//! Both directions pass through the [`fault`] registry
//! ([`NET_FRAME_READ`](crate::fault::NET_FRAME_READ) /
//! [`NET_FRAME_WRITE`](crate::fault::NET_FRAME_WRITE)), so chaos tests
//! can kill either half of any conversation at the frame boundary. A
//! [`FaultKind::ShortWrite`](crate::fault::FaultKind) armed on the write
//! site emits a torn frame prefix before failing, simulating a peer
//! dying mid-send.

use std::io::{Read, Write};

use crate::durability::format::crc32;
use crate::error::{LoomError, Result};
use crate::fault;

/// Upper bound on one frame (type byte + body + checksum). Large enough
/// for a maximal ingest batch, small enough that a corrupt length prefix
/// cannot drive an unbounded allocation.
pub const MAX_FRAME: usize = 4 << 20;

/// Smallest legal `len`: the type byte plus the 4-byte checksum.
const MIN_FRAME: usize = 5;

/// Reads one frame, returning `(frame_type, body)`.
///
/// `tag` labels the connection for the
/// [`NET_FRAME_READ`](crate::fault::NET_FRAME_READ) failpoint. Length or
/// checksum violations surface as [`LoomError::Corrupt`]; transport
/// errors (including read timeouts, as `WouldBlock`/`TimedOut`) as
/// [`LoomError::Io`].
pub fn read_frame(r: &mut impl Read, tag: &str) -> Result<(u8, Vec<u8>)> {
    if let Some(kind) = fault::check(fault::NET_FRAME_READ, tag) {
        return Err(LoomError::Io(kind.to_io_error()));
    }
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if !(MIN_FRAME..=MAX_FRAME).contains(&len) {
        return Err(LoomError::Corrupt(format!(
            "net frame length {len} outside [{MIN_FRAME}, {MAX_FRAME}]"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let (checked, crc_bytes) = buf.split_at(len - 4);
    let want = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let got = crc32(checked);
    if want != got {
        return Err(LoomError::Corrupt(format!(
            "net frame checksum mismatch: stored {want:#010x}, computed {got:#010x}"
        )));
    }
    let ty = checked[0];
    Ok((ty, checked[1..].to_vec()))
}

/// Writes one frame of type `ty` around `body`.
///
/// `tag` labels the frame for the
/// [`NET_FRAME_WRITE`](crate::fault::NET_FRAME_WRITE) failpoint; a
/// [`ShortWrite`](crate::fault::FaultKind::ShortWrite) fault emits half
/// the encoded frame before erroring, leaving a torn frame on the wire.
pub fn write_frame(w: &mut impl Write, ty: u8, body: &[u8], tag: &str) -> Result<()> {
    let len = 1 + body.len() + 4;
    if len > MAX_FRAME {
        return Err(LoomError::Corrupt(format!(
            "net frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(ty);
    out.extend_from_slice(body);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    if let Some(kind) = fault::check(fault::NET_FRAME_WRITE, tag) {
        if kind == fault::FaultKind::ShortWrite {
            // Emit a torn prefix so the peer sees a half-written frame.
            let _ = w.write_all(&out[..out.len() / 2]);
            let _ = w.flush();
        }
        return Err(LoomError::Io(kind.to_io_error()));
    }
    w.write_all(&out)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"hello telemetry", "t").unwrap();
        let (ty, body) = read_frame(&mut wire.as_slice(), "t").unwrap();
        assert_eq!(ty, 7);
        assert_eq!(body, b"hello telemetry");
    }

    #[test]
    fn empty_body_is_legal() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"", "t").unwrap();
        let (ty, body) = read_frame(&mut wire.as_slice(), "t").unwrap();
        assert_eq!((ty, body.len()), (1, 0));
    }

    #[test]
    fn corrupt_byte_is_rejected_whole() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, b"payload-bytes", "t").unwrap();
        // Flip one body byte; the checksum must catch it.
        wire[7] ^= 0x40;
        let err = read_frame(&mut wire.as_slice(), "t").unwrap_err();
        assert!(matches!(err, LoomError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, b"payload-bytes", "t").unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut wire.as_slice(), "t").unwrap_err();
        assert!(matches!(err, LoomError::Io(_)), "got {err}");
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut wire.as_slice(), "t").unwrap_err();
        assert!(matches!(err, LoomError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn oversized_body_is_refused_on_write() {
        let body = vec![0u8; MAX_FRAME];
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, 1, &body, "t").unwrap_err();
        assert!(matches!(err, LoomError::Corrupt(_)), "got {err}");
        assert!(wire.is_empty(), "nothing may reach the wire");
    }
}
