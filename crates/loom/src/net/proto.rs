//! Message vocabulary of the Loom wire protocol.
//!
//! Each [`Message`] encodes to a `(frame_type, body)` pair carried by
//! the framing layer ([`super::frame`]). All integers are little-endian;
//! strings are a `u16` length followed by UTF-8 bytes. The protocol is
//! versioned by [`PROTO_VERSION`], carried in the opening
//! [`Message::Hello`]; a server that cannot speak the client's version
//! answers with a [`NackCode::Version`] NACK and closes.
//!
//! Two connection [`Role`]s keep the conversation strictly
//! request/response per direction:
//!
//! * **Ingest** connections carry `Resolve`/`Resolved` and
//!   `IngestBatch` → `Ack`/`Nack` exchanges. Acks carry a *watermark*:
//!   the highest batch sequence the server has durably ingested for
//!   this client, which is what a client replays from after a
//!   disconnect.
//! * **Subscribe** connections carry one `Subscribe` registration and
//!   then a server-push stream of `SubData`/`SubGap` frames, terminated
//!   by `SubEnd`.

use crate::error::{LoomError, Result};
use crate::extract::{ExtractorDesc, EXTRACTOR_DESC_SIZE};

/// Wire protocol version carried in [`Message::Hello`].
pub const PROTO_VERSION: u32 = 1;

/// What a connection is for, declared in the hello handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The client pushes record batches and receives acks.
    Ingest,
    /// The client registers one standing subscription and receives
    /// incremental results.
    Subscribe,
}

impl Role {
    fn to_wire(self) -> u8 {
        match self {
            Role::Ingest => 0,
            Role::Subscribe => 1,
        }
    }

    fn from_wire(b: u8) -> Result<Role> {
        match b {
            0 => Ok(Role::Ingest),
            1 => Ok(Role::Subscribe),
            other => Err(corrupt(format!("unknown connection role {other}"))),
        }
    }
}

/// Typed reason an ingest frame was refused. NACKs never stall the
/// socket: a Degraded/ReadOnly engine answers immediately with
/// [`NackCode::Degraded`] instead of blocking the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackCode {
    /// The server does not speak the client's protocol version.
    Version,
    /// Client and server schema fingerprints are both set and differ.
    SchemaMismatch,
    /// The engine is degraded or read-only and rejects ingest.
    Degraded,
    /// Ingest was rejected by the engine's overload policy; retry later.
    Overloaded,
    /// The batch names a source id the registry does not know.
    UnknownSource,
    /// The frame decoded but its body is malformed for its type.
    BadFrame,
    /// A record payload exceeds the engine's per-record cap.
    TooLarge,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
}

impl NackCode {
    fn to_wire(self) -> u8 {
        match self {
            NackCode::Version => 1,
            NackCode::SchemaMismatch => 2,
            NackCode::Degraded => 3,
            NackCode::Overloaded => 4,
            NackCode::UnknownSource => 5,
            NackCode::BadFrame => 6,
            NackCode::TooLarge => 7,
            NackCode::ShuttingDown => 8,
        }
    }

    fn from_wire(b: u8) -> Result<NackCode> {
        Ok(match b {
            1 => NackCode::Version,
            2 => NackCode::SchemaMismatch,
            3 => NackCode::Degraded,
            4 => NackCode::Overloaded,
            5 => NackCode::UnknownSource,
            6 => NackCode::BadFrame,
            7 => NackCode::TooLarge,
            8 => NackCode::ShuttingDown,
            other => return Err(corrupt(format!("unknown nack code {other}"))),
        })
    }

    /// Stable lower-case name, used in logs and error text.
    pub fn as_str(self) -> &'static str {
        match self {
            NackCode::Version => "version",
            NackCode::SchemaMismatch => "schema-mismatch",
            NackCode::Degraded => "degraded",
            NackCode::Overloaded => "overloaded",
            NackCode::UnknownSource => "unknown-source",
            NackCode::BadFrame => "bad-frame",
            NackCode::TooLarge => "too-large",
            NackCode::ShuttingDown => "shutting-down",
        }
    }
}

/// What the server does when a subscriber's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// The delivery pump waits for queue room (applies backpressure to
    /// delivery, never to ingest).
    Block,
    /// Drop the delivery and send a [`Message::SubGap`] counting the
    /// dropped records once the queue drains.
    DropWithGap,
    /// Terminate the subscription with a [`Message::SubEnd`].
    Disconnect,
}

impl SlowConsumerPolicy {
    fn to_wire(self) -> u8 {
        match self {
            SlowConsumerPolicy::Block => 0,
            SlowConsumerPolicy::DropWithGap => 1,
            SlowConsumerPolicy::Disconnect => 2,
        }
    }

    fn from_wire(b: u8) -> Result<SlowConsumerPolicy> {
        match b {
            0 => Ok(SlowConsumerPolicy::Block),
            1 => Ok(SlowConsumerPolicy::DropWithGap),
            2 => Ok(SlowConsumerPolicy::Disconnect),
            other => Err(corrupt(format!("unknown slow-consumer policy {other}"))),
        }
    }
}

/// One standing subscription: a source plus optional time/value
/// predicate, delivered incrementally as data arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeSpec {
    /// Client-chosen subscription id, echoed on every delivery frame.
    pub sub_id: u64,
    /// Source *name*; the server resolves (or defines) it.
    pub source: String,
    /// Deliver records with `ts >= start_ts` only.
    pub start_ts: u64,
    /// Optional value predicate: extract with the descriptor, keep
    /// records whose value lies in `[value_min, value_max]`.
    pub extractor: Option<ExtractorDesc>,
    /// Inclusive predicate lower bound (use `f64::NEG_INFINITY` for
    /// no lower bound).
    pub value_min: f64,
    /// Inclusive predicate upper bound (use `f64::INFINITY` for no
    /// upper bound).
    pub value_max: f64,
    /// What the server does when this subscriber falls behind.
    pub policy: SlowConsumerPolicy,
    /// Bound on the per-subscriber delivery queue, in frames. `0` asks
    /// for the server default.
    pub queue_cap: u32,
}

impl SubscribeSpec {
    /// A subscription to every record of `source` from `start_ts` on,
    /// blocking on backpressure.
    pub fn all(sub_id: u64, source: impl Into<String>, start_ts: u64) -> SubscribeSpec {
        SubscribeSpec {
            sub_id,
            source: source.into(),
            start_ts,
            extractor: None,
            value_min: f64::NEG_INFINITY,
            value_max: f64::INFINITY,
            policy: SlowConsumerPolicy::Block,
            queue_cap: 0,
        }
    }

    /// True when `payload` passes this subscription's value predicate.
    pub fn matches(&self, payload: &[u8]) -> bool {
        match &self.extractor {
            None => true,
            Some(desc) => match desc.to_fn()(payload) {
                Some(v) => v >= self.value_min && v <= self.value_max,
                None => false,
            },
        }
    }
}

/// One protocol message; see the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Opens every connection: version, role, a client-chosen id (the
    /// replay key for ingest connections), and an optional schema
    /// fingerprint (`0` skips the check).
    Hello {
        /// The client's [`PROTO_VERSION`].
        version: u32,
        /// What this connection is for.
        role: Role,
        /// Stable client identity; ingest replay is keyed by it.
        client_id: u64,
        /// [`schema_fingerprint`](super::schema_fingerprint) of the
        /// schema the client expects, or `0` to skip the check.
        schema_fingerprint: u64,
    },
    /// The server's handshake answer. `last_acked_seq` is the highest
    /// batch sequence durably ingested for this client id (`0` if
    /// none), from which the client resumes replay.
    HelloAck {
        /// The server's protocol version.
        version: u32,
        /// The server's current schema fingerprint.
        schema_fingerprint: u64,
        /// Highest batch sequence durably ingested for this client.
        last_acked_seq: u64,
    },
    /// Asks the server to resolve (defining if absent) a source name.
    Resolve {
        /// Source name to resolve.
        name: String,
    },
    /// Answer to [`Message::Resolve`].
    Resolved {
        /// The engine-global source id.
        source: u32,
        /// The resolved name, echoed back.
        name: String,
    },
    /// A batch of record payloads for one source. Batches from one
    /// client must carry strictly increasing `batch_seq`; the server
    /// ingests a given `(client_id, batch_seq)` at most once, which is
    /// what makes at-least-once replay exactly-once.
    IngestBatch {
        /// Source id from a prior [`Message::Resolved`].
        source: u32,
        /// Client-assigned batch sequence (1-based, increasing).
        batch_seq: u64,
        /// The record payloads, pushed in order.
        payloads: Vec<Vec<u8>>,
    },
    /// The batch is durable. `watermark` is the highest batch sequence
    /// durably ingested for this client — everything at or below it is
    /// safe to drop from the client's replay buffer.
    Ack {
        /// The batch being acknowledged.
        batch_seq: u64,
        /// Highest durably ingested batch sequence for this client.
        watermark: u64,
    },
    /// The batch (or handshake, with `batch_seq == 0`) was refused.
    Nack {
        /// The refused batch, or `0` for a handshake refusal.
        batch_seq: u64,
        /// Typed reason.
        code: NackCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Registers the connection's standing subscription.
    Subscribe(SubscribeSpec),
    /// One incremental delivery: `(ts, payload)` records, oldest first.
    SubData {
        /// Subscription id from the [`Message::Subscribe`].
        sub_id: u64,
        /// Matching records, oldest first.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Marks records dropped by the `DropWithGap` slow-consumer policy.
    SubGap {
        /// Subscription id.
        sub_id: u64,
        /// How many matching records were dropped in the gap.
        dropped: u64,
    },
    /// Terminal frame of a subscription: nothing follows it.
    SubEnd {
        /// Subscription id.
        sub_id: u64,
        /// Why the stream ended (e.g. `"shutdown"`, `"slow consumer"`).
        reason: String,
    },
}

const T_HELLO: u8 = 1;
const T_HELLO_ACK: u8 = 2;
const T_RESOLVE: u8 = 3;
const T_RESOLVED: u8 = 4;
const T_INGEST_BATCH: u8 = 5;
const T_ACK: u8 = 6;
const T_NACK: u8 = 7;
const T_SUBSCRIBE: u8 = 8;
const T_SUB_DATA: u8 = 9;
const T_SUB_GAP: u8 = 10;
const T_SUB_END: u8 = 11;

impl Message {
    /// The frame type byte this message travels under.
    pub fn frame_type(&self) -> u8 {
        match self {
            Message::Hello { .. } => T_HELLO,
            Message::HelloAck { .. } => T_HELLO_ACK,
            Message::Resolve { .. } => T_RESOLVE,
            Message::Resolved { .. } => T_RESOLVED,
            Message::IngestBatch { .. } => T_INGEST_BATCH,
            Message::Ack { .. } => T_ACK,
            Message::Nack { .. } => T_NACK,
            Message::Subscribe(_) => T_SUBSCRIBE,
            Message::SubData { .. } => T_SUB_DATA,
            Message::SubGap { .. } => T_SUB_GAP,
            Message::SubEnd { .. } => T_SUB_END,
        }
    }

    /// Stable name of the frame type, used as the failpoint tag on
    /// writes and in log lines.
    pub fn type_name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloAck { .. } => "hello-ack",
            Message::Resolve { .. } => "resolve",
            Message::Resolved { .. } => "resolved",
            Message::IngestBatch { .. } => "ingest-batch",
            Message::Ack { .. } => "ack",
            Message::Nack { .. } => "nack",
            Message::Subscribe(_) => "subscribe",
            Message::SubData { .. } => "sub-data",
            Message::SubGap { .. } => "sub-gap",
            Message::SubEnd { .. } => "sub-end",
        }
    }

    /// Encodes the message body (everything after the frame type byte).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello {
                version,
                role,
                client_id,
                schema_fingerprint,
            } => {
                put_u32(&mut out, *version);
                out.push(role.to_wire());
                put_u64(&mut out, *client_id);
                put_u64(&mut out, *schema_fingerprint);
            }
            Message::HelloAck {
                version,
                schema_fingerprint,
                last_acked_seq,
            } => {
                put_u32(&mut out, *version);
                put_u64(&mut out, *schema_fingerprint);
                put_u64(&mut out, *last_acked_seq);
            }
            Message::Resolve { name } => put_str(&mut out, name),
            Message::Resolved { source, name } => {
                put_u32(&mut out, *source);
                put_str(&mut out, name);
            }
            Message::IngestBatch {
                source,
                batch_seq,
                payloads,
            } => {
                put_u32(&mut out, *source);
                put_u64(&mut out, *batch_seq);
                put_u32(&mut out, payloads.len() as u32);
                for p in payloads {
                    put_u32(&mut out, p.len() as u32);
                    out.extend_from_slice(p);
                }
            }
            Message::Ack {
                batch_seq,
                watermark,
            } => {
                put_u64(&mut out, *batch_seq);
                put_u64(&mut out, *watermark);
            }
            Message::Nack {
                batch_seq,
                code,
                detail,
            } => {
                put_u64(&mut out, *batch_seq);
                out.push(code.to_wire());
                put_str(&mut out, detail);
            }
            Message::Subscribe(spec) => {
                put_u64(&mut out, spec.sub_id);
                put_str(&mut out, &spec.source);
                put_u64(&mut out, spec.start_ts);
                match &spec.extractor {
                    None => out.push(0),
                    Some(desc) => {
                        out.push(1);
                        desc.encode(&mut out);
                    }
                }
                put_u64(&mut out, spec.value_min.to_bits());
                put_u64(&mut out, spec.value_max.to_bits());
                out.push(spec.policy.to_wire());
                put_u32(&mut out, spec.queue_cap);
            }
            Message::SubData { sub_id, records } => {
                put_u64(&mut out, *sub_id);
                put_u32(&mut out, records.len() as u32);
                for (ts, p) in records {
                    put_u64(&mut out, *ts);
                    put_u32(&mut out, p.len() as u32);
                    out.extend_from_slice(p);
                }
            }
            Message::SubGap { sub_id, dropped } => {
                put_u64(&mut out, *sub_id);
                put_u64(&mut out, *dropped);
            }
            Message::SubEnd { sub_id, reason } => {
                put_u64(&mut out, *sub_id);
                put_str(&mut out, reason);
            }
        }
        out
    }

    /// Decodes a message from its frame type byte and body.
    pub fn decode(ty: u8, body: &[u8]) -> Result<Message> {
        let mut d = Dec { b: body, pos: 0 };
        let msg = match ty {
            T_HELLO => Message::Hello {
                version: d.u32()?,
                role: Role::from_wire(d.u8()?)?,
                client_id: d.u64()?,
                schema_fingerprint: d.u64()?,
            },
            T_HELLO_ACK => Message::HelloAck {
                version: d.u32()?,
                schema_fingerprint: d.u64()?,
                last_acked_seq: d.u64()?,
            },
            T_RESOLVE => Message::Resolve { name: d.str()? },
            T_RESOLVED => Message::Resolved {
                source: d.u32()?,
                name: d.str()?,
            },
            T_INGEST_BATCH => {
                let source = d.u32()?;
                let batch_seq = d.u64()?;
                let n = d.u32()? as usize;
                // Each payload needs at least its 4-byte length, so a
                // lying count cannot force a huge allocation.
                if n > d.remaining() / 4 {
                    return Err(corrupt(format!("batch claims {n} payloads")));
                }
                let mut payloads = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = d.u32()? as usize;
                    payloads.push(d.bytes(len)?.to_vec());
                }
                Message::IngestBatch {
                    source,
                    batch_seq,
                    payloads,
                }
            }
            T_ACK => Message::Ack {
                batch_seq: d.u64()?,
                watermark: d.u64()?,
            },
            T_NACK => Message::Nack {
                batch_seq: d.u64()?,
                code: NackCode::from_wire(d.u8()?)?,
                detail: d.str()?,
            },
            T_SUBSCRIBE => {
                let sub_id = d.u64()?;
                let source = d.str()?;
                let start_ts = d.u64()?;
                let extractor = match d.u8()? {
                    0 => None,
                    1 => Some(ExtractorDesc::decode(d.bytes(EXTRACTOR_DESC_SIZE)?)?),
                    other => return Err(corrupt(format!("bad extractor marker {other}"))),
                };
                Message::Subscribe(SubscribeSpec {
                    sub_id,
                    source,
                    start_ts,
                    extractor,
                    value_min: f64::from_bits(d.u64()?),
                    value_max: f64::from_bits(d.u64()?),
                    policy: SlowConsumerPolicy::from_wire(d.u8()?)?,
                    queue_cap: d.u32()?,
                })
            }
            T_SUB_DATA => {
                let sub_id = d.u64()?;
                let n = d.u32()? as usize;
                if n > d.remaining() / 12 {
                    return Err(corrupt(format!("sub-data claims {n} records")));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let ts = d.u64()?;
                    let len = d.u32()? as usize;
                    records.push((ts, d.bytes(len)?.to_vec()));
                }
                Message::SubData { sub_id, records }
            }
            T_SUB_GAP => Message::SubGap {
                sub_id: d.u64()?,
                dropped: d.u64()?,
            },
            T_SUB_END => Message::SubEnd {
                sub_id: d.u64()?,
                reason: d.str()?,
            },
            other => return Err(corrupt(format!("unknown frame type {other}"))),
        };
        if d.pos != body.len() {
            return Err(corrupt(format!(
                "{} bytes of trailing garbage after a {} frame",
                body.len() - d.pos,
                msg.type_name()
            )));
        }
        Ok(msg)
    }
}

fn corrupt(msg: String) -> LoomError {
    LoomError::Corrupt(format!("net protocol: {msg}"))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian body reader.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated body: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.bytes(2).map(|b| u16::from_le_bytes([b[0], b[1]]))? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let body = msg.encode_body();
        let back = Message::decode(msg.frame_type(), &body).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello {
            version: PROTO_VERSION,
            role: Role::Ingest,
            client_id: 42,
            schema_fingerprint: 0xDEAD_BEEF,
        });
        round_trip(Message::HelloAck {
            version: PROTO_VERSION,
            schema_fingerprint: 7,
            last_acked_seq: 99,
        });
        round_trip(Message::Resolve {
            name: "app.requests".into(),
        });
        round_trip(Message::Resolved {
            source: 3,
            name: "app.requests".into(),
        });
        round_trip(Message::IngestBatch {
            source: 3,
            batch_seq: 17,
            payloads: vec![vec![1, 2, 3], vec![], vec![9; 100]],
        });
        round_trip(Message::Ack {
            batch_seq: 17,
            watermark: 17,
        });
        round_trip(Message::Nack {
            batch_seq: 18,
            code: NackCode::Degraded,
            detail: "read-only: records.log ENOSPC".into(),
        });
        round_trip(Message::Subscribe(SubscribeSpec {
            sub_id: 5,
            source: "app.requests".into(),
            start_ts: 1_000,
            extractor: Some(ExtractorDesc::U64Le(8)),
            value_min: 10.0,
            value_max: f64::INFINITY,
            policy: SlowConsumerPolicy::DropWithGap,
            queue_cap: 32,
        }));
        round_trip(Message::Subscribe(SubscribeSpec::all(1, "s", 0)));
        round_trip(Message::SubData {
            sub_id: 5,
            records: vec![(1_000, vec![1, 2]), (1_001, vec![])],
        });
        round_trip(Message::SubGap {
            sub_id: 5,
            dropped: 1_234,
        });
        round_trip(Message::SubEnd {
            sub_id: 5,
            reason: "shutdown".into(),
        });
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let msg = Message::IngestBatch {
            source: 1,
            batch_seq: 2,
            payloads: vec![vec![7; 32]],
        };
        let body = msg.encode_body();
        for cut in [0, 1, body.len() / 2, body.len() - 1] {
            let err = Message::decode(msg.frame_type(), &body[..cut]).unwrap_err();
            assert!(matches!(err, LoomError::Corrupt(_)), "cut={cut}: {err}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let msg = Message::Ack {
            batch_seq: 1,
            watermark: 1,
        };
        let mut body = msg.encode_body();
        body.push(0);
        let err = Message::decode(msg.frame_type(), &body).unwrap_err();
        assert!(matches!(err, LoomError::Corrupt(_)), "{err}");
    }

    #[test]
    fn lying_batch_count_cannot_force_allocation() {
        let mut body = Vec::new();
        put_u32(&mut body, 1); // source
        put_u64(&mut body, 1); // batch_seq
        put_u32(&mut body, u32::MAX); // claimed payload count
        let err = Message::decode(T_INGEST_BATCH, &body).unwrap_err();
        assert!(matches!(err, LoomError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unknown_frame_type_is_rejected() {
        let err = Message::decode(200, &[]).unwrap_err();
        assert!(matches!(err, LoomError::Corrupt(_)), "{err}");
    }

    #[test]
    fn subscribe_spec_value_predicate() {
        let mut spec = SubscribeSpec::all(1, "s", 0);
        assert!(spec.matches(&[0; 16]));
        spec.extractor = Some(ExtractorDesc::U64Le(0));
        spec.value_min = 10.0;
        spec.value_max = 20.0;
        assert!(spec.matches(&15u64.to_le_bytes()));
        assert!(!spec.matches(&25u64.to_le_bytes()));
        assert!(!spec.matches(&[0; 4]), "short payload extracts nothing");
    }
}
