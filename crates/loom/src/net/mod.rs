//! Wire protocol for network ingest and live subscriptions.
//!
//! This module is the *protocol* half of Loom's network service: the
//! CRC-checked framing ([`frame`]), the message vocabulary ([`proto`]),
//! and blocking clients ([`client`]). The server loop lives in the
//! daemon crate (`daemon::net`), which wires these pieces to a running
//! engine; keeping the protocol here lets clients embed `loom` without
//! pulling in the daemon, and lets the daemon and the tests share one
//! encoder/decoder.
//!
//! # Failure model on the wire (DESIGN.md §13)
//!
//! * A frame either decodes whole and checksum-verified or is rejected;
//!   a peer killed mid-frame can never deliver a partial batch.
//! * Acks carry a durable watermark; clients keep batches until acked
//!   and replay them after a reconnect. The server dedups replays by
//!   `(client_id, batch_seq)`, so at-least-once delivery stays
//!   exactly-once in the log.
//! * A Degraded/ReadOnly engine answers ingest with a typed
//!   [`NackCode::Degraded`] NACK instead of stalling the socket.
//! * Every network touchpoint (accept, frame read, frame write, ack
//!   send) is a [`fault`](crate::fault) site, so the whole protocol is
//!   chaos-testable with the existing registry.

pub mod client;
pub mod frame;
pub mod proto;

pub use client::{BatchOutcome, ClientConfig, IngestClient, SubClient, SubEvent};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use proto::{Message, NackCode, Role, SlowConsumerPolicy, SubscribeSpec, PROTO_VERSION};

/// FNV-1a fingerprint of a schema: the sorted names of the open
/// sources. Client and server compare fingerprints in the handshake so
/// a writer talking to the wrong instance (or an instance whose schema
/// drifted) fails fast with a typed NACK instead of pushing records
/// into the wrong source ids. `0` is reserved for "skip the check";
/// the fold below can never produce it.
pub fn schema_fingerprint(mut names: Vec<String>) -> u64 {
    names.sort();
    let mut h = crate::util::Fnv1a::new();
    for name in &names {
        h.write(name.as_bytes());
        // Separator so ["ab"] and ["a","b"] differ.
        h.write_u8(0xff);
    }
    h.finish().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_insensitive_and_name_sensitive() {
        let a = schema_fingerprint(vec!["app".into(), "db".into()]);
        let b = schema_fingerprint(vec!["db".into(), "app".into()]);
        let c = schema_fingerprint(vec!["app".into(), "db2".into()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, 0, "0 is reserved for skip-the-check");
        assert_ne!(schema_fingerprint(vec![]), 0);
    }

    #[test]
    fn fingerprint_separates_concatenations() {
        let a = schema_fingerprint(vec!["ab".into()]);
        let b = schema_fingerprint(vec!["a".into(), "b".into()]);
        assert_ne!(a, b);
    }
}
