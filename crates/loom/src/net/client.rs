//! Blocking TCP clients for the Loom wire protocol.
//!
//! [`IngestClient`] pushes record batches and keeps every batch in a
//! replay buffer until the server acks it, so a disconnect at any point
//! is survivable: [`IngestClient::reconnect`] redials with bounded
//! backoff, learns the server's durable watermark from the handshake,
//! drops everything at or below it, and re-sends the rest. Together
//! with the server's `(client_id, batch_seq)` dedup this turns the
//! socket's at-least-once delivery into exactly-once ingest.
//!
//! [`SubClient`] registers one standing subscription and then reads the
//! server-push stream of [`SubEvent`]s.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

use super::frame::{read_frame, write_frame};
use super::proto::{Message, NackCode, Role, SubscribeSpec, PROTO_VERSION};
use crate::error::{LoomError, Result};

/// How a client dials and times out. The retry fields implement bounded
/// exponential backoff on transient connect failures.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `"127.0.0.1:7600"`.
    pub addr: String,
    /// Stable client identity; the server keys ingest replay dedup on
    /// it, so it must survive reconnects of the same logical client.
    pub client_id: u64,
    /// Socket read timeout (acks, subscription frames).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Total connect attempts per [`connect`](IngestClient::connect) /
    /// [`reconnect`](IngestClient::reconnect) (first try included).
    pub connect_attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Expected schema fingerprint, or `0` to skip the check.
    pub schema_fingerprint: u64,
}

impl ClientConfig {
    /// A config for `addr` with second-scale timeouts and five connect
    /// attempts backing off 10 ms → 500 ms.
    pub fn new(addr: impl Into<String>, client_id: u64) -> ClientConfig {
        ClientConfig {
            addr: addr.into(),
            client_id,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            connect_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            schema_fingerprint: 0,
        }
    }
}

/// Dials with bounded exponential backoff and applies the socket
/// timeouts. Transient connect errors are retried
/// `connect_attempts - 1` times; the last error surfaces.
fn dial(cfg: &ClientConfig) -> Result<TcpStream> {
    let mut backoff = cfg.base_backoff;
    let mut last: Option<io::Error> = None;
    for attempt in 0..cfg.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cfg.max_backoff);
        }
        match TcpStream::connect(&cfg.addr) {
            Ok(stream) => {
                stream.set_read_timeout(Some(cfg.read_timeout))?;
                stream.set_write_timeout(Some(cfg.write_timeout))?;
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(LoomError::Io(last.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotConnected,
            "no connect attempts configured",
        )
    })))
}

/// Sends `msg` as one frame.
fn send(stream: &mut TcpStream, msg: &Message) -> Result<()> {
    write_frame(
        stream,
        msg.frame_type(),
        &msg.encode_body(),
        msg.type_name(),
    )
}

/// Reads one frame and decodes it.
fn recv(stream: &mut TcpStream, tag: &str) -> Result<Message> {
    let (ty, body) = read_frame(stream, tag)?;
    Message::decode(ty, &body)
}

/// Runs the hello exchange for `role`, returning the server's
/// `(schema_fingerprint, last_acked_seq)`.
fn handshake(stream: &mut TcpStream, cfg: &ClientConfig, role: Role) -> Result<(u64, u64)> {
    send(
        stream,
        &Message::Hello {
            version: PROTO_VERSION,
            role,
            client_id: cfg.client_id,
            schema_fingerprint: cfg.schema_fingerprint,
        },
    )?;
    match recv(stream, "hello")? {
        Message::HelloAck {
            version,
            schema_fingerprint,
            last_acked_seq,
        } => {
            if version != PROTO_VERSION {
                return Err(LoomError::Corrupt(format!(
                    "server speaks protocol v{version}, client v{PROTO_VERSION}"
                )));
            }
            Ok((schema_fingerprint, last_acked_seq))
        }
        Message::Nack { code, detail, .. } => Err(nack_error(code, &detail)),
        other => Err(unexpected("hello-ack", &other)),
    }
}

fn nack_error(code: NackCode, detail: &str) -> LoomError {
    LoomError::Corrupt(format!("server nacked ({}): {detail}", code.as_str()))
}

fn unexpected(wanted: &str, got: &Message) -> LoomError {
    LoomError::Corrupt(format!(
        "net protocol: expected a {wanted} frame, got {}",
        got.type_name()
    ))
}

/// Outcome of one [`IngestClient::send_batch`] exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The batch is durable; `watermark` is the server's highest
    /// durably ingested batch sequence for this client.
    Acked {
        /// Highest durably ingested batch sequence.
        watermark: u64,
    },
    /// The server refused the batch with a typed reason. The batch
    /// stays in the replay buffer only for retryable codes
    /// ([`NackCode::Overloaded`]); refusals that cannot succeed later
    /// drop it.
    Nacked {
        /// Typed reason.
        code: NackCode,
        /// Human-readable detail from the server.
        detail: String,
    },
}

/// A blocking ingest connection with an unacked-batch replay buffer.
pub struct IngestClient {
    cfg: ClientConfig,
    stream: TcpStream,
    next_seq: u64,
    /// Batches sent (or queued) but not yet acked, oldest first.
    unacked: VecDeque<(u64, u32, Vec<Vec<u8>>)>,
    last_acked: u64,
}

impl IngestClient {
    /// Dials (with backoff), shakes hands as an ingest connection, and
    /// resumes the batch sequence after the server's watermark.
    pub fn connect(cfg: ClientConfig) -> Result<IngestClient> {
        let mut stream = dial(&cfg)?;
        let (_fp, last_acked) = handshake(&mut stream, &cfg, Role::Ingest)?;
        Ok(IngestClient {
            cfg,
            stream,
            next_seq: last_acked + 1,
            unacked: VecDeque::new(),
            last_acked,
        })
    }

    /// Highest batch sequence the server has acked as durable.
    pub fn last_acked(&self) -> u64 {
        self.last_acked
    }

    /// Batches waiting in the replay buffer (sent but unacked).
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Resolves (defining if absent) `name` to a source id.
    pub fn resolve(&mut self, name: &str) -> Result<u32> {
        send(&mut self.stream, &Message::Resolve { name: name.into() })?;
        match recv(&mut self.stream, "ingest")? {
            Message::Resolved { source, .. } => Ok(source),
            Message::Nack { code, detail, .. } => Err(nack_error(code, &detail)),
            other => Err(unexpected("resolved", &other)),
        }
    }

    /// Sends one batch and waits for its ack or nack.
    ///
    /// The batch enters the replay buffer *before* it touches the
    /// socket, so an I/O error at any point leaves it safe to replay
    /// via [`reconnect`](IngestClient::reconnect). On an
    /// [`BatchOutcome::Acked`] answer every batch at or below the
    /// watermark leaves the buffer.
    pub fn send_batch(&mut self, source: u32, payloads: Vec<Vec<u8>>) -> Result<BatchOutcome> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = Message::IngestBatch {
            source,
            batch_seq: seq,
            payloads: payloads.clone(),
        };
        self.unacked.push_back((seq, source, payloads));
        send(&mut self.stream, &msg)?;
        self.wait_outcome(seq)
    }

    /// Reads frames until the ack/nack for `seq` arrives.
    fn wait_outcome(&mut self, seq: u64) -> Result<BatchOutcome> {
        loop {
            match recv(&mut self.stream, "ingest")? {
                Message::Ack {
                    batch_seq,
                    watermark,
                } => {
                    self.absorb_watermark(watermark);
                    if batch_seq == seq {
                        return Ok(BatchOutcome::Acked { watermark });
                    }
                }
                Message::Nack {
                    batch_seq,
                    code,
                    detail,
                } => {
                    if !matches!(code, NackCode::Overloaded) {
                        // Not retryable: drop it from the replay buffer
                        // so a later reconnect does not re-send a batch
                        // the server will refuse forever.
                        self.unacked.retain(|(s, _, _)| *s != batch_seq);
                    }
                    if batch_seq == seq || batch_seq == 0 {
                        return Ok(BatchOutcome::Nacked { code, detail });
                    }
                }
                other => return Err(unexpected("ack", &other)),
            }
        }
    }

    /// Drops every buffered batch at or below `watermark`.
    fn absorb_watermark(&mut self, watermark: u64) {
        self.last_acked = self.last_acked.max(watermark);
        while let Some((seq, _, _)) = self.unacked.front() {
            if *seq <= watermark {
                self.unacked.pop_front();
            } else {
                break;
            }
        }
    }

    /// Redials with bounded backoff and replays every unacked batch the
    /// server does not already have. Returns how many batches were
    /// re-sent (acked replays are absorbed silently).
    pub fn reconnect(&mut self) -> Result<u64> {
        let mut stream = dial(&self.cfg)?;
        let (_fp, last_acked) = handshake(&mut stream, &self.cfg, Role::Ingest)?;
        self.stream = stream;
        self.absorb_watermark(last_acked);
        let pending: Vec<(u64, u32, Vec<Vec<u8>>)> = self.unacked.iter().cloned().collect();
        let mut replayed = 0;
        for (seq, source, payloads) in pending {
            let msg = Message::IngestBatch {
                source,
                batch_seq: seq,
                payloads,
            };
            send(&mut self.stream, &msg)?;
            replayed += 1;
            match self.wait_outcome(seq)? {
                BatchOutcome::Acked { .. } => {}
                BatchOutcome::Nacked { code, detail } => {
                    return Err(nack_error(code, &detail));
                }
            }
        }
        Ok(replayed)
    }

    /// Surrenders the underlying socket (chaos tests use this to kill a
    /// connection mid-conversation).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

/// One frame of a subscription stream, as seen by [`SubClient::next_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// Matching records, oldest first.
    Data(Vec<(u64, Vec<u8>)>),
    /// `dropped` records were shed by the `DropWithGap` policy.
    Gap(u64),
    /// Terminal: the server ended the stream (drain, slow-consumer
    /// disconnect, unknown source).
    End(String),
}

/// A blocking subscription connection.
pub struct SubClient {
    stream: TcpStream,
    sub_id: u64,
}

impl SubClient {
    /// Dials, shakes hands as a subscriber, and registers `spec`.
    pub fn connect(cfg: ClientConfig, spec: SubscribeSpec) -> Result<SubClient> {
        let mut stream = dial(&cfg)?;
        handshake(&mut stream, &cfg, Role::Subscribe)?;
        let sub_id = spec.sub_id;
        send(&mut stream, &Message::Subscribe(spec))?;
        Ok(SubClient { stream, sub_id })
    }

    /// Blocks (up to the configured read timeout) for the next stream
    /// event. A timeout surfaces as [`LoomError::Io`] with
    /// `WouldBlock`/`TimedOut`; the stream remains usable.
    pub fn next_event(&mut self) -> Result<SubEvent> {
        match recv(&mut self.stream, "subscribe")? {
            Message::SubData { sub_id, records } if sub_id == self.sub_id => {
                Ok(SubEvent::Data(records))
            }
            Message::SubGap { sub_id, dropped } if sub_id == self.sub_id => {
                Ok(SubEvent::Gap(dropped))
            }
            Message::SubEnd { sub_id, reason } if sub_id == self.sub_id => {
                Ok(SubEvent::End(reason))
            }
            Message::Nack { code, detail, .. } => Err(nack_error(code, &detail)),
            other => Err(unexpected("subscription frame", &other)),
        }
    }
}
