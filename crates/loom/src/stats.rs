//! Ingest and query statistics counters.

use crate::sync::atomic::{AtomicU64, Ordering};

/// Cumulative ingest-side statistics for a Loom instance.
///
/// All counters are updated with relaxed atomics from the single writer
/// thread and read by anyone; exactness across concurrent reads is not
/// guaranteed (nor needed — these are monitoring counters).
#[derive(Debug, Default)]
pub struct IngestStats {
    records: AtomicU64,
    bytes: AtomicU64,
    chunks_sealed: AtomicU64,
    ts_entries: AtomicU64,
    pad_bytes: AtomicU64,
}

impl IngestStats {
    /// Records a pushed record of `bytes` total size (header + payload).
    pub fn inc_records(&self, bytes: u64) {
        // ORDERING: monitoring counter, no reader synchronizes on it;
        // distinct from the Release-published `SourceShared::records`.
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a sealed chunk.
    pub fn inc_chunks_sealed(&self) {
        self.chunks_sealed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a timestamp-index entry.
    pub fn inc_ts_entries(&self) {
        self.ts_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` of chunk padding.
    pub fn add_pad_bytes(&self, bytes: u64) {
        self.pad_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total records pushed.
    pub fn records(&self) -> u64 {
        // ORDERING: monitoring read; staleness is acceptable.
        self.records.load(Ordering::Relaxed)
    }

    /// Total record-log bytes written (headers + payloads, no padding).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total chunks sealed.
    pub fn chunks_sealed(&self) -> u64 {
        self.chunks_sealed.load(Ordering::Relaxed)
    }

    /// Total timestamp-index entries written.
    pub fn ts_entries(&self) -> u64 {
        self.ts_entries.load(Ordering::Relaxed)
    }

    /// Total bytes of chunk padding written.
    pub fn pad_bytes(&self) -> u64 {
        self.pad_bytes.load(Ordering::Relaxed)
    }
}

/// Per-query execution statistics, returned by the query operators.
///
/// These expose how effective the indexes were: a low
/// `chunks_scanned`-to-`summaries_scanned` ratio means the chunk index
/// skipped most data (§6.4).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunk summaries examined in the chunk index.
    pub summaries_scanned: u64,
    /// Record-log chunks actually read and scanned.
    pub chunks_scanned: u64,
    /// Records examined (headers decoded).
    pub records_scanned: u64,
    /// Records that matched all query predicates.
    pub records_matched: u64,
    /// Bytes read from the record log.
    pub bytes_read: u64,
    /// Chunk pieces decoded through the columnar batch path
    /// (descriptor-defined indexes over sealed chunks). Zero means the
    /// whole query ran record-at-a-time — either the index uses a
    /// closure extractor, [`QueryOptions::use_columnar`] was off, or
    /// only the unsummarized tail was scanned.
    ///
    /// [`QueryOptions::use_columnar`]: crate::QueryOptions::use_columnar
    pub columnar_batches: u64,
    /// Rows (records of the queried source) decoded into column batches.
    pub columnar_rows: u64,
    /// Largest worker-pool size any stage of the query executed with
    /// (`1` or `0` = fully serial execution). Per-worker chunk/byte
    /// counters are folded into the fields above in log order, so they
    /// stay exact regardless of this value.
    pub workers_used: u64,
    /// Number of engine shards this stats block covers. A single-source
    /// query always resolves to the source's home shard, so its
    /// terminals report `1`; [`QueryStats::merge`] sums the field, so a
    /// fan-out that merges per-shard (or per-node) results reports the
    /// total number of shards consulted.
    pub shards_fanned_out: u64,
}

impl QueryStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.summaries_scanned += other.summaries_scanned;
        self.chunks_scanned += other.chunks_scanned;
        self.records_scanned += other.records_scanned;
        self.records_matched += other.records_matched;
        self.bytes_read += other.bytes_read;
        self.columnar_batches += other.columnar_batches;
        self.columnar_rows += other.columnar_rows;
        self.workers_used = self.workers_used.max(other.workers_used);
        self.shards_fanned_out += other.shards_fanned_out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_stats_accumulate() {
        let s = IngestStats::default();
        s.inc_records(48);
        s.inc_records(72);
        s.inc_chunks_sealed();
        s.inc_ts_entries();
        s.add_pad_bytes(16);
        assert_eq!(s.records(), 2);
        assert_eq!(s.bytes(), 120);
        assert_eq!(s.chunks_sealed(), 1);
        assert_eq!(s.ts_entries(), 1);
        assert_eq!(s.pad_bytes(), 16);
    }

    #[test]
    fn query_stats_merge() {
        let mut a = QueryStats {
            summaries_scanned: 1,
            chunks_scanned: 2,
            records_scanned: 3,
            records_matched: 4,
            bytes_read: 5,
            columnar_batches: 6,
            columnar_rows: 7,
            workers_used: 1,
            shards_fanned_out: 1,
        };
        let mut b = a;
        b.workers_used = 4;
        a.merge(&b);
        assert_eq!(a.summaries_scanned, 2);
        assert_eq!(a.bytes_read, 10);
        assert_eq!(a.columnar_batches, 12);
        assert_eq!(a.columnar_rows, 14);
        assert_eq!(a.workers_used, 4, "workers_used merges by max, not sum");
        assert_eq!(a.shards_fanned_out, 2, "fan-out merges by sum");
    }
}
