//! Error types for the Loom library.

use std::fmt;
use std::io;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LoomError>;

/// Errors returned by Loom operations.
#[derive(Debug)]
pub enum LoomError {
    /// An I/O error from the underlying persistent storage.
    Io(io::Error),
    /// The configuration is invalid (e.g., chunk size does not divide block size).
    InvalidConfig(String),
    /// The given source ID is not registered.
    UnknownSource(u32),
    /// The given index ID is not registered.
    UnknownIndex(u32),
    /// The source has been closed and no longer accepts records.
    SourceClosed(u32),
    /// The index is defined over a different source than the one queried.
    IndexSourceMismatch {
        /// Index that was used.
        index: u32,
        /// Source the index is attached to.
        expected_source: u32,
        /// Source the caller passed.
        got_source: u32,
    },
    /// The record payload is too large to fit in a single chunk.
    RecordTooLarge {
        /// Payload size the caller attempted to write.
        size: usize,
        /// Maximum payload size permitted by the configuration.
        max: usize,
    },
    /// An extractor descriptor reads a field that ends past the largest
    /// payload the configuration can store, so it could never extract a
    /// value from any record.
    ExtractorOutOfBounds {
        /// Byte offset the descriptor reads at.
        offset: u32,
        /// Width of the field in bytes.
        width: u32,
        /// Largest payload a record can carry
        /// ([`Config::max_record_payload`](crate::Config::max_record_payload)).
        max_payload: usize,
    },
    /// A histogram definition is invalid (e.g., unsorted or empty boundaries).
    InvalidHistogram(String),
    /// The requested address lies beyond the end of the log.
    AddressOutOfBounds {
        /// Address that was requested.
        addr: u64,
        /// Current log tail.
        tail: u64,
    },
    /// The ingest side of the log has shut down.
    ShutDown,
    /// The instance is in degraded read-only mode: persistent I/O failed
    /// beyond the retry budget (see
    /// [`Config::io_retry`](crate::Config::io_retry)), so new pushes are
    /// rejected while already-flushed data stays queryable.
    Degraded {
        /// Why the engine went read-only (e.g. the failing file and
        /// underlying I/O error).
        reason: String,
    },
    /// Ingest was rejected by the
    /// [`OverloadPolicy::ErrorFast`](crate::OverloadPolicy::ErrorFast)
    /// backpressure policy: admitting the record would have blocked on
    /// the flusher. The record was not written; retrying later succeeds
    /// once the flusher catches up.
    Overloaded,
    /// An internal invariant was violated — a bug in Loom, not in the
    /// caller. Please report it.
    Internal(String),
    /// A corrupt or truncated entry was encountered while reading a log.
    Corrupt(String),
    /// A checksum or framing violation in a specific durable log.
    ///
    /// Reported by decode paths that know which file and address the bad
    /// entry lives at; recovery turns these into tail truncations.
    CorruptLog {
        /// Which durable structure the corruption was found in.
        log: crate::durability::LogId,
        /// Byte address of the bad entry within that log.
        addr: u64,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An invalid query parameter (e.g., a percentile outside `[0, 100]`).
    InvalidQuery(String),
    /// The configured shard count does not match the one the data
    /// directory was created with. Shard routing is a pure function of
    /// `hash(source) % shards`, so opening a directory with a different
    /// shard count would route every source to the wrong shard's logs;
    /// reopen refuses instead.
    ShardMismatch {
        /// Shard count recorded in the directory's root superblock.
        on_disk: u64,
        /// Shard count the caller's [`Config`](crate::Config) requested.
        requested: u64,
    },
}

impl fmt::Display for LoomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoomError::Io(e) => write!(f, "I/O error: {e}"),
            LoomError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            LoomError::UnknownSource(id) => write!(f, "unknown source id {id}"),
            LoomError::UnknownIndex(id) => write!(f, "unknown index id {id}"),
            LoomError::SourceClosed(id) => write!(f, "source {id} is closed"),
            LoomError::IndexSourceMismatch {
                index,
                expected_source,
                got_source,
            } => write!(
                f,
                "index {index} is defined over source {expected_source}, not source {got_source}"
            ),
            LoomError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum of {max} bytes")
            }
            LoomError::ExtractorOutOfBounds {
                offset,
                width,
                max_payload,
            } => write!(
                f,
                "extractor field of {width} bytes at offset {offset} ends past the \
                 maximum record payload of {max_payload} bytes"
            ),
            LoomError::InvalidHistogram(msg) => write!(f, "invalid histogram: {msg}"),
            LoomError::AddressOutOfBounds { addr, tail } => {
                write!(f, "address {addr} is beyond log tail {tail}")
            }
            LoomError::ShutDown => write!(f, "log has been shut down"),
            LoomError::Degraded { reason } => {
                write!(f, "engine is in degraded read-only mode: {reason}")
            }
            LoomError::Overloaded => write!(
                f,
                "ingest rejected: flusher backpressure (ErrorFast overload policy)"
            ),
            LoomError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            LoomError::Corrupt(msg) => write!(f, "corrupt log entry: {msg}"),
            LoomError::CorruptLog { log, addr, reason } => {
                write!(f, "corrupt entry in {log} at address {addr}: {reason}")
            }
            LoomError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            LoomError::ShardMismatch { on_disk, requested } => write!(
                f,
                "config requests {requested} shard(s) but the data directory was created \
                 with {on_disk}; shard routing would misplace every source"
            ),
        }
    }
}

impl std::error::Error for LoomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoomError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoomError {
    fn from(e: io::Error) -> Self {
        LoomError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LoomError::RecordTooLarge {
            size: 70000,
            max: 65512,
        };
        assert!(e.to_string().contains("70000"));
        assert!(e.to_string().contains("65512"));

        let e = LoomError::UnknownSource(7);
        assert!(e.to_string().contains('7'));

        let e = LoomError::IndexSourceMismatch {
            index: 3,
            expected_source: 1,
            got_source: 2,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1') && s.contains('2'));
    }

    #[test]
    fn corrupt_log_names_file_address_and_reason() {
        let e = LoomError::CorruptLog {
            log: crate::durability::LogId::Records,
            addr: 4096,
            reason: "record checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("records.log"), "{s}");
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains("checksum"), "{s}");
    }

    #[test]
    fn degraded_and_overloaded_are_descriptive() {
        let e = LoomError::Degraded {
            reason: "records.log: ENOSPC".into(),
        };
        let s = e.to_string();
        assert!(s.contains("read-only"), "{s}");
        assert!(s.contains("ENOSPC"), "{s}");
        assert!(LoomError::Overloaded.to_string().contains("backpressure"));
        assert!(LoomError::Internal("oops".into())
            .to_string()
            .contains("oops"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let e: LoomError = io::Error::other("boom").into();
        assert!(matches!(e, LoomError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
