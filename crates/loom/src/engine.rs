//! The Loom engine: write-path orchestration (§5.4) and handle types.
//!
//! [`Loom`] is the cloneable schema/query handle; [`LoomWriter`] is the
//! single-threaded ingest handle. The write path per record is:
//!
//! 1. timestamp the record and append it to the record log;
//! 2. if the record starts a new chunk, finalize the previous chunk's
//!    summary, append it to the chunk index, and append a chunk-seal entry
//!    to the timestamp index;
//! 3. update the active chunk's summary and, periodically, append a
//!    record mark to the timestamp index;
//! 4. publish the record log, chunk index, and timestamp index watermarks
//!    (in that order), then the source's last-record pointer.
//!
//! # Sharding
//!
//! With [`Config::shards`](crate::Config::shards) ≥ 2 the engine is
//! partitioned into independent *shards*, each owning a complete
//! single-funnel engine — its own hybrid logs, chunk/timestamp indexes,
//! flusher threads, manifest, and health state — rooted in a `shard-N/`
//! subdirectory. A source is routed to its *home shard* by a stable hash
//! of its ID (FNV-1a, `shard_of`), so all of a source's records, summaries, and
//! marks stay colocated and a single-source query touches exactly one
//! shard (the same path a single-funnel engine takes). The schema
//! registry, ingest statistics, clock, and slow-query ring remain shared
//! across shards; schema changes are journaled in the home shard's
//! manifest and merged back at reopen. One shard's I/O failure degrades
//! only that shard: the others keep ingesting and serving queries.
//!
//! `shards = 1` (the default) is byte-for-byte the flat single-directory
//! layout: no `shard-N/` subdirectories, one funnel, identical on-disk
//! format and crash-recovery behavior to a pre-sharding engine.

use crate::sync::atomic::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::{Mutex, RwLock};

use crate::chunk_index::SummaryCursor;
use crate::clock::Clock;
use crate::config::{Config, OverloadPolicy};
use crate::durability::manifest::AgedChunk;
use crate::durability::{
    CleanShutdown, LogId, Manifest, ManifestRecord, RecoveredState, RecoveryReport, SourceState,
    SourceTail, Superblock, SUPERBLOCK_FILE,
};
use crate::error::{LoomError, Result};
use crate::extract::ExtractorDesc;
use crate::fault;
use crate::health::{EngineHealth, HealthState};
use crate::histogram::HistogramSpec;
use crate::hybridlog::{self, LogOptions, LogShared};
use crate::obs::{MetricsSnapshot, Obs, SlowQueryLog, SlowQueryTrace, Stopwatch};
use crate::record::{ChunkIter, RecordHeader, NIL_ADDR, RECORD_HEADER_SIZE, SOURCE_PAD};
use crate::registry::{IndexId, Registry, RegistryVersion, SourceId, SourceShared, ValueFn};
use crate::retention::{self, ColdSnap, ColdTierStats, SegmentWriter};
use crate::stats::IngestStats;
use crate::summary::{BinStats, ChunkSummary};
use crate::ts_index::{TsEntry, TsKind, TS_ENTRY_SIZE};

/// Deterministic home-shard routing: FNV-1a over the source ID's
/// little-endian bytes, reduced modulo the shard count.
///
/// The hash must be stable across processes and reopens — a source's data
/// lives in its home shard's directory forever — so this is a fixed
/// algorithm, never `std`'s randomized `RandomState`.
pub(crate) fn shard_of(source: u32, shards: usize) -> usize {
    let h = crate::util::fnv1a(&source.to_le_bytes());
    (h % shards as u64) as usize
}

/// Directory name of shard `i` under the engine root.
fn shard_dir_name(i: usize) -> String {
    format!("shard-{i}")
}

/// The effective configuration of shard `i`: the root config scoped to
/// the shard's subdirectory with sharding disabled, because each shard is
/// a complete single-funnel engine.
fn shard_config(root: &Config, i: usize) -> Config {
    let mut c = root.clone();
    c.dir = root.dir.join(shard_dir_name(i));
    c.shards = 1;
    c
}

/// Severity rank for worst-of-shards health merging.
fn health_severity(h: &EngineHealth) -> u8 {
    match h {
        EngineHealth::Healthy => 0,
        EngineHealth::Degraded { .. } => 1,
        EngineHealth::ReadOnly { .. } => 2,
    }
}

/// Engine-level state shared by the [`Loom`] handle and [`LoomWriter`]:
/// the cross-shard pieces plus one [`Inner`] per shard.
pub(crate) struct EngineInner {
    /// The root configuration (`dir` is the engine root; `shards` ≥ 1).
    pub(crate) config: Config,
    pub(crate) clock: Clock,
    /// Schema registry, shared across shards: IDs are global so routing
    /// and query resolution never consult shard-local state.
    pub(crate) registry: Arc<RwLock<Registry>>,
    pub(crate) registry_version: Arc<RegistryVersion>,
    /// Engine-wide ingest counters (shards all feed the same block).
    pub(crate) stats: Arc<IngestStats>,
    /// The per-shard engines; index = shard ordinal. Length 1 in the
    /// single-funnel layout.
    pub(crate) shards: Vec<Arc<Inner>>,
    /// Merged per-shard recovery reports; `None` on a fresh directory.
    pub(crate) recovery: Mutex<Option<RecoveryReport>>,
    /// The background retention compactor, when
    /// [`RetentionConfig::interval`](crate::RetentionConfig) is set.
    compactor: Mutex<Option<CompactorHandle>>,
    /// Network-service counters, engine-wide (connections belong to the
    /// instance, not to a shard). Incremented by the network front-end
    /// via [`Loom::net_obs`]; folded into [`Loom::metrics_snapshot`].
    pub(crate) net: Arc<crate::obs::NetObs>,
}

/// Handle to the background compactor thread: signal `stop`, unpark,
/// and join on engine drop.
struct CompactorHandle {
    stop: Arc<crate::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl Drop for EngineInner {
    fn drop(&mut self) {
        if let Some(h) = self.compactor.lock().take() {
            h.stop.store(true, Ordering::Release);
            h.thread.thread().unpark();
            let _ = h.thread.join();
        }
    }
}

/// Per-shard engine state shared between the handles and the shard's
/// writer. In a single-funnel engine there is exactly one.
pub(crate) struct Inner {
    /// The shard-scoped config: `dir` is the shard's directory and
    /// `shards == 1` (see [`shard_config`]).
    pub(crate) config: Config,
    pub(crate) clock: Clock,
    /// Engine-wide registry (`Arc`-shared with [`EngineInner`]).
    pub(crate) registry: Arc<RwLock<Registry>>,
    pub(crate) registry_version: Arc<RegistryVersion>,
    pub(crate) record_log: Arc<LogShared>,
    pub(crate) chunk_log: Arc<LogShared>,
    pub(crate) ts_log: Arc<LogShared>,
    /// Engine-wide ingest counters (`Arc`-shared with [`EngineInner`]).
    pub(crate) stats: Arc<IngestStats>,
    /// Per-shard metrics registry; the slow-query ring inside is
    /// `Arc`-shared across shards.
    pub(crate) obs: Obs,
    /// The shard's schema/lifecycle journal; schema changes for sources
    /// homed here append to it.
    pub(crate) manifest: Mutex<Manifest>,
    /// Health cell shared with this shard's three hybridlog flushers.
    pub(crate) health: Arc<HealthState>,
    /// Pooled columnar scan/decode buffers, reused across queries and
    /// worker threads (grow-once allocation).
    pub(crate) scan_bufs: crate::query::columnar::BufferPool,
    /// The shard's cold-tier snapshot; replaced wholesale (clone-on-
    /// write) after every committed compaction or prune. Queries capture
    /// the `Arc` once, so a query sees one frozen tier.
    pub(crate) cold: RwLock<Arc<ColdSnap>>,
    /// Fence between queries and hole punching: query terminals hold a
    /// read guard for their whole execution; the compactor takes the
    /// write guard only while punching freshly aged chunks out of the
    /// record log, after the new cold snapshot is installed. A query
    /// admitted after the install reads those chunks from the cold tier,
    /// so it never observes the punched zeros.
    pub(crate) tier_lock: RwLock<()>,
    /// Serializes compaction rounds (explicit [`Loom::compact`], the
    /// seal hook, and the background thread may race otherwise).
    compact_gate: Mutex<()>,
}

impl Inner {
    /// The error a rejected ingest call reports: the health cell's
    /// reason when one was recorded, else the generic shutdown error.
    fn degraded_error(&self) -> LoomError {
        match self.health.current() {
            EngineHealth::ReadOnly { reason } | EngineHealth::Degraded { reason } => {
                LoomError::Degraded { reason }
            }
            EngineHealth::Healthy => LoomError::ShutDown,
        }
    }

    /// Runs one retention round over this shard: ages eligible chunks
    /// into cold segments, then drops expired slices. A no-op unless
    /// retention is enabled and the shard is fully healthy — a degraded
    /// shard stops compacting until it recovers. Errors degrade the
    /// shard's health; ingest and queries over committed data continue.
    pub(crate) fn compact_round(&self) -> Result<CompactionReport> {
        if !self.config.retention.enabled || !matches!(self.health.current(), EngineHealth::Healthy)
        {
            return Ok(CompactionReport::default());
        }
        let _gate = self.compact_gate.lock();
        let mut report = CompactionReport::default();
        match self.compact_round_locked(&mut report) {
            Ok(()) => Ok(report),
            Err(e) => {
                self.health
                    .degrade(format!("retention compaction failed: {e}"));
                Err(e)
            }
        }
    }

    /// The round body, under the compaction gate.
    ///
    /// Aging is strictly in log order: the summary walk resumes where the
    /// last round stopped and halts at the first ineligible chunk, so the
    /// cold tier is always a contiguous prefix of the sealed region and
    /// `pruned_below` a prefix of that. Per aged batch the commit
    /// protocol is: write + fsync the segment, journal `ChunksAged` in
    /// the manifest (the commit point), install the new snapshot, then
    /// punch the hot bytes. A crash before the journal leaves an orphan
    /// segment that reopen sweeps; after it, reopen serves the chunks
    /// cold whether or not the punch landed.
    fn compact_round_locked(&self, report: &mut CompactionReport) -> Result<()> {
        let retention = &self.config.retention;
        let now = self.clock.now();
        let width = retention.slice;
        let chunk_size = self.config.chunk_size as u64;
        let mut snap = Arc::clone(&self.cold.read());

        // Phase 1: collect eligible chunks, oldest first. A chunk ages
        // only when its whole range and its summary are flushed: the
        // punched hot copy must never be the only copy, and recovery
        // relies on cold chunks always having durable summaries.
        let record_flushed = self.record_log.flushed_upto();
        let chunk_flushed = self.chunk_log.flushed_upto();
        let mut batch: Vec<(u64, u64, u32, ChunkSummary)> = Vec::new();
        {
            let chunk_log = &*self.chunk_log;
            let mut cursor = SummaryCursor::new(chunk_log, snap.aged_upto_summary());
            loop {
                let summary_addr = cursor.pos();
                let Some(s) = cursor.next()? else { break };
                let summary_end = cursor.pos();
                let chunk_end = s.chunk_addr + u64::from(s.chunk_len);
                let old_enough = now.saturating_sub(s.ts_max) >= retention.cold_after;
                let durable = chunk_end <= record_flushed && summary_end <= chunk_flushed;
                if !old_enough || !durable {
                    break;
                }
                batch.push((0, summary_addr, (summary_end - summary_addr) as u32, s));
            }
        }
        // Slice assignment is monotone non-decreasing along the walk, so
        // a chunk with an out-of-order (or empty ⇒ zero) `ts_max` lands
        // in the newest slice so far instead of reopening an older one.
        let mut cur_slice = snap.slices().last().map(|s| s.slice).unwrap_or(0);
        for item in &mut batch {
            cur_slice = cur_slice.max(retention::slice_of(item.3.ts_max, width));
            item.0 = cur_slice;
        }

        // Phase 2: one fresh segment file per (slice, round) run.
        let mut buf = vec![0u8; chunk_size as usize];
        let mut i = 0;
        while i < batch.len() {
            let slice = batch[i].0;
            let mut j = i;
            while j < batch.len() && batch[j].0 == slice {
                j += 1;
            }
            let segment = snap.next_segment(slice);
            let mut writer = SegmentWriter::create(&self.config.dir, slice, segment)?;
            let mut entries = Vec::with_capacity(j - i);
            for (_, summary_addr, summary_len, s) in &batch[i..j] {
                self.record_log.read_at(s.chunk_addr, &mut buf)?;
                let meta = writer.append_chunk(s.chunk_addr, &buf)?;
                let records: u64 = s.sources.values().sum();
                entries.push(AgedChunk {
                    chunk_addr: s.chunk_addr,
                    offset: meta.offset,
                    raw_len: meta.raw_len,
                    comp_len: meta.comp_len,
                    summary_addr: *summary_addr,
                    summary_len: *summary_len,
                    // An all-pad chunk has no records; store a zeroed
                    // range instead of the summary's MAX/0 sentinels.
                    ts_min: if records == 0 { 0 } else { s.ts_min },
                    ts_max: if records == 0 { 0 } else { s.ts_max },
                    records,
                });
            }
            let file = Arc::new(writer.finish()?);
            self.manifest.lock().append(ManifestRecord::ChunksAged {
                slice,
                segment,
                entries: entries.clone(),
            })?;
            snap = Arc::new(snap.with_aged(slice, segment, &entries, file));
            *self.cold.write() = Arc::clone(&snap);
            let raw: u64 = entries.iter().map(|e| u64::from(e.raw_len)).sum();
            let comp: u64 = entries.iter().map(|e| u64::from(e.comp_len)).sum();
            self.obs.engine.compaction(entries.len() as u64, raw, comp);
            report.chunks_aged += entries.len() as u64;
            self.punch_chunks(&entries)?;
            i = j;
        }

        // Phase 3: drop expired slices. Only slices strictly below the
        // newest one are sealed (the newest may still receive chunks);
        // expiry is measured from the slice's end time.
        let Some(drop_after) = retention.drop_after else {
            return Ok(());
        };
        let candidates: Vec<(u64, u64)> = snap
            .slices()
            .iter()
            .filter(|s| !s.pruned && s.slice < cur_slice)
            .filter(|s| {
                let end = (s.slice + 1).saturating_mul(width);
                now.saturating_sub(end) >= drop_after
            })
            .map(|s| (s.slice, s.chunk_end_max))
            .collect();
        for (slice, chunk_end_max) in candidates {
            // Journal first, install, then unlink: a crash between the
            // commit and the unlink leaves a directory reopen sweeps.
            self.manifest.lock().append(ManifestRecord::SlicePruned {
                slice,
                pruned_below: chunk_end_max,
            })?;
            snap = Arc::new(snap.with_pruned(slice, chunk_end_max));
            *self.cold.write() = Arc::clone(&snap);
            if let Some(k) = fault::check(
                fault::SLICE_PRUNE,
                &retention::segment::slice_dir_name(slice),
            ) {
                return Err(LoomError::Io(k.to_io_error()));
            }
            let dir = self
                .config
                .dir
                .join(retention::COLD_DIR)
                .join(retention::segment::slice_dir_name(slice));
            match std::fs::remove_dir_all(&dir) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
            self.obs.engine.slice_pruned();
            report.slices_pruned += 1;
        }
        Ok(())
    }

    /// Reclaims the hot bytes of freshly committed cold chunks by
    /// punching their ranges out of the record-log file.
    ///
    /// Runs under the tier write lock: queries hold the read side for
    /// their whole execution, so no in-flight scan is mid-read on a hot
    /// copy while it vanishes. Queries admitted after the new snapshot
    /// was installed route these chunks to the cold tier and never see
    /// the zeros.
    fn punch_chunks(&self, entries: &[AgedChunk]) -> Result<()> {
        let path = self.config.dir.join(LogId::Records.file_name());
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        let _fence = self.tier_lock.write();
        for e in entries {
            if let Some(k) = fault::check(fault::HOT_PUNCH, &e.chunk_addr.to_string()) {
                return Err(LoomError::Io(k.to_io_error()));
            }
            punch_hole(&file, e.chunk_addr, u64::from(e.raw_len))?;
        }
        Ok(())
    }
}

/// Outcome of one retention round ([`Loom::compact`] sums these across
/// shards).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Chunks moved from the hot record log into cold segments.
    pub chunks_aged: u64,
    /// Whole cold slices dropped by `drop_after`.
    pub slices_pruned: u64,
}

/// Per-shard hot/cold tier breakdown, from [`Loom::tier_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TierStats {
    /// Shard ordinal.
    pub shard: usize,
    /// Sealed chunks still owned by the hot record log.
    pub hot_chunks: u64,
    /// Bytes those chunks occupy (uncompressed; holes excluded).
    pub hot_bytes: u64,
    /// Cold-tier aggregate counters.
    pub cold: ColdTierStats,
}

impl TierStats {
    /// Raw-to-compressed ratio of the live cold tier, if it holds data.
    pub fn compression_ratio(&self) -> Option<f64> {
        (self.cold.comp_bytes > 0).then(|| self.cold.raw_bytes as f64 / self.cold.comp_bytes as f64)
    }
}

/// Deallocates `[offset, offset + len)` of `file`, leaving a hole that
/// reads back as zeros. Uses `fallocate(FALLOC_FL_PUNCH_HOLE)` on Linux;
/// filesystems (or platforms) that cannot punch get literal zeros
/// instead — the record format treats a zeroed header inside a complete
/// chunk as "skip to the next chunk", so both forms scan identically.
fn punch_hole(file: &std::fs::File, offset: u64, len: u64) -> Result<()> {
    if len == 0 {
        return Ok(());
    }
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        const FALLOC_FL_KEEP_SIZE: i32 = 0x01;
        const FALLOC_FL_PUNCH_HOLE: i32 = 0x02;
        extern "C" {
            fn fallocate(fd: i32, mode: i32, offset: i64, len: i64) -> i32;
        }
        if offset <= i64::MAX as u64 && len <= i64::MAX as u64 {
            // SAFETY: plain FFI call with no pointer arguments — the fd
            // comes from a live `&File` (open for the whole call), mode
            // is a valid flag combination, and offset/len are checked
            // non-negative above; the kernel validates the range.
            let rc = unsafe {
                fallocate(
                    file.as_raw_fd(),
                    FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    offset as i64,
                    len as i64,
                )
            };
            if rc == 0 {
                return Ok(());
            }
            let err = std::io::Error::last_os_error();
            // EOPNOTSUPP / EINVAL: the filesystem cannot punch holes.
            if !matches!(err.raw_os_error(), Some(95) | Some(22)) {
                return Err(err.into());
            }
        }
    }
    zero_range(file, offset, len)
}

/// Overwrites `[offset, offset + len)` with zeros in bounded steps, the
/// portable fallback for [`punch_hole`].
fn zero_range(file: &std::fs::File, offset: u64, len: u64) -> Result<()> {
    use std::os::unix::fs::FileExt;
    const STEP: usize = 64 << 10;
    let zeros = vec![0u8; STEP.min(len as usize)];
    let mut pos = offset;
    let end = offset.saturating_add(len);
    while pos < end {
        let n = ((end - pos) as usize).min(zeros.len());
        file.write_all_at(&zeros[..n], pos)?;
        pos += n as u64;
    }
    Ok(())
}

/// The cloneable schema and query handle of a Loom instance.
#[derive(Clone)]
pub struct Loom {
    pub(crate) inner: Arc<EngineInner>,
}

/// The single-threaded ingest handle of a Loom instance (§4.1).
///
/// Exactly one `LoomWriter` exists per instance. It owns one private
/// per-shard writer; [`LoomWriter::push`] routes each record to
/// its source's home shard. Within a shard ingest stays single-threaded,
/// which is what makes appends take a few hundred cycles with no
/// cross-thread coordination.
pub struct LoomWriter {
    engine: Arc<EngineInner>,
    shards: Vec<ShardWriter>,
}

/// The ingest funnel of one shard: owns the shard's hybrid-log writers
/// and all writer-private state.
struct ShardWriter {
    inner: Arc<Inner>,
    record: hybridlog::Writer,
    chunk: hybridlog::Writer,
    ts: hybridlog::Writer,
    /// Writer-private per-source state.
    sources: HashMap<u32, SourceWriterState>,
    /// Cached schema, refreshed when the registry version changes.
    cache: WriterCache,
    /// Active-chunk accumulation state.
    active: ActiveChunk,
    /// Address of the last chunk-seal entry in the timestamp index.
    last_seal: u64,
    /// Reusable zero buffer for chunk padding.
    zeros: Vec<u8>,
    /// Set once a clean-shutdown marker has been written.
    closed: bool,
    /// Set by [`LoomWriter::simulate_crash`]; suppresses the clean
    /// shutdown on drop.
    crashed: bool,
}

/// Writer-private state for one source.
struct SourceWriterState {
    /// Address of the source's most recent record, or `NIL_ADDR`.
    prev: u64,
    /// Records pushed so far.
    count: u64,
    /// Address of the source's most recent record mark, or `NIL_ADDR`.
    last_mark: u64,
    /// Shared state published to readers.
    shared: Arc<SourceShared>,
}

/// Cached schema for the ingest hot path.
struct WriterCache {
    version: u64,
    sources: HashMap<u32, CachedSource>,
}

struct CachedSource {
    closed: bool,
    indexes: Vec<CachedIndex>,
}

/// A cached index definition plus the dense per-bin accumulation for the
/// active chunk. Dense vectors avoid map operations per record.
struct CachedIndex {
    id: u32,
    extractor: ValueFn,
    spec: Arc<HistogramSpec>,
    bins: Vec<Option<BinStats>>,
}

/// Accumulation state for the active chunk.
struct ActiveChunk {
    ts_min: u64,
    ts_max: u64,
    /// Per-source record counts; sources per chunk are few, so a vector
    /// with linear search beats a map here.
    sources: Vec<(u32, u64)>,
}

impl ActiveChunk {
    fn new() -> Self {
        ActiveChunk {
            ts_min: u64::MAX,
            ts_max: 0,
            sources: Vec::new(),
        }
    }

    fn observe(&mut self, source: u32, ts: u64) {
        self.ts_min = self.ts_min.min(ts);
        self.ts_max = self.ts_max.max(ts);
        match self.sources.iter_mut().find(|(s, _)| *s == source) {
            Some((_, c)) => *c += 1,
            None => self.sources.push((source, 1)),
        }
    }

    fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    fn reset(&mut self) {
        self.ts_min = u64::MAX;
        self.ts_max = 0;
        self.sources.clear();
    }
}

/// One opened shard: the engine-side state, the writer half, and the
/// shard's recovery report (`None` for a freshly initialized shard).
type OpenedShard = (Arc<Inner>, ShardWriter, Option<RecoveryReport>);

/// Cross-shard state built once per open and `Arc`-shared into every
/// shard's [`Inner`].
struct SharedParts {
    clock: Clock,
    registry: Arc<RwLock<Registry>>,
    registry_version: Arc<RegistryVersion>,
    stats: Arc<IngestStats>,
    /// One slow-query ring for the whole engine, so traces from every
    /// shard interleave in a single arrival order.
    slow: Arc<SlowQueryLog>,
}

/// Folds per-shard recovery reports into the engine-level report. A
/// shard initialized fresh (`None`) does not falsify cleanliness; the
/// merge is `None` only when every shard was fresh.
fn merge_reports(reports: Vec<Option<RecoveryReport>>) -> Option<RecoveryReport> {
    let mut merged: Option<RecoveryReport> = None;
    for r in reports.into_iter().flatten() {
        match &mut merged {
            None => merged = Some(r),
            Some(m) => {
                m.clean &= r.clean;
                m.records_scanned += r.records_scanned;
                m.truncations.extend(r.truncations);
                m.summaries_rebuilt += r.summaries_rebuilt;
                m.seals_appended += r.seals_appended;
                // Shards recover in parallel, so the engine-level
                // duration is the slowest shard, not the sum.
                m.duration_nanos = m.duration_nanos.max(r.duration_nanos);
            }
        }
    }
    merged
}

impl Loom {
    /// Opens a Loom instance rooted at `config.dir`, returning the shared
    /// handle and the unique ingest writer.
    ///
    /// # Errors
    ///
    /// As [`Loom::open_with_clock`]: [`LoomError::InvalidConfig`],
    /// [`LoomError::ShardMismatch`], [`LoomError::Corrupt`], or
    /// [`LoomError::Io`].
    pub fn open(config: Config) -> Result<(Loom, LoomWriter)> {
        Self::open_with_clock(config, Clock::monotonic())
    }

    /// Opens a Loom instance with an explicit clock (tests and replay).
    ///
    /// A directory that already holds a Loom superblock is *reopened*: the
    /// schema is rebuilt from the manifest(s) and all data flushed before
    /// the previous shutdown or crash becomes queryable again. A directory
    /// without one is initialized fresh. With
    /// [`Config::shards`](crate::Config::shards) ≥ 2 every shard
    /// recovers in parallel; the shard count is recorded in the root
    /// superblock and reopening with a different count fails with
    /// [`LoomError::ShardMismatch`].
    ///
    /// # Errors
    ///
    /// [`LoomError::InvalidConfig`] from config validation,
    /// [`LoomError::ShardMismatch`] on a shard-count change,
    /// [`LoomError::Corrupt`] when a superblock or manifest fails
    /// validation, and [`LoomError::Io`] for filesystem failures.
    pub fn open_with_clock(config: Config, clock: Clock) -> Result<(Loom, LoomWriter)> {
        config.validate()?;
        std::fs::create_dir_all(&config.dir)?;
        let shared = SharedParts {
            clock: clock.clone(),
            registry: Arc::new(RwLock::named("loom.registry", Registry::new())),
            registry_version: Arc::new(RegistryVersion::default()),
            stats: Arc::new(IngestStats::default()),
            slow: Arc::new(SlowQueryLog::new(config.slow_query_log)),
        };
        // The single-funnel engine opens its one shard directly on the
        // root directory — exactly the flat pre-sharding layout.
        let parts = if config.shards == 1 {
            vec![Self::open_shard(config.clone(), &shared)?]
        } else {
            Self::open_shards(&config, &shared)?
        };
        let mut shards = Vec::with_capacity(parts.len());
        let mut writers = Vec::with_capacity(parts.len());
        let mut reports = Vec::with_capacity(parts.len());
        for (inner, writer, report) in parts {
            shards.push(inner);
            writers.push(writer);
            reports.push(report);
        }
        let engine = Arc::new(EngineInner {
            config,
            clock,
            registry: shared.registry,
            registry_version: shared.registry_version,
            stats: shared.stats,
            shards,
            recovery: Mutex::named("loom.recovery", merge_reports(reports)),
            compactor: Mutex::named("loom.compactor", None),
            net: Arc::new(crate::obs::NetObs::default()),
        });
        Self::spawn_compactor(&engine);
        let writer = LoomWriter {
            engine: Arc::clone(&engine),
            shards: writers,
        };
        Ok((Loom { inner: engine }, writer))
    }

    /// Starts the background retention thread when the config asks for
    /// one: every `retention.interval` it runs a compaction/prune round
    /// over each shard. The thread holds only the per-shard `Inner`s, so
    /// it never keeps the engine alive; `EngineInner::drop` joins it.
    fn spawn_compactor(engine: &Arc<EngineInner>) {
        let retention = &engine.config.retention;
        let Some(interval) = retention.interval.filter(|_| retention.enabled) else {
            return;
        };
        let stop = Arc::new(crate::sync::atomic::AtomicBool::new(false));
        let shards: Vec<Arc<Inner>> = engine.shards.iter().map(Arc::clone).collect();
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("loom-compactor".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    std::thread::park_timeout(interval);
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    for shard in &shards {
                        // Errors degrade the shard's health inside; a
                        // degraded shard stops compacting until recovery.
                        let _ = shard.compact_round();
                    }
                }
            });
        if let Ok(thread) = thread {
            *engine.compactor.lock() = Some(CompactorHandle { stop, thread });
        }
    }

    /// Opens all shards of a multi-shard engine: validates (or writes)
    /// the root superblock, then opens every `shard-N/` directory in
    /// parallel — recovery scans are independent per shard.
    fn open_shards(config: &Config, shared: &SharedParts) -> Result<Vec<OpenedShard>> {
        if config.dir.join(SUPERBLOCK_FILE).exists() {
            // Catches both parameter drift and a shard-count change
            // (LoomError::ShardMismatch): rerouting sources over a
            // different shard count would misplace every source.
            Superblock::read_from(&config.dir)?.check_config(config)?;
        } else {
            // Refuse directories with flat log files or shard data but no
            // root superblock: they predate the durable format or lost
            // their superblock, and reinitializing would destroy data.
            for log in [LogId::Records, LogId::Chunks, LogId::Ts, LogId::Manifest] {
                if config.dir.join(log.file_name()).exists() {
                    return Err(LoomError::Corrupt(format!(
                        "{} exists but {SUPERBLOCK_FILE} does not; refusing to reinitialize",
                        log.file_name()
                    )));
                }
            }
            if config
                .dir
                .join(shard_dir_name(0))
                .join(SUPERBLOCK_FILE)
                .exists()
            {
                return Err(LoomError::Corrupt(format!(
                    "{}/{SUPERBLOCK_FILE} exists but the root {SUPERBLOCK_FILE} does not; \
                     refusing to reinitialize",
                    shard_dir_name(0)
                )));
            }
            Superblock::of(config).write_to(&config.dir)?;
        }
        // A crash after the root superblock but before (some) shard
        // directories were created self-heals here: each shard dispatches
        // on its own superblock, so missing shards initialize fresh.
        let results: Vec<Result<_>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..config.shards)
                .map(|i| {
                    let cfg = shard_config(config, i);
                    s.spawn(move || Self::open_shard(cfg, shared))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(res) => res,
                    Err(_) => Err(LoomError::Internal(
                        "shard open thread panicked".to_string(),
                    )),
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Opens one shard (or the whole engine when `shards == 1`):
    /// dispatches on the shard directory's own superblock.
    fn open_shard(config: Config, shared: &SharedParts) -> Result<OpenedShard> {
        std::fs::create_dir_all(&config.dir)?;
        if config.dir.join(SUPERBLOCK_FILE).exists() {
            Self::reopen_shard(config, shared)
        } else {
            Self::open_fresh_shard(config, shared).map(|(inner, w)| (inner, w, None))
        }
    }

    /// Initializes a brand-new shard directory: superblock first, then an
    /// empty manifest, then the three logs.
    fn open_fresh_shard(config: Config, shared: &SharedParts) -> Result<(Arc<Inner>, ShardWriter)> {
        // Refuse directories that have log files but no superblock: they
        // predate the durable format (or lost their superblock), and
        // recreating the logs would silently destroy their data.
        for log in [LogId::Records, LogId::Chunks, LogId::Ts, LogId::Manifest] {
            if config.dir.join(log.file_name()).exists() {
                return Err(LoomError::Corrupt(format!(
                    "{} exists but {SUPERBLOCK_FILE} does not; refusing to reinitialize",
                    log.file_name()
                )));
            }
        }
        Superblock::of(&config).write_to(&config.dir)?;
        let manifest = Manifest::create(&config.dir)?;
        let obs = Obs::with_slow_log(config.slow_query_nanos, Arc::clone(&shared.slow));
        let health = Arc::new(HealthState::new());
        // All three logs report into one shared hybridlog metrics block
        // and degrade through one shared health cell.
        let opts = |block_size: usize| LogOptions {
            block_size,
            obs: Arc::clone(&obs.log),
            retry: config.io_retry,
            health: Arc::clone(&health),
        };
        let record = hybridlog::create_with(
            &config.dir.join(LogId::Records.file_name()),
            opts(config.block_size),
        )?;
        let chunk = hybridlog::create_with(
            &config.dir.join(LogId::Chunks.file_name()),
            opts(config.index_block_size),
        )?;
        let ts = hybridlog::create_with(
            &config.dir.join(LogId::Ts.file_name()),
            opts(config.ts_block_size),
        )?;
        let inner = Arc::new(Inner {
            config,
            clock: shared.clock.clone(),
            registry: Arc::clone(&shared.registry),
            registry_version: Arc::clone(&shared.registry_version),
            record_log: Arc::clone(record.shared()),
            chunk_log: Arc::clone(chunk.shared()),
            ts_log: Arc::clone(ts.shared()),
            stats: Arc::clone(&shared.stats),
            obs,
            manifest: Mutex::named("loom.manifest", manifest),
            health,
            scan_bufs: Default::default(),
            cold: RwLock::named("loom.cold", Arc::new(ColdSnap::default())),
            tier_lock: RwLock::named("loom.tier_lock", ()),
            compact_gate: Mutex::named("loom.compact_gate", ()),
        });
        let writer = ShardWriter::new(
            Arc::clone(&inner),
            record,
            chunk,
            ts,
            HashMap::new(),
            NIL_ADDR,
        );
        Ok((inner, writer))
    }

    /// Reopens an existing shard directory: validates the superblock
    /// against the shard config, merges the shard's manifest into the
    /// shared registry, then either takes the clean-shutdown fast path or
    /// runs a full recovery scan with torn-tail truncation and cross-log
    /// reconciliation.
    fn reopen_shard(
        config: Config,
        shared: &SharedParts,
    ) -> Result<(Arc<Inner>, ShardWriter, Option<RecoveryReport>)> {
        Superblock::read_from(&config.dir)?.check_config(&config)?;
        let mut manifest = Manifest::open(&config.dir)?;

        // Merge this shard's schema journal into the shared registry.
        // Restores carry explicit IDs and the registry tracks next-ID as
        // a max, so concurrent restores from sibling shards interleave
        // in any order with the same result.
        {
            let mut registry = shared.registry.write();
            for rec in manifest.records() {
                match rec {
                    ManifestRecord::SourceDef { id, name } => {
                        registry.restore_source(*id, name, false)?
                    }
                    ManifestRecord::SourceClosed { id } => registry.close_source(SourceId(*id))?,
                    ManifestRecord::IndexDef {
                        id,
                        source,
                        bounds,
                        desc,
                    } => registry.restore_index(
                        *id,
                        *source,
                        *desc,
                        ManifestRecord::spec_from_bounds(bounds)?,
                        false,
                    )?,
                    ManifestRecord::IndexClosed { id } => registry.close_index(IndexId(*id))?,
                    ManifestRecord::Reopened
                    | ManifestRecord::CleanShutdown(_)
                    | ManifestRecord::ChunksAged { .. }
                    | ManifestRecord::SlicePruned { .. } => {}
                }
            }
        }

        // A crash can land between superblock creation and log creation;
        // make sure all three log files exist before scanning them.
        for log in [LogId::Records, LogId::Chunks, LogId::Ts] {
            let path = config.dir.join(log.file_name());
            if !path.exists() {
                std::fs::File::create(&path)?.sync_all()?;
            }
        }

        // Fast path: the manifest ends with a clean-shutdown marker whose
        // tails are consistent with the files on disk. Anything else gets
        // the full scan.
        let clean = manifest
            .clean_shutdown()
            .filter(|s| s.validate(&config.dir, &config).is_ok())
            .cloned();
        // Rebuild the cold tier from the manifest before any log scan:
        // the record-log scan must read cold-owned chunks from their
        // segments. Dirty reopens deep-verify every cold frame (checksum
        // plus codec round trip); clean ones validate headers and frame
        // checksums only. This also sweeps orphan segment files (crash
        // before a commit) and leftover pruned slice directories (crash
        // before an unlink).
        let cold_snap =
            retention::open_cold_tier(&config.dir, manifest.records(), clean.is_none())?;
        let recovered = match clean {
            Some(s) => {
                let mut st = RecoveredState {
                    record_tail: s.record_tail,
                    chunk_tail: s.chunk_tail,
                    ts_tail: s.ts_tail,
                    last_seal: s.last_seal,
                    ..RecoveredState::default()
                };
                st.report.clean = true;
                for t in &s.sources {
                    st.sources.insert(
                        t.id,
                        SourceState {
                            prev: t.prev,
                            count: t.count,
                            last_mark: t.last_mark,
                        },
                    );
                }
                st
            }
            None => crate::durability::recover_dirty_with_cold(&config.dir, &config, &cold_snap)?,
        };

        // Resume the timeline: the clock must never hand out a timestamp
        // below one already durable, or the reopened instance would write
        // records that appear to predate existing ones. The last surviving
        // timestamp-index entry is a floor (the clean-shutdown seal covers
        // every record); dirty recovery raises it further below. The
        // shared clock resumes with `fetch_max`, so concurrent shard
        // reopens settle on the highest floor.
        let mut ts_floor = recovered.last_ts;
        if recovered.ts_tail >= TS_ENTRY_SIZE as u64 {
            use std::os::unix::fs::FileExt;
            let file = std::fs::File::open(config.dir.join(LogId::Ts.file_name()))?;
            let mut buf = [0u8; TS_ENTRY_SIZE];
            file.read_exact_at(&mut buf, recovered.ts_tail - TS_ENTRY_SIZE as u64)?;
            if let Ok(entry) = TsEntry::decode(&buf) {
                ts_floor = ts_floor.max(entry.ts);
            }
        }
        shared.clock.resume_at_least(ts_floor);

        // Invalidate the clean marker: if this process crashes from here
        // on, the next open must scan.
        manifest.append(ManifestRecord::Reopened)?;

        let obs = Obs::with_slow_log(config.slow_query_nanos, Arc::clone(&shared.slow));
        let health = Arc::new(HealthState::new());
        let opts = |block_size: usize| LogOptions {
            block_size,
            obs: Arc::clone(&obs.log),
            retry: config.io_retry,
            health: Arc::clone(&health),
        };
        let record = hybridlog::open_existing_with(
            &config.dir.join(LogId::Records.file_name()),
            opts(config.block_size),
            recovered.record_tail,
        )?;
        let chunk = hybridlog::open_existing_with(
            &config.dir.join(LogId::Chunks.file_name()),
            opts(config.index_block_size),
            recovered.chunk_tail,
        )?;
        let ts = hybridlog::open_existing_with(
            &config.dir.join(LogId::Ts.file_name()),
            opts(config.ts_block_size),
            recovered.ts_tail,
        )?;

        // Republish the recovered per-source read pointers and seed the
        // writer-private source state. Only sources homed in this shard
        // appear in its logs, so sibling shards never contend on the same
        // source entry.
        let mut writer_sources = HashMap::new();
        {
            let registry = shared.registry.read();
            for (id, s) in &recovered.sources {
                let Ok(entry) = registry.source(SourceId(*id)) else {
                    // A source the manifest does not know (its definition
                    // was lost with an unflushed manifest tail): its
                    // records stay scannable but the source is no longer
                    // addressable.
                    continue;
                };
                entry.shared.last_record.store(s.prev, Ordering::Release);
                entry.shared.records.store(s.count, Ordering::Release);
                writer_sources.insert(
                    *id,
                    SourceWriterState {
                        prev: s.prev,
                        count: s.count,
                        last_mark: s.last_mark,
                        shared: Arc::clone(&entry.shared),
                    },
                );
            }
        }

        let inner = Arc::new(Inner {
            config,
            clock: shared.clock.clone(),
            registry: Arc::clone(&shared.registry),
            registry_version: Arc::clone(&shared.registry_version),
            record_log: Arc::clone(record.shared()),
            chunk_log: Arc::clone(chunk.shared()),
            ts_log: Arc::clone(ts.shared()),
            stats: Arc::clone(&shared.stats),
            obs,
            manifest: Mutex::named("loom.manifest", manifest),
            health,
            scan_bufs: Default::default(),
            cold: RwLock::named("loom.cold", Arc::new(cold_snap)),
            tier_lock: RwLock::named("loom.tier_lock", ()),
            compact_gate: Mutex::named("loom.compact_gate", ()),
        });
        let mut writer = ShardWriter::new(
            Arc::clone(&inner),
            record,
            chunk,
            ts,
            writer_sources,
            recovered.last_seal,
        );
        let mut report = recovered.report.clone();
        if !report.clean {
            let (rebuilt, appended) = writer.apply_recovery(&recovered)?;
            report.summaries_rebuilt = rebuilt;
            report.seals_appended = appended;
        }
        inner.obs.engine.reopened(
            report.clean,
            report.duration_nanos,
            report.bytes_truncated(),
        );
        Ok((inner, writer, Some(report)))
    }

    /// The shard that owns `source`'s data, resolved by the stable
    /// routing hash.
    pub(crate) fn shard(&self, source: u32) -> &Inner {
        &self.inner.shards[shard_of(source, self.inner.shards.len())]
    }

    /// The manifest of the shard that owns `source`, for schema
    /// journaling.
    fn home_manifest(&self, source: u32) -> &Mutex<Manifest> {
        &self.shard(source).manifest
    }

    /// Registers a new source (Figure 9: `define_source`).
    ///
    /// The source is assigned a *home shard* by a stable hash of its ID;
    /// all its records, summaries, and timestamp marks live there.
    pub fn define_source(&self, name: &str) -> SourceId {
        let id = self.inner.registry.write().define_source(name);
        // Journaled best-effort: a failing manifest write surfaces on the
        // next fallible schema call or at close; the in-memory registry
        // stays usable either way.
        let _ = self
            .home_manifest(id.0)
            .lock()
            .append(ManifestRecord::SourceDef {
                id: id.0,
                name: name.to_string(),
            });
        self.inner.registry_version.bump();
        id
    }

    /// Closes a source (Figure 9: `close_source`); its data stays
    /// queryable but new pushes are rejected.
    ///
    /// # Errors
    ///
    /// [`LoomError::UnknownSource`] for an undefined id,
    /// [`LoomError::SourceClosed`] when already closed, and
    /// [`LoomError::Io`] if journaling the close fails.
    pub fn close_source(&self, id: SourceId) -> Result<()> {
        self.inner.registry.write().close_source(id)?;
        self.home_manifest(id.0)
            .lock()
            .append(ManifestRecord::SourceClosed { id: id.0 })?;
        self.inner.registry_version.bump();
        Ok(())
    }

    /// Defines an index over `source` using a value-extraction function
    /// and a histogram (Figure 9: `define_index`).
    ///
    /// The index covers only data arriving after its definition (§5.3);
    /// older chunks are not re-indexed. A closure-based index cannot be
    /// persisted as code, so after a reopen it is restored *closed*:
    /// summaries already in the chunk index keep serving queries, but new
    /// chunks are not indexed. Use [`Loom::define_index_desc`] for an
    /// index that survives a reopen in full.
    ///
    /// # Errors
    ///
    /// [`LoomError::UnknownSource`] / [`LoomError::SourceClosed`] for a
    /// missing or closed source, [`LoomError::InvalidHistogram`] for a
    /// malformed spec, and [`LoomError::Io`] if journaling fails.
    pub fn define_index(
        &self,
        source: SourceId,
        extractor: ValueFn,
        spec: HistogramSpec,
    ) -> Result<IndexId> {
        let bounds = spec.bounds().to_vec();
        let id = self
            .inner
            .registry
            .write()
            .define_index(source, extractor, spec)?;
        // An index is journaled in its source's home shard: the shard
        // whose chunks it summarizes.
        self.home_manifest(source.0)
            .lock()
            .append(ManifestRecord::IndexDef {
                id: id.0,
                source,
                bounds,
                desc: None,
            })?;
        self.inner.registry_version.bump();
        Ok(id)
    }

    /// [`Loom::define_index`] with a declarative extractor instead of a
    /// closure.
    ///
    /// The descriptor is journaled in the manifest, so after a reopen the
    /// extraction function is rebuilt and the index keeps covering new
    /// chunks — the durable counterpart to closure-based indexes.
    ///
    /// # Errors
    ///
    /// As [`Loom::define_index`], plus
    /// [`LoomError::ExtractorOutOfBounds`] when the descriptor reads
    /// past the maximum record payload.
    pub fn define_index_desc(
        &self,
        source: SourceId,
        desc: ExtractorDesc,
        spec: HistogramSpec,
    ) -> Result<IndexId> {
        desc.validate_for_payload(self.inner.config.max_record_payload())?;
        let bounds = spec.bounds().to_vec();
        let id = self.inner.registry.write().define_index_full(
            source,
            desc.to_fn(),
            Some(desc),
            spec,
        )?;
        self.home_manifest(source.0)
            .lock()
            .append(ManifestRecord::IndexDef {
                id: id.0,
                source,
                bounds,
                desc: Some(desc),
            })?;
        self.inner.registry_version.bump();
        Ok(id)
    }

    /// Closes an index (Figure 9: `close_index`); it stops being
    /// maintained for new chunks.
    ///
    /// Statistics the index accumulated for the *currently active* chunk
    /// are discarded (the index no longer appears in that chunk's
    /// summary); call [`LoomWriter::seal_active_chunk`] first when those
    /// records must stay reachable through this index.
    ///
    /// # Errors
    ///
    /// [`LoomError::UnknownIndex`] for an undefined or already-closed
    /// index, and [`LoomError::Io`] if journaling the close fails.
    pub fn close_index(&self, id: IndexId) -> Result<()> {
        let source = {
            let mut registry = self.inner.registry.write();
            let source = registry.index(id)?.source;
            registry.close_index(id)?;
            source
        };
        self.home_manifest(source.0)
            .lock()
            .append(ManifestRecord::IndexClosed { id: id.0 })?;
        self.inner.registry_version.bump();
        Ok(())
    }

    /// The report from reopening an existing data directory, or `None`
    /// when this instance initialized a fresh one.
    ///
    /// On a multi-shard engine this is the merge of the per-shard
    /// reports: clean only if every shard reopened clean, counters
    /// summed, duration the slowest shard (they recover in parallel).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.inner.recovery.lock().clone()
    }

    /// All defined sources as `(id, name, closed)`, sorted by ID.
    ///
    /// After a reopen this reflects the schema rebuilt from the manifest,
    /// so callers can re-resolve names without re-defining sources.
    pub fn sources(&self) -> Vec<(SourceId, String, bool)> {
        let registry = self.inner.registry.read();
        let mut v: Vec<_> = registry
            .sources()
            .map(|(id, e)| (id, e.name.clone(), e.closed))
            .collect();
        v.sort_by_key(|(id, _, _)| id.0);
        v
    }

    /// The open indexes defined over `source`, sorted by ID.
    pub fn indexes_of(&self, source: SourceId) -> Vec<IndexId> {
        self.inner
            .registry
            .read()
            .indexes_of(source)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// The instance's clock; query time ranges use its timeline.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Current time on the instance's internal timeline.
    pub fn now(&self) -> u64 {
        self.inner.clock.now()
    }

    /// Cumulative ingest statistics, aggregated over all shards.
    pub fn ingest_stats(&self) -> &IngestStats {
        &self.inner.stats
    }

    /// The number of shards this engine runs with (`1` = single-funnel).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The home shard of `source`: the shard ordinal its data routes to.
    pub fn home_shard(&self, source: SourceId) -> usize {
        shard_of(source.0, self.inner.shards.len())
    }

    /// The instance's current health state — the *worst* across shards.
    ///
    /// `Healthy` in normal operation; `Degraded` while a background
    /// flusher retries a transient I/O error; terminal `ReadOnly` once a
    /// flusher exhausted its retry budget (see
    /// [`Config::io_retry`](crate::Config)), after which
    /// [`LoomWriter::push`] to that shard fails fast with
    /// [`LoomError::Degraded`] while all flushed data stays queryable.
    /// On a multi-shard engine a degraded shard only rejects its own
    /// sources; use [`Loom::shard_health`] for the per-shard view.
    pub fn health(&self) -> EngineHealth {
        let mut worst = EngineHealth::Healthy;
        for shard in &self.inner.shards {
            let h = shard.health.current();
            if health_severity(&h) > health_severity(&worst) {
                worst = h;
            }
        }
        worst
    }

    /// Per-shard health, indexed by shard ordinal.
    pub fn shard_health(&self) -> Vec<EngineHealth> {
        self.inner
            .shards
            .iter()
            .map(|s| s.health.current())
            .collect()
    }

    /// A point-in-time copy of every engine self-observability metric:
    /// hybridlog, write-path, index, and query-layer counters plus flush
    /// and query latency histograms.
    ///
    /// On a multi-shard engine the scalar counters and histograms are
    /// summed across shards (existing metric names keep their meaning)
    /// and [`MetricsSnapshot::shards`] carries a per-shard headline
    /// rollup. Counters are monotone, so two snapshots can be subtracted
    /// to get rates. Without the `self-obs` cargo feature all values are
    /// zero.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if self.inner.shards.len() == 1 {
            let mut snap = self.inner.shards[0].obs.snapshot();
            snap.net = self.inner.net.snapshot();
            return snap;
        }
        let mut merged = MetricsSnapshot::default();
        let mut rollups = Vec::with_capacity(self.inner.shards.len());
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let snap = shard.obs.snapshot();
            rollups.push(snap.rollup(i as u64));
            merged.merge(&snap);
        }
        merged.shards = rollups;
        // Network counters are engine-wide (a connection is not owned by
        // a shard), so they are injected after the shard merge rather
        // than summed per shard.
        merged.net = self.inner.net.snapshot();
        merged
    }

    /// The engine-wide network-service counters, for a network front-end
    /// (such as `loomd --listen`) to increment. The counters land in
    /// [`Loom::metrics_snapshot`] under the `loom_net_*` names.
    pub fn net_obs(&self) -> Arc<crate::obs::NetObs> {
        Arc::clone(&self.inner.net)
    }

    /// The full (unmerged) metrics snapshot of every shard, indexed by
    /// shard ordinal. One element on a single-funnel engine.
    pub fn shard_metrics(&self) -> Vec<MetricsSnapshot> {
        self.inner.shards.iter().map(|s| s.obs.snapshot()).collect()
    }

    /// The retained slow-query traces, oldest first.
    ///
    /// Queries slower than [`Config::slow_query_nanos`] leave a
    /// structured trace here; the ring is shared across shards and keeps
    /// the most recent [`Config::slow_query_log`] of them in one global
    /// arrival order.
    ///
    /// [`Config::slow_query_nanos`]: crate::Config::slow_query_nanos
    /// [`Config::slow_query_log`]: crate::Config::slow_query_log
    pub fn recent_slow_queries(&self) -> Vec<SlowQueryTrace> {
        self.inner.shards[0].obs.recent_slow_queries()
    }

    /// Runs one synchronous retention round over every shard and sums
    /// the per-shard reports: sealed, durable chunks older than
    /// [`RetentionConfig::cold_after`](crate::RetentionConfig) move into
    /// compressed cold segments, and cold slices past `drop_after` are
    /// dropped. A no-op returning zeros when retention is disabled.
    /// Every shard is attempted even after a failure; the first error is
    /// returned (that shard is left degraded and stops compacting).
    ///
    /// # Errors
    ///
    /// [`LoomError::Io`] when writing or syncing a cold segment fails,
    /// and [`LoomError::Corrupt`] if a chunk read back for compression
    /// fails validation.
    pub fn compact(&self) -> Result<CompactionReport> {
        let mut total = CompactionReport::default();
        let mut first_err = None;
        for shard in &self.inner.shards {
            match shard.compact_round() {
                Ok(r) => {
                    total.chunks_aged += r.chunks_aged;
                    total.slices_pruned += r.slices_pruned;
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Per-shard hot/cold tier breakdown, indexed by shard ordinal: how
    /// many sealed chunks each tier owns and the cold tier's compressed
    /// footprint. One element on a single-funnel engine.
    pub fn tier_stats(&self) -> Vec<TierStats> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let cold = shard.cold.read().tier_stats();
                let chunk_size = shard.config.chunk_size as u64;
                let sealed = shard.record_log.watermark() / chunk_size;
                let hot_chunks = sealed.saturating_sub(cold.chunks + cold.pruned_chunks);
                TierStats {
                    shard: i,
                    hot_chunks,
                    hot_bytes: hot_chunks * chunk_size,
                    cold,
                }
            })
            .collect()
    }

    /// The retention policy this engine was opened with.
    pub fn retention_policy(&self) -> &crate::config::RetentionConfig {
        &self.inner.config.retention
    }

    /// Current memory footprint of the staging blocks, in bytes: each
    /// shard stages two blocks per log.
    pub fn memory_budget(&self) -> usize {
        self.inner.shards.len()
            * 2
            * (self.inner.config.block_size
                + self.inner.config.index_block_size
                + self.inner.config.ts_block_size)
    }
}

impl LoomWriter {
    /// Writes one record from `source` into Loom (Figure 9: `push`).
    ///
    /// The record is appended to the source's home shard and the record's
    /// log address within that shard is returned. The record is
    /// immediately visible to queries (the watermark is published per
    /// push; see also [`LoomWriter::sync`]).
    ///
    /// When the home shard is in degraded read-only mode (a background
    /// flusher exhausted its I/O retry budget), `push` fails fast with
    /// [`LoomError::Degraded`]; flushed data stays queryable and sources
    /// homed in other shards keep ingesting. Under the
    /// [`OverloadPolicy::DropNewest`] backpressure policy a record that
    /// would stall on the flusher is dropped and
    /// [`NIL_ADDR`] returned instead of an
    /// address; drops are counted in the `ingest_drops` metric.
    ///
    /// # Errors
    ///
    /// [`LoomError::UnknownSource`] / [`LoomError::SourceClosed`] for a
    /// missing or closed source, [`LoomError::RecordTooLarge`] when the
    /// payload exceeds the chunk budget, [`LoomError::Degraded`] in
    /// read-only mode, and [`LoomError::Overloaded`] under the
    /// fail-fast backpressure policy.
    pub fn push(&mut self, source: SourceId, payload: &[u8]) -> Result<u64> {
        let shard = shard_of(source.0, self.shards.len());
        self.shards[shard].push(source, payload)
    }

    /// Runs `f` over every shard, attempting all shards even after a
    /// failure; the first error wins.
    fn each_shard(&mut self, mut f: impl FnMut(&mut ShardWriter) -> Result<()>) -> Result<()> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Err(e) = f(shard) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Forces queryability of all pushed records (Figure 9: `sync`).
    ///
    /// `push` already publishes each record, so `sync` additionally forces
    /// every shard's staged tail to persistent storage, bounding loss on
    /// crash. A per-shard failure does not stop the barrier: all shards
    /// are synced and the first error is returned.
    ///
    /// # Errors
    ///
    /// [`LoomError::Degraded`] when a shard is read-only, and
    /// [`LoomError::Io`] when a flush fails.
    pub fn sync(&mut self) -> Result<()> {
        self.each_shard(ShardWriter::sync)
    }

    /// [`LoomWriter::sync`] plus an fdatasync of each log that changed,
    /// so the synced prefix survives an OS crash or power loss, not just
    /// a process crash. Markedly more expensive than `sync` — it waits on
    /// real disk writeback — so it is meant for checkpoints and shutdown,
    /// not the per-batch path. [`LoomWriter::close`] syncs durably before
    /// writing the clean-shutdown markers.
    ///
    /// # Errors
    ///
    /// As [`LoomWriter::sync`]: [`LoomError::Degraded`] or
    /// [`LoomError::Io`] (including fdatasync failures).
    pub fn sync_durable(&mut self) -> Result<()> {
        self.each_shard(ShardWriter::sync_durable)
    }

    /// Pads and seals the active chunk of every shard even if it is not
    /// full.
    ///
    /// Useful before shutdown or when a workload phase ends: it moves
    /// each shard's active-chunk summary into its chunk index so
    /// subsequent queries can use it.
    ///
    /// # Errors
    ///
    /// [`LoomError::Degraded`] when a shard is read-only, and
    /// [`LoomError::Io`] when writing the seal padding fails.
    pub fn seal_active_chunk(&mut self) -> Result<()> {
        self.each_shard(ShardWriter::seal_active_chunk)
    }

    /// Gracefully shuts the writer down: seals each shard's active chunk,
    /// flushes all logs, and writes a clean-shutdown marker into each
    /// shard's manifest so the next [`Loom::open`] takes the scan-free
    /// fast path. All shards are closed even if one fails; the first
    /// error is returned.
    ///
    /// Dropping the writer does the same on a best-effort basis; `close`
    /// surfaces the errors.
    ///
    /// # Errors
    ///
    /// [`LoomError::Io`] when a final flush, fdatasync, or
    /// clean-shutdown marker write fails, and [`LoomError::Degraded`]
    /// for shards already read-only; the affected shard recovers on the
    /// next open.
    pub fn close(mut self) -> Result<()> {
        self.each_shard(ShardWriter::close_inner)
    }

    /// Abandons the writer the way a crash would: nothing is sealed or
    /// flushed, and no clean-shutdown marker is written, so only bytes the
    /// flushers already wrote survive. The next open runs recovery on
    /// every shard. Test-support API for exercising the recovery path.
    pub fn simulate_crash(mut self) {
        for shard in &mut self.shards {
            shard.simulate_crash_in_place();
        }
    }

    /// The shared handle, for convenience.
    pub fn handle(&self) -> Loom {
        Loom {
            inner: Arc::clone(&self.engine),
        }
    }
}

impl ShardWriter {
    /// Assembles a shard writer around freshly opened hybrid-log writers.
    fn new(
        inner: Arc<Inner>,
        record: hybridlog::Writer,
        chunk: hybridlog::Writer,
        ts: hybridlog::Writer,
        sources: HashMap<u32, SourceWriterState>,
        last_seal: u64,
    ) -> ShardWriter {
        ShardWriter {
            inner,
            record,
            chunk,
            ts,
            sources,
            cache: WriterCache {
                version: u64::MAX,
                sources: HashMap::new(),
            },
            active: ActiveChunk::new(),
            last_seal,
            zeros: Vec::new(),
            closed: false,
            crashed: false,
        }
    }

    /// Applies the repairs scheduled by a dirty recovery scan: re-seals
    /// surviving summaries whose seal entries were torn off, rebuilds
    /// summaries for complete chunks that lost theirs, and replays the
    /// partial tail chunk into the active-chunk accumulator. Returns
    /// `(summaries_rebuilt, seals_appended)`.
    fn apply_recovery(&mut self, recovered: &RecoveredState) -> Result<(u64, u64)> {
        self.refresh_cache_if_stale();
        let chunk_size = self.inner.config.chunk_size as u64;

        // Seal timestamps must stay monotone in the timestamp index, so
        // repairs are stamped with the latest surviving timestamp (or the
        // summary's own maximum, whichever is later).
        let mut seal_ts = recovered.last_ts;
        let mut appended = 0u64;
        for u in &recovered.unsealed_summaries {
            seal_ts = seal_ts.max(u.ts_max);
            let entry = TsEntry {
                kind: TsKind::ChunkSeal,
                source: 0,
                ts: seal_ts,
                target: u.summary_addr,
                prev: self.last_seal,
            };
            self.last_seal = self.ts.append(&entry.encode())?;
            appended += 1;
        }

        let mut rebuilt = 0u64;
        let mut buf = vec![0u8; chunk_size as usize];
        for &chunk_addr in &recovered.resummarize {
            self.inner.record_log.read_at(chunk_addr, &mut buf)?;
            let timer = Stopwatch::start();
            let mut summary =
                ChunkSummary::new(chunk_addr / chunk_size, chunk_addr, chunk_size as u32);
            for item in ChunkIter::new(&buf, chunk_addr) {
                let rec = item?;
                summary.observe_record(rec.header.source, rec.header.ts);
                if let Some(cached) = self.cache.sources.get(&rec.header.source) {
                    for idx in &cached.indexes {
                        if let Some(value) = (idx.extractor)(rec.payload) {
                            if let Some(bin) = idx.spec.bin_of(value) {
                                summary.observe_value(idx.id, bin as u32, value, rec.header.ts);
                            }
                        }
                    }
                }
            }
            let mut out = Vec::with_capacity(256);
            summary.encode(&mut out);
            let summary_addr = self.chunk.append(&out)?;
            self.inner
                .obs
                .engine
                .chunk_sealed(timer.elapsed_nanos(), out.len() as u64);
            seal_ts = seal_ts.max(summary.ts_max);
            let entry = TsEntry {
                kind: TsKind::ChunkSeal,
                source: 0,
                ts: seal_ts,
                target: summary_addr,
                prev: self.last_seal,
            };
            self.last_seal = self.ts.append(&entry.encode())?;
            rebuilt += 1;
        }

        // Replay the partial tail chunk into the active-chunk state so the
        // next seal's summary covers the pre-crash records too.
        let tail = self.record.tail();
        let within = tail % chunk_size;
        if within > 0 {
            let base = tail - within;
            let mut tail_buf = vec![0u8; within as usize];
            self.inner.record_log.read_at(base, &mut tail_buf)?;
            for item in ChunkIter::new(&tail_buf, base) {
                let rec = item?;
                self.active.observe(rec.header.source, rec.header.ts);
                if let Some(cached) = self.cache.sources.get_mut(&rec.header.source) {
                    for idx in &mut cached.indexes {
                        if let Some(value) = (idx.extractor)(rec.payload) {
                            if let Some(bin) = idx.spec.bin_of(value) {
                                match &mut idx.bins[bin] {
                                    Some(s) => s.observe(value, rec.header.ts),
                                    slot @ None => *slot = Some(BinStats::of(value, rec.header.ts)),
                                }
                            }
                        }
                    }
                }
            }
        }

        // Records in the replayed tail chunk may postdate every surviving
        // timestamp-index entry; lift the clock past them too.
        self.inner
            .clock
            .resume_at_least(seal_ts.max(self.active.ts_max));

        // Make the repairs durable before handing out the writer.
        self.record.publish();
        self.chunk.publish();
        self.ts.publish();
        self.record.flush()?;
        self.chunk.flush()?;
        self.ts.flush()?;
        Ok((rebuilt, appended))
    }

    /// Writes one record from `source` into this shard.
    fn push(&mut self, source: SourceId, payload: &[u8]) -> Result<u64> {
        if self.inner.health.is_read_only() {
            return Err(self.inner.degraded_error());
        }
        self.refresh_cache_if_stale();
        let max = self.inner.config.max_record_payload();
        if payload.len() > max {
            return Err(LoomError::RecordTooLarge {
                size: payload.len(),
                max,
            });
        }
        match self.cache.sources.get(&source.0) {
            None => return Err(LoomError::UnknownSource(source.0)),
            Some(c) if c.closed => return Err(LoomError::SourceClosed(source.0)),
            Some(_) => {}
        }

        let ts = self.inner.clock.now();
        let entry_size = RECORD_HEADER_SIZE + payload.len();
        let chunk_size = self.inner.config.chunk_size as u64;
        let within = self.record.tail() % chunk_size;
        let needs_pad = within as usize + entry_size > chunk_size as usize;
        let pad = if needs_pad {
            (chunk_size - within) as usize
        } else {
            0
        };

        // Backpressure policy: if admitting this record (plus any chunk
        // padding) would stall on the record-log flusher, apply the
        // configured overload policy before any bytes are written. The
        // check covers the record log only — the far smaller index logs
        // keep the original blocking behavior.
        if self.inner.config.overload != OverloadPolicy::Block
            && self.record.append_would_wait(pad + entry_size)
        {
            match self.inner.config.overload {
                OverloadPolicy::DropNewest => {
                    self.inner.obs.engine.ingest_drop();
                    return Ok(NIL_ADDR);
                }
                OverloadPolicy::ErrorFast => return Err(LoomError::Overloaded),
                OverloadPolicy::Block => unreachable!(),
            }
        }

        // Pad and seal the active chunk if the record does not fit.
        let mut sealed = needs_pad;
        if needs_pad {
            Self::write_padding(&mut self.record, &mut self.zeros, pad)?;
            self.inner.stats.add_pad_bytes(pad as u64);
            self.seal_chunk(ts)?;
        }

        // Look up — lazily creating — the writer-side source state, and
        // append the record.
        let (prev, count, last_mark) = {
            let state = match self.sources.entry(source.0) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let shared = Arc::clone(&self.inner.registry.read().source(source)?.shared);
                    v.insert(SourceWriterState {
                        prev: NIL_ADDR,
                        count: 0,
                        last_mark: NIL_ADDR,
                        shared,
                    })
                }
            };
            let prev = state.prev;
            state.count += 1;
            (prev, state.count, state.last_mark)
        };
        let header = RecordHeader {
            source: source.0,
            len: payload.len() as u32,
            prev,
            ts,
        };
        let addr = self.record.append(&header.encode(payload))?;
        self.record.append(payload)?;

        // Update the active chunk summary.
        self.active.observe(source.0, ts);
        {
            // Validated non-absent at the top of push; the cache is only
            // rebuilt by refresh_cache_if_stale, which cannot run between
            // there and here.
            let cached = self.cache.sources.get_mut(&source.0).ok_or_else(|| {
                LoomError::Internal(format!(
                    "cached schema for source {} vanished mid-push",
                    source.0
                ))
            })?;
            for idx in &mut cached.indexes {
                if let Some(value) = (idx.extractor)(payload) {
                    if let Some(bin) = idx.spec.bin_of(value) {
                        match &mut idx.bins[bin] {
                            Some(s) => s.observe(value, ts),
                            slot @ None => *slot = Some(BinStats::of(value, ts)),
                        }
                    }
                }
            }
        }

        // Seal immediately when the record exactly filled the chunk, so
        // the active region visible to queries is always the tail chunk.
        if self.record.tail().is_multiple_of(chunk_size) {
            self.seal_chunk(ts)?;
            sealed = true;
        }

        // Periodic record mark in the timestamp index.
        let mut new_mark = None;
        if (count - 1) % self.inner.config.ts_mark_period == 0 {
            let entry = TsEntry {
                kind: TsKind::RecordMark,
                source: source.0,
                ts,
                target: addr,
                prev: last_mark,
            };
            new_mark = Some(self.ts.append(&entry.encode())?);
            self.inner.stats.inc_ts_entries();
        }

        // Publish: record log, chunk index, timestamp index — in that
        // order (§5.4) — then the source's last-record pointer.
        self.record.publish();
        self.chunk.publish();
        self.ts.publish();
        // Created by the entry() above; nothing between removes entries.
        let state = self.sources.get_mut(&source.0).ok_or_else(|| {
            LoomError::Internal(format!(
                "writer state for source {} vanished mid-push",
                source.0
            ))
        })?;
        state.prev = addr;
        if let Some(mark) = new_mark {
            state.last_mark = mark;
        }
        state.shared.last_record.store(addr, Ordering::Release);
        state.shared.records.store(count, Ordering::Release);
        self.inner.stats.inc_records(entry_size as u64);

        // Test hook: age eligible chunks synchronously on every seal so
        // each query path exercises a populated cold tier. compact_round
        // itself no-ops when retention is disabled; a failed round
        // degrades the shard but never fails the push that sealed.
        if sealed && self.inner.config.retention.compact_on_seal {
            let _ = self.inner.compact_round();
        }
        Ok(addr)
    }

    /// Publishes and flushes this shard's three logs.
    fn sync(&mut self) -> Result<()> {
        self.record.publish();
        self.chunk.publish();
        self.ts.publish();
        self.record.flush()?;
        self.chunk.flush()?;
        self.ts.flush()?;
        Ok(())
    }

    /// [`ShardWriter::sync`] with fdatasync.
    fn sync_durable(&mut self) -> Result<()> {
        self.record.publish();
        self.chunk.publish();
        self.ts.publish();
        self.record.flush_durable()?;
        self.chunk.flush_durable()?;
        self.ts.flush_durable()?;
        Ok(())
    }

    /// Pads and seals this shard's active chunk even if it is not full.
    fn seal_active_chunk(&mut self) -> Result<()> {
        if self.active.is_empty() {
            return Ok(());
        }
        let chunk_size = self.inner.config.chunk_size as u64;
        let within = self.record.tail() % chunk_size;
        if within != 0 {
            let pad = (chunk_size - within) as usize;
            Self::write_padding(&mut self.record, &mut self.zeros, pad)?;
            self.inner.stats.add_pad_bytes(pad as u64);
        }
        let ts = self.inner.clock.now();
        self.seal_chunk(ts)?;
        self.record.publish();
        self.chunk.publish();
        self.ts.publish();
        Ok(())
    }

    /// Writes a padding entry (or raw zeros) filling `pad` bytes.
    fn write_padding(
        record: &mut hybridlog::Writer,
        zeros: &mut Vec<u8>,
        pad: usize,
    ) -> Result<()> {
        if pad >= RECORD_HEADER_SIZE {
            let header = RecordHeader {
                source: SOURCE_PAD,
                len: (pad - RECORD_HEADER_SIZE) as u32,
                prev: NIL_ADDR,
                ts: 0,
            };
            // The pad payload must be zeroed: staging blocks are recycled
            // without clearing, and a chunk scan relies on zeroed bytes
            // after the pad only when the pad is shorter than a header.
            // Zeroing unconditionally keeps on-disk chunks deterministic,
            // and the header checksum covers the zeroed payload.
            zeros.resize(pad - RECORD_HEADER_SIZE, 0);
            record.append(&header.encode(zeros))?;
            record.append(zeros)?;
        } else {
            zeros.resize(pad, 0);
            record.append(zeros)?;
        }
        Ok(())
    }

    /// Finalizes the active chunk's summary, appends it to the chunk
    /// index, and records the seal in the timestamp index.
    fn seal_chunk(&mut self, ts: u64) -> Result<()> {
        let chunk_size = self.inner.config.chunk_size as u64;
        debug_assert_eq!(self.record.tail() % chunk_size, 0);
        let chunk_end = self.record.tail();
        let chunk_addr = chunk_end - chunk_size;
        let chunk_seq = chunk_addr / chunk_size;

        let timer = Stopwatch::start();
        let mut summary = ChunkSummary::new(chunk_seq, chunk_addr, chunk_size as u32);
        summary.ts_min = self.active.ts_min;
        summary.ts_max = self.active.ts_max;
        for (source, count) in &self.active.sources {
            summary.sources.insert(*source, *count);
        }
        for cached in self.cache.sources.values_mut() {
            for idx in &mut cached.indexes {
                let mut bins = std::collections::BTreeMap::new();
                for (bin, stats) in idx.bins.iter_mut().enumerate() {
                    if let Some(s) = stats.take() {
                        bins.insert(bin as u32, s);
                    }
                }
                if !bins.is_empty() {
                    summary.indexes.insert(idx.id, bins);
                }
            }
        }
        self.active.reset();

        let mut buf = Vec::with_capacity(256);
        summary.encode(&mut buf);
        let summary_addr = self.chunk.append(&buf)?;
        self.inner
            .obs
            .engine
            .chunk_sealed(timer.elapsed_nanos(), buf.len() as u64);

        let entry = TsEntry {
            kind: TsKind::ChunkSeal,
            source: 0,
            ts,
            target: summary_addr,
            prev: self.last_seal,
        };
        self.last_seal = self.ts.append(&entry.encode())?;
        self.inner.stats.inc_chunks_sealed();
        self.inner.stats.inc_ts_entries();
        Ok(())
    }

    fn close_inner(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.seal_active_chunk()?;
        // Durable flush: the clean-shutdown marker below asserts the
        // tails it records are on disk, so they must survive more than
        // the page cache.
        self.record.flush_durable()?;
        self.chunk.flush_durable()?;
        self.ts.flush_durable()?;
        // One final retention round while everything is durable, so an
        // aggressive policy ages the freshly sealed tail before the
        // shutdown marker. Failures degrade the shard but must not block
        // the clean shutdown — the tier's commit point is the manifest
        // journal, not this pass.
        if self.inner.config.retention.enabled {
            let _ = self.inner.compact_round();
        }
        if let Some(k) = fault::check(fault::WRITER_CLOSE, "") {
            // Injected close failure: everything is flushed but the
            // clean-shutdown marker is never written, so the next open
            // must take the recovery path.
            return Err(LoomError::Io(k.to_io_error()));
        }
        let mut sources: Vec<SourceTail> = self
            .sources
            .iter()
            .map(|(id, s)| SourceTail {
                id: *id,
                prev: s.prev,
                count: s.count,
                last_mark: s.last_mark,
            })
            .collect();
        sources.sort_by_key(|s| s.id);
        let state = CleanShutdown {
            record_tail: self.record.tail(),
            chunk_tail: self.chunk.tail(),
            ts_tail: self.ts.tail(),
            last_seal: self.last_seal,
            sources,
        };
        self.inner
            .manifest
            .lock()
            .append(ManifestRecord::CleanShutdown(state))?;
        self.closed = true;
        Ok(())
    }

    /// Marks the shard crashed: logs stop flushing and the clean
    /// shutdown on drop is suppressed.
    fn simulate_crash_in_place(&mut self) {
        self.crashed = true;
        self.record.mark_crashed();
        self.chunk.mark_crashed();
        self.ts.mark_crashed();
    }

    /// Refreshes the schema cache when the registry version changed,
    /// carrying over in-progress bin accumulations for surviving indexes.
    ///
    /// The cache deliberately covers *every* source in the registry, not
    /// just those homed here: routing guarantees foreign sources are
    /// never pushed to this shard, and a full copy keeps cache rebuilds
    /// independent of the routing function.
    fn refresh_cache_if_stale(&mut self) {
        let version = self.inner.registry_version.get();
        if version == self.cache.version {
            return;
        }
        let registry = self.inner.registry.read();
        let mut old = std::mem::take(&mut self.cache.sources);
        let mut new_sources = HashMap::new();
        for (sid, entry) in registry.sources() {
            let mut old_source = old.remove(&sid.0);
            let mut indexes = Vec::new();
            for (iid, idx) in registry.indexes_of(sid) {
                let bins = old_source
                    .as_mut()
                    .and_then(|os| {
                        os.indexes
                            .iter_mut()
                            .find(|ci| ci.id == iid.0)
                            .map(|ci| std::mem::take(&mut ci.bins))
                    })
                    .filter(|b| b.len() == idx.spec.bin_count())
                    .unwrap_or_else(|| vec![None; idx.spec.bin_count()]);
                indexes.push(CachedIndex {
                    id: iid.0,
                    extractor: Arc::clone(&idx.extractor),
                    spec: Arc::clone(&idx.spec),
                    bins,
                });
            }
            new_sources.insert(
                sid.0,
                CachedSource {
                    closed: entry.closed,
                    indexes,
                },
            );
        }
        self.cache.sources = new_sources;
        self.cache.version = version;
    }
}

impl Drop for ShardWriter {
    fn drop(&mut self) {
        // A graceful drop is a clean shutdown: seal, flush, and write the
        // marker; ignore errors since drop cannot fail. A simulated crash
        // skips all of it.
        if !self.crashed {
            let _ = self.close_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let mut hit = vec![false; shards];
            for source in 0..1024u32 {
                let a = shard_of(source, shards);
                let b = shard_of(source, shards);
                assert_eq!(a, b, "routing must be deterministic");
                assert!(a < shards, "routing must stay in range");
                hit[a] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "1024 sources should touch all {shards} shards"
            );
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for source in [0u32, 1, 42, u32::MAX] {
            assert_eq!(shard_of(source, 1), 0);
        }
    }
}
