//! Common value-extraction functions for index definitions (§5.1).
//!
//! An index's `index_func` is an arbitrary closure over the record payload;
//! this module provides constructors for the overwhelmingly common case of
//! fixed-offset binary fields, as produced by telemetry sources emitting
//! packed structs.

use std::sync::Arc;

use crate::registry::ValueFn;

/// Extracts a little-endian `u64` at `offset` in the payload.
pub fn u64_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| {
        payload
            .get(offset..offset + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("slice of 8")) as f64)
    })
}

/// Extracts a little-endian `u32` at `offset` in the payload.
pub fn u32_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| {
        payload
            .get(offset..offset + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("slice of 4")) as f64)
    })
}

/// Extracts a little-endian `u16` at `offset` in the payload.
pub fn u16_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| {
        payload
            .get(offset..offset + 2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("slice of 2")) as f64)
    })
}

/// Extracts a little-endian `f64` at `offset` in the payload.
pub fn f64_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| {
        payload
            .get(offset..offset + 8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("slice of 8")))
    })
}

/// Maps every record to the constant `1.0`, turning the index into a pure
/// record counter (counts per chunk, usable for count aggregates).
pub fn count_all() -> ValueFn {
    Arc::new(|_: &[u8]| Some(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_extraction() {
        let f = u64_le_at(4);
        let mut payload = vec![0u8; 12];
        payload[4..12].copy_from_slice(&123_456u64.to_le_bytes());
        assert_eq!(f(&payload), Some(123_456.0));
        assert_eq!(f(&payload[..8]), None); // too short
    }

    #[test]
    fn u32_and_u16_extraction() {
        let mut payload = vec![0u8; 6];
        payload[0..4].copy_from_slice(&7u32.to_le_bytes());
        payload[4..6].copy_from_slice(&513u16.to_le_bytes());
        assert_eq!(u32_le_at(0)(&payload), Some(7.0));
        assert_eq!(u16_le_at(4)(&payload), Some(513.0));
        assert_eq!(u16_le_at(5)(&payload), None);
    }

    #[test]
    fn f64_extraction() {
        let payload = 2.5f64.to_le_bytes();
        assert_eq!(f64_le_at(0)(&payload), Some(2.5));
    }

    #[test]
    fn count_all_is_constant() {
        let f = count_all();
        assert_eq!(f(b""), Some(1.0));
        assert_eq!(f(b"anything"), Some(1.0));
    }
}
