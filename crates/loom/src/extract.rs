//! Common value-extraction functions for index definitions (§5.1).
//!
//! An index's `index_func` is an arbitrary closure over the record payload;
//! this module provides constructors for the overwhelmingly common case of
//! fixed-offset binary fields, as produced by telemetry sources emitting
//! packed structs.

use std::sync::Arc;

use crate::error::{LoomError, Result};
use crate::registry::ValueFn;

/// A declarative, persistable description of a value extractor.
///
/// Index extractors are arbitrary closures and cannot be serialized; an
/// index defined through a descriptor instead records *what* to extract,
/// so the index can be rebuilt identically when a data directory is
/// reopened (see
/// [`Loom::define_index_desc`](crate::Loom::define_index_desc)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractorDesc {
    /// Little-endian `u64` at a byte offset ([`u64_le_at`]).
    U64Le(u32),
    /// Little-endian `u32` at a byte offset ([`u32_le_at`]).
    U32Le(u32),
    /// Little-endian `u16` at a byte offset ([`u16_le_at`]).
    U16Le(u32),
    /// Little-endian `f64` at a byte offset ([`f64_le_at`]).
    F64Le(u32),
    /// The constant `1.0` for every record ([`count_all`]).
    CountAll,
}

/// Size in bytes of an encoded [`ExtractorDesc`].
pub const EXTRACTOR_DESC_SIZE: usize = 5;

impl ExtractorDesc {
    /// The byte offset this descriptor reads at (`0` for [`CountAll`]).
    ///
    /// [`CountAll`]: ExtractorDesc::CountAll
    pub fn offset(&self) -> u32 {
        match *self {
            ExtractorDesc::U64Le(off)
            | ExtractorDesc::U32Le(off)
            | ExtractorDesc::U16Le(off)
            | ExtractorDesc::F64Le(off) => off,
            ExtractorDesc::CountAll => 0,
        }
    }

    /// Width of the extracted field in bytes (`0` for [`CountAll`]).
    ///
    /// [`CountAll`]: ExtractorDesc::CountAll
    pub fn width(&self) -> u32 {
        match *self {
            ExtractorDesc::U64Le(_) | ExtractorDesc::F64Le(_) => 8,
            ExtractorDesc::U32Le(_) => 4,
            ExtractorDesc::U16Le(_) => 2,
            ExtractorDesc::CountAll => 0,
        }
    }

    /// Rejects descriptors whose field ends past `max_payload`: such an
    /// extractor could never succeed on any record, so defining an index
    /// with it is a caller bug reported as
    /// [`LoomError::ExtractorOutOfBounds`] instead of an index that
    /// silently matches nothing.
    ///
    /// Payloads *shorter* than `offset + width` are still legal at push
    /// time (sources may emit variable-length records); those records
    /// simply extract no value.
    pub fn validate_for_payload(&self, max_payload: usize) -> Result<()> {
        let end = self.offset() as u64 + self.width() as u64;
        if end > max_payload as u64 {
            return Err(LoomError::ExtractorOutOfBounds {
                offset: self.offset(),
                width: self.width(),
                max_payload,
            });
        }
        Ok(())
    }

    /// Builds the closure this descriptor describes.
    pub fn to_fn(&self) -> ValueFn {
        match *self {
            ExtractorDesc::U64Le(off) => u64_le_at(off as usize),
            ExtractorDesc::U32Le(off) => u32_le_at(off as usize),
            ExtractorDesc::U16Le(off) => u16_le_at(off as usize),
            ExtractorDesc::F64Le(off) => f64_le_at(off as usize),
            ExtractorDesc::CountAll => count_all(),
        }
    }

    /// Serializes the descriptor (tag byte plus offset).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (tag, off) = match *self {
            ExtractorDesc::U64Le(off) => (1u8, off),
            ExtractorDesc::U32Le(off) => (2, off),
            ExtractorDesc::U16Le(off) => (3, off),
            ExtractorDesc::F64Le(off) => (4, off),
            ExtractorDesc::CountAll => (5, 0),
        };
        out.push(tag);
        out.extend_from_slice(&off.to_le_bytes());
    }

    /// Deserializes a descriptor from [`EXTRACTOR_DESC_SIZE`] bytes.
    pub fn decode(bytes: &[u8]) -> Result<ExtractorDesc> {
        if bytes.len() < EXTRACTOR_DESC_SIZE {
            return Err(LoomError::Corrupt("extractor descriptor truncated".into()));
        }
        let off = u32::from_le_bytes(bytes[1..5].try_into().expect("len 4"));
        Ok(match bytes[0] {
            1 => ExtractorDesc::U64Le(off),
            2 => ExtractorDesc::U32Le(off),
            3 => ExtractorDesc::U16Le(off),
            4 => ExtractorDesc::F64Le(off),
            5 => ExtractorDesc::CountAll,
            t => {
                return Err(LoomError::Corrupt(format!(
                    "unknown extractor descriptor tag {t}"
                )))
            }
        })
    }
}

/// Reads a little-endian `u64` at `offset` in `payload`, or `None` when
/// the payload is too short. Alignment-safe: the bytes are copied into a
/// stack array, never reinterpreted in place.
///
/// These helpers are the single decode routine shared by the closure
/// constructors below and the columnar batch decoder
/// (`query::columnar`), so both paths extract bit-identical values.
#[inline(always)]
pub fn read_u64_le(payload: &[u8], offset: usize) -> Option<u64> {
    let bytes = payload.get(offset..)?.first_chunk::<8>()?;
    Some(u64::from_le_bytes(*bytes))
}

/// Reads a little-endian `u32` at `offset` in `payload` ([`read_u64_le`]).
#[inline(always)]
pub fn read_u32_le(payload: &[u8], offset: usize) -> Option<u32> {
    let bytes = payload.get(offset..)?.first_chunk::<4>()?;
    Some(u32::from_le_bytes(*bytes))
}

/// Reads a little-endian `u16` at `offset` in `payload` ([`read_u64_le`]).
#[inline(always)]
pub fn read_u16_le(payload: &[u8], offset: usize) -> Option<u16> {
    let bytes = payload.get(offset..)?.first_chunk::<2>()?;
    Some(u16::from_le_bytes(*bytes))
}

/// Reads a little-endian `f64` at `offset` in `payload` ([`read_u64_le`]).
#[inline(always)]
pub fn read_f64_le(payload: &[u8], offset: usize) -> Option<f64> {
    read_u64_le(payload, offset).map(f64::from_bits)
}

/// Extracts a little-endian `u64` at `offset` in the payload.
pub fn u64_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| read_u64_le(payload, offset).map(|v| v as f64))
}

/// Extracts a little-endian `u32` at `offset` in the payload.
pub fn u32_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| read_u32_le(payload, offset).map(|v| v as f64))
}

/// Extracts a little-endian `u16` at `offset` in the payload.
pub fn u16_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| read_u16_le(payload, offset).map(|v| v as f64))
}

/// Extracts a little-endian `f64` at `offset` in the payload.
pub fn f64_le_at(offset: usize) -> ValueFn {
    Arc::new(move |payload: &[u8]| read_f64_le(payload, offset))
}

/// Maps every record to the constant `1.0`, turning the index into a pure
/// record counter (counts per chunk, usable for count aggregates).
pub fn count_all() -> ValueFn {
    Arc::new(|_: &[u8]| Some(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_extraction() {
        let f = u64_le_at(4);
        let mut payload = vec![0u8; 12];
        payload[4..12].copy_from_slice(&123_456u64.to_le_bytes());
        assert_eq!(f(&payload), Some(123_456.0));
        assert_eq!(f(&payload[..8]), None); // too short
    }

    #[test]
    fn u32_and_u16_extraction() {
        let mut payload = vec![0u8; 6];
        payload[0..4].copy_from_slice(&7u32.to_le_bytes());
        payload[4..6].copy_from_slice(&513u16.to_le_bytes());
        assert_eq!(u32_le_at(0)(&payload), Some(7.0));
        assert_eq!(u16_le_at(4)(&payload), Some(513.0));
        assert_eq!(u16_le_at(5)(&payload), None);
    }

    #[test]
    fn f64_extraction() {
        let payload = 2.5f64.to_le_bytes();
        assert_eq!(f64_le_at(0)(&payload), Some(2.5));
    }

    #[test]
    fn count_all_is_constant() {
        let f = count_all();
        assert_eq!(f(b""), Some(1.0));
        assert_eq!(f(b"anything"), Some(1.0));
    }

    #[test]
    fn descriptor_round_trips_and_matches_closures() {
        let mut payload = vec![0u8; 16];
        payload[0..8].copy_from_slice(&99u64.to_le_bytes());
        payload[8..16].copy_from_slice(&1.25f64.to_le_bytes());
        for desc in [
            ExtractorDesc::U64Le(0),
            ExtractorDesc::U32Le(0),
            ExtractorDesc::U16Le(0),
            ExtractorDesc::F64Le(8),
            ExtractorDesc::CountAll,
        ] {
            let mut buf = Vec::new();
            desc.encode(&mut buf);
            assert_eq!(buf.len(), EXTRACTOR_DESC_SIZE);
            assert_eq!(ExtractorDesc::decode(&buf).unwrap(), desc);
            assert_eq!(desc.to_fn()(&payload), desc.to_fn()(&payload));
        }
        assert_eq!(ExtractorDesc::F64Le(8).to_fn()(&payload), Some(1.25));
        assert_eq!(ExtractorDesc::U64Le(0).to_fn()(&payload), Some(99.0));
    }

    #[test]
    fn descriptor_decode_rejects_garbage() {
        assert!(ExtractorDesc::decode(&[9, 0, 0, 0, 0]).is_err());
        assert!(ExtractorDesc::decode(&[1, 0]).is_err());
    }

    #[test]
    fn shared_readers_match_from_le_bytes() {
        let mut payload = vec![0u8; 14];
        payload[0..8].copy_from_slice(&0xdead_beef_1234_5678u64.to_le_bytes());
        payload[8..12].copy_from_slice(&0xcafe_babeu32.to_le_bytes());
        payload[12..14].copy_from_slice(&513u16.to_le_bytes());
        assert_eq!(read_u64_le(&payload, 0), Some(0xdead_beef_1234_5678));
        assert_eq!(read_u32_le(&payload, 8), Some(0xcafe_babe));
        assert_eq!(read_u16_le(&payload, 12), Some(513));
        // Too short, offset past the end, and offset + width overflowing
        // the slice all yield None instead of panicking.
        assert_eq!(read_u64_le(&payload, 7), None);
        assert_eq!(read_u32_le(&payload, 14), None);
        assert_eq!(read_u16_le(&payload, usize::MAX), None);
        let bits = (-2.5f64).to_le_bytes();
        assert_eq!(read_f64_le(&bits, 0), Some(-2.5));
        // NaN payload bytes round-trip exactly (bit pattern preserved).
        let nan_bits = u64::MAX.to_le_bytes();
        assert_eq!(read_f64_le(&nan_bits, 0).map(f64::to_bits), Some(u64::MAX));
    }

    #[test]
    fn validate_for_payload_rejects_unreachable_fields() {
        use crate::error::LoomError;
        assert!(ExtractorDesc::U64Le(0).validate_for_payload(8).is_ok());
        assert!(ExtractorDesc::U64Le(1).validate_for_payload(8).is_err());
        assert!(ExtractorDesc::U16Le(6).validate_for_payload(8).is_ok());
        assert!(ExtractorDesc::CountAll.validate_for_payload(0).is_ok());
        match ExtractorDesc::F64Le(u32::MAX).validate_for_payload(4096) {
            Err(LoomError::ExtractorOutOfBounds {
                offset,
                width,
                max_payload,
            }) => {
                assert_eq!(offset, u32::MAX);
                assert_eq!(width, 8);
                assert_eq!(max_payload, 4096);
            }
            other => panic!("expected ExtractorOutOfBounds, got {other:?}"),
        }
    }
}
