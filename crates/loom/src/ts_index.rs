//! The timestamp index: a coarse-grained, append-only timeline (§4.2).
//!
//! Loom writes a fixed-size entry into the timestamp index for two kinds
//! of events: (i) periodically, when a source pushes a record, and
//! (ii) whenever Loom fills a chunk and appends its summary to the chunk
//! index. Entries carry the event timestamp, a pointer into the record log
//! or chunk index, and a back pointer to the previous entry of the same
//! stream (same source's marks, or the chain of chunk seals).
//!
//! Because entries are fixed-size (40 bytes) and timestamps increase
//! monotonically, "find the latest event at or before time t" is a binary
//! search over the index — no tree maintenance on the write path.
//!
//! Each entry is self-checksummed: bytes `[32..36]` hold a CRC32 over the
//! first 32 bytes, and the final 4 bytes are reserved (zero). Decoding
//! verifies the checksum, so a torn or bit-flipped entry surfaces as a
//! corruption error instead of a bogus timeline event.

use crate::durability::{crc32, LogId};
use crate::error::{LoomError, Result};
use crate::hybridlog::LogRead;
#[cfg(test)]
use crate::record::NIL_ADDR;

/// Size in bytes of one timestamp-index entry (including CRC + padding).
pub const TS_ENTRY_SIZE: usize = 40;

/// Offset of the CRC32 field inside an encoded entry; the checksum covers
/// `entry[0..TS_ENTRY_CRC_OFFSET]`.
pub const TS_ENTRY_CRC_OFFSET: usize = 32;

/// The kind of event a timestamp-index entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsKind {
    /// A periodic per-source record mark; `target` is a record address.
    RecordMark,
    /// A chunk was sealed; `target` is the summary's chunk-index address.
    ChunkSeal,
}

/// One timestamp-index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsEntry {
    /// Event kind.
    pub kind: TsKind,
    /// Source of the record for [`TsKind::RecordMark`]; 0 for seals.
    pub source: u32,
    /// Event timestamp (nanoseconds, internal clock).
    pub ts: u64,
    /// Record-log address (marks) or chunk-index address (seals).
    pub target: u64,
    /// Address of the previous entry of the same stream, or
    /// [`NIL_ADDR`](crate::record::NIL_ADDR).
    pub prev: u64,
}

impl TsEntry {
    /// Encodes the entry into its fixed-size on-log form, including its
    /// CRC32 checksum.
    pub fn encode(&self) -> [u8; TS_ENTRY_SIZE] {
        let mut buf = [0u8; TS_ENTRY_SIZE];
        let kind: u32 = match self.kind {
            TsKind::RecordMark => 1,
            TsKind::ChunkSeal => 2,
        };
        buf[0..4].copy_from_slice(&kind.to_le_bytes());
        buf[4..8].copy_from_slice(&self.source.to_le_bytes());
        buf[8..16].copy_from_slice(&self.ts.to_le_bytes());
        buf[16..24].copy_from_slice(&self.target.to_le_bytes());
        buf[24..32].copy_from_slice(&self.prev.to_le_bytes());
        let crc = crc32(&buf[..TS_ENTRY_CRC_OFFSET]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        // buf[36..40] reserved, zero.
        buf
    }

    /// Decodes an entry from its fixed-size on-log form, verifying its
    /// checksum.
    pub fn decode(buf: &[u8]) -> Result<TsEntry> {
        if buf.len() < TS_ENTRY_SIZE {
            return Err(LoomError::Corrupt(format!(
                "timestamp entry truncated: {} bytes",
                buf.len()
            )));
        }
        let stored = u32::from_le_bytes(buf[32..36].try_into().expect("len 4"));
        if crc32(&buf[..TS_ENTRY_CRC_OFFSET]) != stored {
            return Err(LoomError::Corrupt(
                "timestamp entry checksum mismatch".into(),
            ));
        }
        // The reserved tail is outside the checksum; a nonzero byte there
        // still means the entry was never written whole.
        if buf[36..TS_ENTRY_SIZE] != [0; 4] {
            return Err(LoomError::Corrupt(
                "timestamp entry reserved bytes not zero".into(),
            ));
        }
        let kind = match u32::from_le_bytes(buf[0..4].try_into().expect("len 4")) {
            1 => TsKind::RecordMark,
            2 => TsKind::ChunkSeal,
            k => {
                return Err(LoomError::Corrupt(format!(
                    "unknown timestamp entry kind {k}"
                )))
            }
        };
        Ok(TsEntry {
            kind,
            source: u32::from_le_bytes(buf[4..8].try_into().expect("len 4")),
            ts: u64::from_le_bytes(buf[8..16].try_into().expect("len 8")),
            target: u64::from_le_bytes(buf[16..24].try_into().expect("len 8")),
            prev: u64::from_le_bytes(buf[24..32].try_into().expect("len 8")),
        })
    }
}

/// Read-side cursor over a timestamp index stored in a hybrid log view.
pub struct TsIndexView<'a, R: LogRead> {
    log: &'a R,
    /// Number of complete entries visible in this view.
    entries: u64,
}

impl<'a, R: LogRead> TsIndexView<'a, R> {
    /// Creates a view over `log`.
    pub fn new(log: &'a R) -> Self {
        let entries = log.limit() / TS_ENTRY_SIZE as u64;
        TsIndexView { log, entries }
    }

    /// Number of entries visible.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Reads entry number `idx` (0-based).
    pub fn entry(&self, idx: u64) -> Result<TsEntry> {
        let addr = idx * TS_ENTRY_SIZE as u64;
        if idx >= self.entries {
            return Err(LoomError::AddressOutOfBounds {
                addr,
                tail: self.entries * TS_ENTRY_SIZE as u64,
            });
        }
        let mut buf = [0u8; TS_ENTRY_SIZE];
        self.log.read_at(addr, &mut buf)?;
        TsEntry::decode(&buf).map_err(|e| match e {
            LoomError::Corrupt(reason) => LoomError::CorruptLog {
                log: LogId::Ts,
                addr,
                reason,
            },
            other => other,
        })
    }

    /// Reads the entry stored at log address `addr` (used to follow `prev`
    /// pointers).
    pub fn entry_at_addr(&self, addr: u64) -> Result<TsEntry> {
        if !addr.is_multiple_of(TS_ENTRY_SIZE as u64) {
            return Err(LoomError::Corrupt(format!(
                "misaligned timestamp entry address {addr}"
            )));
        }
        self.entry(addr / TS_ENTRY_SIZE as u64)
    }

    /// Returns the index of the first entry with `ts > t`, i.e. the number
    /// of entries with `ts <= t`. Binary search; entries are ordered by
    /// timestamp because the writer timestamps them monotonically.
    pub fn partition_by_ts(&self, t: u64) -> Result<u64> {
        let mut lo = 0u64;
        let mut hi = self.entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.entry(mid)?.ts <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Finds the first entry at or after position `from` that satisfies
    /// `pred`, scanning forward. Returns its position and the entry.
    pub fn find_forward(
        &self,
        from: u64,
        mut pred: impl FnMut(&TsEntry) -> bool,
    ) -> Result<Option<(u64, TsEntry)>> {
        let mut idx = from;
        while idx < self.entries {
            let e = self.entry(idx)?;
            if pred(&e) {
                return Ok(Some((idx, e)));
            }
            idx += 1;
        }
        Ok(None)
    }

    /// Finds the last entry strictly before position `until` that satisfies
    /// `pred`, scanning backward. Returns its position and the entry.
    pub fn find_backward(
        &self,
        until: u64,
        mut pred: impl FnMut(&TsEntry) -> bool,
    ) -> Result<Option<(u64, TsEntry)>> {
        let mut idx = until.min(self.entries);
        while idx > 0 {
            idx -= 1;
            let e = self.entry(idx)?;
            if pred(&e) {
                return Ok(Some((idx, e)));
            }
        }
        Ok(None)
    }

    /// Finds the latest chunk-seal entry with `ts <= t`, if any.
    pub fn last_seal_at_or_before(&self, t: u64) -> Result<Option<TsEntry>> {
        let pos = self.partition_by_ts(t)?;
        // Walk backward from the partition point to the nearest seal, using
        // the seal chain once one is found. The backward walk is bounded by
        // the mark period times the number of sources in the worst case.
        Ok(self
            .find_backward(pos, |e| e.kind == TsKind::ChunkSeal)?
            .map(|(_, e)| e))
    }

    /// Finds the first chunk-seal entry with `ts >= t`, if any.
    pub fn first_seal_at_or_after(&self, t: u64) -> Result<Option<TsEntry>> {
        let pos = self.partition_by_ts(t.saturating_sub(1))?;
        Ok(self
            .find_forward(pos, |e| e.kind == TsKind::ChunkSeal && e.ts >= t)?
            .map(|(_, e)| e))
    }

    /// Finds the first record mark for `source` with `ts > t`, if any.
    ///
    /// Used by raw scans to bound how far back a record-chain walk must
    /// start for a historical time range.
    pub fn first_mark_after(&self, source: u32, t: u64) -> Result<Option<TsEntry>> {
        let pos = self.partition_by_ts(t)?;
        Ok(self
            .find_forward(pos, |e| e.kind == TsKind::RecordMark && e.source == source)?
            .map(|(_, e)| e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory `LogRead` for unit tests.
    struct MemLog(Vec<u8>);

    impl LogRead for MemLog {
        fn read_at(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
            let a = addr as usize;
            if a + dst.len() > self.0.len() {
                return Err(LoomError::AddressOutOfBounds {
                    addr: addr + dst.len() as u64,
                    tail: self.0.len() as u64,
                });
            }
            dst.copy_from_slice(&self.0[a..a + dst.len()]);
            Ok(())
        }

        fn limit(&self) -> u64 {
            self.0.len() as u64
        }
    }

    fn build_index(entries: &[TsEntry]) -> MemLog {
        let mut v = Vec::new();
        for e in entries {
            v.extend_from_slice(&e.encode());
        }
        MemLog(v)
    }

    fn mark(source: u32, ts: u64, target: u64) -> TsEntry {
        TsEntry {
            kind: TsKind::RecordMark,
            source,
            ts,
            target,
            prev: NIL_ADDR,
        }
    }

    fn seal(ts: u64, target: u64) -> TsEntry {
        TsEntry {
            kind: TsKind::ChunkSeal,
            source: 0,
            ts,
            target,
            prev: NIL_ADDR,
        }
    }

    #[test]
    fn entry_round_trips() {
        for e in [mark(3, 100, 4096), seal(222, 88)] {
            assert_eq!(TsEntry::decode(&e.encode()).unwrap(), e);
        }
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut buf = mark(1, 2, 3).encode();
        buf[0] = 9;
        // Flipping the kind byte also invalidates the checksum; restamp it
        // so the kind check itself is exercised.
        let crc = crc32(&buf[..TS_ENTRY_CRC_OFFSET]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        assert!(TsEntry::decode(&buf).is_err());
    }

    #[test]
    fn decode_rejects_flipped_byte() {
        let mut buf = mark(1, 2, 3).encode();
        buf[17] ^= 0x01; // corrupt the target field
        let err = TsEntry::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn decode_rejects_nonzero_reserved_bytes() {
        // The reserved tail sits outside the checksum; a flip there must
        // still be rejected.
        let mut buf = mark(1, 2, 3).encode();
        buf[39] ^= 0xFF;
        let err = TsEntry::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
    }

    #[test]
    fn corrupt_entry_read_reports_log_and_address() {
        let mut bytes = build_index(&[mark(1, 10, 0), mark(1, 20, 1)]).0;
        bytes[TS_ENTRY_SIZE + 9] ^= 0x80; // corrupt entry 1's ts field
        let log = MemLog(bytes);
        let v = TsIndexView::new(&log);
        assert!(v.entry(0).is_ok());
        match v.entry(1) {
            Err(LoomError::CorruptLog { log, addr, .. }) => {
                assert_eq!(log, LogId::Ts);
                assert_eq!(addr, TS_ENTRY_SIZE as u64);
            }
            other => panic!("expected CorruptLog, got {other:?}"),
        }
    }

    #[test]
    fn partition_by_ts_is_correct() {
        // Timestamps: 10, 20, 20, 30, 40.
        let log = build_index(&[
            mark(1, 10, 0),
            seal(20, 1),
            mark(2, 20, 2),
            mark(1, 30, 3),
            seal(40, 4),
        ]);
        let v = TsIndexView::new(&log);
        assert_eq!(v.len(), 5);
        assert_eq!(v.partition_by_ts(5).unwrap(), 0);
        assert_eq!(v.partition_by_ts(10).unwrap(), 1);
        assert_eq!(v.partition_by_ts(20).unwrap(), 3);
        assert_eq!(v.partition_by_ts(25).unwrap(), 3);
        assert_eq!(v.partition_by_ts(40).unwrap(), 5);
        assert_eq!(v.partition_by_ts(u64::MAX).unwrap(), 5);
    }

    #[test]
    fn seal_searches_find_neighbours() {
        let log = build_index(&[
            mark(1, 10, 0),
            seal(20, 100),
            mark(2, 25, 2),
            seal(30, 200),
            mark(1, 35, 3),
        ]);
        let v = TsIndexView::new(&log);
        assert_eq!(v.last_seal_at_or_before(19).unwrap(), None);
        assert_eq!(v.last_seal_at_or_before(20).unwrap().unwrap().target, 100);
        assert_eq!(v.last_seal_at_or_before(29).unwrap().unwrap().target, 100);
        assert_eq!(v.last_seal_at_or_before(99).unwrap().unwrap().target, 200);

        assert_eq!(v.first_seal_at_or_after(0).unwrap().unwrap().target, 100);
        assert_eq!(v.first_seal_at_or_after(21).unwrap().unwrap().target, 200);
        assert_eq!(v.first_seal_at_or_after(31).unwrap(), None);
    }

    #[test]
    fn first_mark_after_respects_source() {
        let log = build_index(&[
            mark(1, 10, 11),
            mark(2, 20, 22),
            mark(1, 30, 33),
            mark(2, 40, 44),
        ]);
        let v = TsIndexView::new(&log);
        assert_eq!(v.first_mark_after(1, 10).unwrap().unwrap().target, 33);
        assert_eq!(v.first_mark_after(2, 10).unwrap().unwrap().target, 22);
        assert_eq!(v.first_mark_after(1, 30).unwrap(), None);
        assert_eq!(v.first_mark_after(3, 0).unwrap(), None);
    }

    #[test]
    fn truncated_view_ignores_partial_entry() {
        let mut bytes = build_index(&[mark(1, 10, 0), mark(1, 20, 1)]).0;
        bytes.extend_from_slice(&[0u8; 16]); // less than one entry
        let log = MemLog(bytes);
        let v = TsIndexView::new(&log);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn empty_index_searches_return_none() {
        let log = MemLog(Vec::new());
        let v = TsIndexView::new(&log);
        assert!(v.is_empty());
        assert_eq!(v.last_seal_at_or_before(100).unwrap(), None);
        assert_eq!(v.first_mark_after(1, 0).unwrap(), None);
        assert_eq!(v.partition_by_ts(50).unwrap(), 0);
    }
}
