//! Internal monotonic timestamps (§5.2).
//!
//! Loom timestamps every record with the host's monotonic clock, so
//! timestamps represent *arrival* time and increase monotonically without
//! requiring a sort of out-of-order external timestamps. A manually driven
//! clock variant makes tests and deterministic workload replay possible.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotonically non-decreasing nanosecond timestamps.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Wall-free monotonic clock: nanoseconds since the clock was created,
    /// plus a resume offset so a reopened instance continues the timeline
    /// of its data directory instead of restarting at zero.
    Monotonic(Arc<Instant>, Arc<AtomicU64>),
    /// Manually advanced clock for tests and deterministic replay.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// Creates a monotonic clock whose epoch is "now".
    pub fn monotonic() -> Self {
        Clock::Monotonic(Arc::new(Instant::now()), Arc::new(AtomicU64::new(0)))
    }

    /// Creates a manual clock starting at `start` nanoseconds.
    pub fn manual(start: u64) -> Self {
        Clock::Manual(Arc::new(AtomicU64::new(start)))
    }

    /// Returns the current timestamp in nanoseconds.
    pub fn now(&self) -> u64 {
        match self {
            Clock::Monotonic(epoch, offset) => {
                epoch.elapsed().as_nanos() as u64 + offset.load(Ordering::Relaxed)
            }
            Clock::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Ensures every future [`Clock::now`] returns at least `floor`.
    ///
    /// Used when reopening a data directory: record timestamps must keep
    /// increasing across restarts, so the clock resumes after the last
    /// durable timestamp. Never moves the clock backwards.
    pub fn resume_at_least(&self, floor: u64) {
        match self {
            Clock::Monotonic(epoch, offset) => {
                let elapsed = epoch.elapsed().as_nanos() as u64;
                offset.fetch_max(floor.saturating_sub(elapsed), Ordering::Relaxed);
            }
            Clock::Manual(t) => {
                t.fetch_max(floor, Ordering::Relaxed);
            }
        }
    }

    /// Advances a manual clock by `delta` nanoseconds and returns the new time.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not [`Clock::Manual`]; advancing real time is
    /// a logic error that should fail loudly in tests.
    pub fn advance(&self, delta: u64) -> u64 {
        match self {
            Clock::Manual(t) => t.fetch_add(delta, Ordering::Relaxed) + delta,
            Clock::Monotonic(..) => panic!("cannot advance a monotonic clock"),
        }
    }

    /// Sets a manual clock to an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not [`Clock::Manual`] or if `t` would move the
    /// clock backwards.
    pub fn set(&self, t: u64) {
        match self {
            Clock::Manual(cur) => {
                let prev = cur.swap(t, Ordering::Relaxed);
                assert!(prev <= t, "manual clock moved backwards: {prev} -> {t}");
            }
            Clock::Monotonic(..) => panic!("cannot set a monotonic clock"),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = Clock::monotonic();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = Clock::manual(100);
        assert_eq!(c.now(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now(), 150);
        c.set(200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = Clock::manual(100);
        c.set(50);
    }

    #[test]
    fn resume_at_least_lifts_both_clock_kinds() {
        let m = Clock::monotonic();
        m.resume_at_least(1_000_000_000_000);
        assert!(m.now() >= 1_000_000_000_000);
        // Resuming below the current time is a no-op.
        let t = m.now();
        m.resume_at_least(5);
        assert!(m.now() >= t);

        let c = Clock::manual(100);
        c.resume_at_least(500);
        assert_eq!(c.now(), 500);
        c.resume_at_least(50);
        assert_eq!(c.now(), 500);
    }

    #[test]
    fn clones_share_state() {
        let c = Clock::manual(0);
        let c2 = c.clone();
        c.advance(7);
        assert_eq!(c2.now(), 7);
    }
}
