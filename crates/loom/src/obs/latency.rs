//! Fixed-bucket latency histograms for the metrics registry.
//!
//! Reuses the chunk-index [`HistogramSpec`] machinery (§4.2) for bucket
//! layout and lookup: a spec defines `n` interior buckets plus two
//! outlier buckets, and `bin_of` locates a bucket with one binary search.
//! Counts are atomic, so recording never blocks and costs one
//! `fetch_add` (nothing at all when `self-obs` is compiled out).

use crate::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::HistogramSpec;

/// A lock-free histogram of durations in nanoseconds.
pub struct LatencyHistogram {
    spec: HistogramSpec,
    bins: Box<[AtomicU64]>,
}

impl LatencyHistogram {
    /// Creates a histogram with the bucket layout of `spec` (boundaries
    /// are interpreted as nanoseconds).
    pub fn new(spec: HistogramSpec) -> Self {
        let bins = (0..spec.bin_count())
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LatencyHistogram { spec, bins }
    }

    /// Default layout for engine latencies: exponential buckets from 1 µs
    /// growing ×4, covering 1 µs to ~4.4 s plus the two outlier buckets.
    pub fn default_nanos() -> Self {
        Self::new(HistogramSpec::exponential(1_000.0, 4.0, 12).expect("static spec is valid"))
    }

    /// Records one observation of `nanos`.
    ///
    /// Release, pairing with the acquire loads in
    /// [`counts`](LatencyHistogram::counts): a snapshot that observes a
    /// recorded sample also observes the counter increments sequenced
    /// before it (e.g. the query counter), keeping
    /// `histogram.total() <= counter` true in any snapshot that reads
    /// the histogram first.
    #[inline]
    pub fn record(&self, nanos: u64) {
        #[cfg(feature = "self-obs")]
        if let Some(bin) = self.spec.bin_of(nanos as f64) {
            self.bins[bin].fetch_add(1, Ordering::Release);
        }
        #[cfg(not(feature = "self-obs"))]
        let _ = nanos;
    }

    /// Point-in-time copy of the bucket boundaries and counts.
    pub fn counts(&self) -> HistogramCounts {
        HistogramCounts {
            bounds: self.spec.bounds().to_vec(),
            counts: self
                .bins
                .iter()
                .map(|b| b.load(Ordering::Acquire))
                .collect(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::default_nanos()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("counts", &self.counts())
            .finish()
    }
}

/// A plain copy of a histogram's buckets, as captured by a snapshot.
///
/// `bounds` holds the `n + 1` interior boundaries; `counts` has `n + 2`
/// entries — the low outlier bucket, the `n` interior buckets, and the
/// high outlier bucket, matching [`HistogramSpec`]'s bin numbering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramCounts {
    /// Interior bucket boundaries, in nanoseconds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (outlier buckets included).
    pub counts: Vec<u64>,
}

impl HistogramCounts {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_increasing_buckets() {
        let h = LatencyHistogram::default_nanos();
        h.record(500); // below the first boundary: low outlier bucket
        h.record(2_000);
        h.record(2_000_000);
        h.record(u64::MAX / 2); // high outlier bucket
        let c = h.counts();
        assert_eq!(c.counts.len(), c.bounds.len() + 1);
        if cfg!(feature = "self-obs") {
            assert_eq!(c.total(), 4);
            assert_eq!(c.counts[0], 1, "sub-boundary value in low outlier bucket");
            assert_eq!(
                *c.counts.last().unwrap(),
                1,
                "huge value in high outlier bucket"
            );
        } else {
            assert_eq!(c.total(), 0);
        }
    }
}
