//! The slow-query log: a bounded ring buffer of structured traces.
//!
//! Queries whose wall-clock duration exceeds
//! [`Config::slow_query_nanos`](crate::Config::slow_query_nanos) record a
//! [`SlowQueryTrace`] here. The buffer holds the most recent
//! [`Config::slow_query_log`](crate::Config::slow_query_log) traces;
//! older entries are overwritten. Recording takes a mutex, which is fine
//! because by definition only slow queries ever reach it.

use std::collections::VecDeque;

use crate::sync::Mutex;

use super::QueryPhases;

/// Which query operator produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `Query::scan` without an index (back-pointer chain walk).
    RawScan,
    /// `Query::scan` with an index (summary-pruned chunk scans).
    IndexedScan,
    /// `Query::aggregate`.
    Aggregate,
    /// `Query::bin_counts`.
    BinCounts,
}

impl QueryKind {
    /// Short stable name, for text output.
    pub fn as_str(&self) -> &'static str {
        match self {
            QueryKind::RawScan => "raw_scan",
            QueryKind::IndexedScan => "indexed_scan",
            QueryKind::Aggregate => "aggregate",
            QueryKind::BinCounts => "bin_counts",
        }
    }
}

/// A structured trace of one slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryTrace {
    /// Monotone sequence number (total slow queries ever recorded gives
    /// how many were overwritten).
    pub seq: u64,
    /// The operator that ran.
    pub kind: QueryKind,
    /// The queried source.
    pub source: u32,
    /// The index used, if any.
    pub index: Option<u32>,
    /// Total wall-clock duration.
    pub total_nanos: u64,
    /// Per-phase durations (plan / summary selection / chunk scan / tail).
    pub phases: QueryPhases,
    /// Planner decision: was the timestamp index used to seek?
    pub used_ts_index: bool,
    /// Planner decision: were chunk summaries used to skip chunks?
    pub used_chunk_index: bool,
    /// Largest worker-pool size any stage executed with.
    pub workers_used: u64,
    /// Chunk summaries examined.
    pub summaries_scanned: u64,
    /// Record-log chunks actually read.
    pub chunks_scanned: u64,
    /// Summaries examined whose chunks were skipped (pruned) — the
    /// difference between summaries examined and chunks read, floored at
    /// zero (tail-region pieces also count as chunk reads).
    pub chunks_pruned: u64,
    /// Records decoded.
    pub records_scanned: u64,
    /// Records that matched all predicates.
    pub records_matched: u64,
}

/// The bounded ring buffer behind [`Loom::recent_slow_queries`](crate::Loom::recent_slow_queries).
pub struct SlowQueryLog {
    capacity: usize,
    state: Mutex<State>,
}

struct State {
    next_seq: u64,
    entries: VecDeque<SlowQueryTrace>,
}

impl SlowQueryLog {
    /// Creates a log retaining at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            capacity,
            state: Mutex::named(
                "loom.slow_query",
                State {
                    next_seq: 0,
                    entries: VecDeque::with_capacity(capacity.min(64)),
                },
            ),
        }
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a trace, evicting the oldest when full. The trace's `seq`
    /// is assigned here.
    #[cfg_attr(not(feature = "self-obs"), allow(dead_code))]
    pub(crate) fn record(&self, trace: SlowQueryTrace) {
        #[cfg(feature = "self-obs")]
        {
            if self.capacity == 0 {
                return;
            }
            let mut state = self.state.lock();
            let mut trace = trace;
            trace.seq = state.next_seq;
            state.next_seq += 1;
            if state.entries.len() == self.capacity {
                state.entries.pop_front();
            }
            state.entries.push_back(trace);
        }
        #[cfg(not(feature = "self-obs"))]
        let _ = trace;
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<SlowQueryTrace> {
        self.state.lock().entries.iter().cloned().collect()
    }

    /// Total slow queries ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().next_seq
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("capacity", &self.capacity)
            .field("recorded", &self.total_recorded())
            .finish()
    }
}

#[cfg(all(test, feature = "self-obs"))]
mod tests {
    use super::*;

    fn trace(kind: QueryKind) -> SlowQueryTrace {
        SlowQueryTrace {
            seq: 0,
            kind,
            source: 1,
            index: None,
            total_nanos: 42,
            phases: QueryPhases::default(),
            used_ts_index: true,
            used_chunk_index: true,
            workers_used: 1,
            summaries_scanned: 0,
            chunks_scanned: 0,
            chunks_pruned: 0,
            records_scanned: 0,
            records_matched: 0,
        }
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let log = SlowQueryLog::new(3);
        for _ in 0..7 {
            log.record(trace(QueryKind::RawScan));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "oldest-first, newest retained");
        assert_eq!(log.total_recorded(), 7);
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let log = SlowQueryLog::new(0);
        log.record(trace(QueryKind::Aggregate));
        assert!(log.recent().is_empty());
    }
}
