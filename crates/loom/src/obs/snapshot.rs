//! Point-in-time copies of the metrics registry.
//!
//! [`MetricsSnapshot`] is a plain-data struct: capturing one reads every
//! counter once (relaxed loads summed across shards) and copies the
//! histogram buckets, so the caller can diff, serialize, or print it
//! without holding any engine state. Counters are monotone, so two
//! snapshots can always be subtracted to get a rate.

use super::latency::HistogramCounts;

/// Hybrid-log layer: in-memory block lifecycle and background flushing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HybridLogMetrics {
    /// Active-block seals (ping-pong swaps) across all three logs.
    pub block_seals: u64,
    /// Times an ingest thread had to spin waiting for the flusher to
    /// release the next block (backpressure).
    pub backpressure_waits: u64,
    /// Flush requests handed to the flusher thread (seals + partial syncs).
    pub flushes_enqueued: u64,
    /// Flushes completed by the flusher thread.
    pub flushes: u64,
    /// Total time spent inside completed flushes, in nanoseconds.
    pub flush_nanos: u64,
    /// Bytes written to storage by completed flushes.
    pub flushed_bytes: u64,
    /// Flush requests currently queued or in progress (gauge).
    pub flush_queue_depth: u64,
    /// Snapshot reads that observed a torn generation and retried
    /// (seqlock validation failures).
    pub seqlock_retries: u64,
    /// Transient flusher I/O errors absorbed by the retry policy
    /// ([`Config::io_retry`](crate::Config::io_retry)).
    pub io_retries: u64,
    /// Flushers that exhausted their retry budget and failed permanently
    /// (each flips the engine to read-only).
    pub io_giveups: u64,
    /// Health-state departures from `Healthy` (into `Degraded` or
    /// `ReadOnly`).
    pub degraded_transitions: u64,
    /// Latency distribution of completed flushes, in nanoseconds.
    pub flush_latency: HistogramCounts,
}

/// Coordinator / write-path layer: chunk sealing and summary building.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoordinatorMetrics {
    /// Record-log chunks sealed (each producing one chunk summary).
    pub chunks_sealed: u64,
    /// Total time spent building and encoding chunk summaries, in
    /// nanoseconds.
    pub summary_build_nanos: u64,
    /// Encoded bytes appended to the chunk-summary log.
    pub summary_bytes: u64,
    /// Data-directory reopens that took the clean-shutdown fast path.
    pub clean_reopens: u64,
    /// Data-directory reopens that required a dirty recovery scan.
    pub dirty_recoveries: u64,
    /// Total time spent in dirty recovery scans, in nanoseconds.
    pub recovery_nanos: u64,
    /// Torn-tail bytes discarded across all dirty recoveries.
    pub recovery_truncated_bytes: u64,
    /// Records dropped by the
    /// [`OverloadPolicy::DropNewest`](crate::OverloadPolicy::DropNewest)
    /// backpressure policy.
    pub ingest_drops: u64,
}

/// Index layer: timestamp-index seeks and chunk-summary pruning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexMetrics {
    /// Queries that used the timestamp index to seek to the time range.
    pub ts_seeks: u64,
    /// Chunk summaries examined by the planner across all queries.
    pub summary_probes: u64,
    /// Summaries whose histogram overlapped the value predicate (chunk
    /// had to be read).
    pub chunk_hits: u64,
    /// Chunks read because their summary matched, that then yielded zero
    /// matching records — the summary's false positives.
    pub false_positive_chunks: u64,
}

/// Query layer: operator counts, per-query latency, and pool usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// Queries executed (any operator).
    pub queries: u64,
    /// Total wall-clock time across all queries, in nanoseconds.
    pub query_nanos: u64,
    /// Queries that ran any stage on a worker pool (parallelism > 1).
    pub parallel_queries: u64,
    /// Tasks submitted to query worker pools.
    pub pool_tasks: u64,
    /// Queries that exceeded the slow-query threshold.
    pub slow_queries: u64,
    /// Chunk pieces decoded through the columnar batch path.
    pub columnar_batches: u64,
    /// Rows decoded into column batches across all queries.
    pub columnar_rows: u64,
    /// Latency distribution of whole queries, in nanoseconds.
    pub query_latency: HistogramCounts,
    /// Distribution of rows per decoded column batch.
    pub batch_rows: HistogramCounts,
    /// Distribution of per-batch selection percentage (selected rows /
    /// decoded rows, 0–100).
    pub batch_selectivity: HistogramCounts,
}

/// A consistent-enough point-in-time copy of every engine metric.
///
/// "Consistent enough": each value is read atomically, but the snapshot
/// as a whole is not a linearizable cut — counters incremented while the
/// snapshot is being taken may or may not appear. This is the standard
/// monitoring-counter contract; all counters are monotone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Hybrid-log layer metrics.
    pub hybridlog: HybridLogMetrics,
    /// Coordinator / write-path metrics.
    pub coordinator: CoordinatorMetrics,
    /// Index-layer metrics.
    pub index: IndexMetrics,
    /// Query-layer metrics.
    pub query: QueryMetrics,
}

impl MetricsSnapshot {
    /// Every scalar metric as a `(name, value)` pair, in a stable order.
    ///
    /// Names follow the `loom_<layer>_<metric>` convention used by the
    /// text exposition format.
    pub fn named_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "loom_hybridlog_block_seals_total",
                self.hybridlog.block_seals,
            ),
            (
                "loom_hybridlog_backpressure_waits_total",
                self.hybridlog.backpressure_waits,
            ),
            (
                "loom_hybridlog_flushes_enqueued_total",
                self.hybridlog.flushes_enqueued,
            ),
            ("loom_hybridlog_flushes_total", self.hybridlog.flushes),
            (
                "loom_hybridlog_flush_nanos_total",
                self.hybridlog.flush_nanos,
            ),
            (
                "loom_hybridlog_flushed_bytes_total",
                self.hybridlog.flushed_bytes,
            ),
            (
                "loom_hybridlog_flush_queue_depth",
                self.hybridlog.flush_queue_depth,
            ),
            (
                "loom_hybridlog_seqlock_retries_total",
                self.hybridlog.seqlock_retries,
            ),
            ("loom_hybridlog_io_retries_total", self.hybridlog.io_retries),
            ("loom_hybridlog_io_giveups_total", self.hybridlog.io_giveups),
            (
                "loom_hybridlog_degraded_transitions_total",
                self.hybridlog.degraded_transitions,
            ),
            (
                "loom_coordinator_chunks_sealed_total",
                self.coordinator.chunks_sealed,
            ),
            (
                "loom_coordinator_summary_build_nanos_total",
                self.coordinator.summary_build_nanos,
            ),
            (
                "loom_coordinator_summary_bytes_total",
                self.coordinator.summary_bytes,
            ),
            (
                "loom_coordinator_clean_reopens_total",
                self.coordinator.clean_reopens,
            ),
            (
                "loom_coordinator_dirty_recoveries_total",
                self.coordinator.dirty_recoveries,
            ),
            (
                "loom_coordinator_recovery_nanos_total",
                self.coordinator.recovery_nanos,
            ),
            (
                "loom_coordinator_recovery_truncated_bytes_total",
                self.coordinator.recovery_truncated_bytes,
            ),
            (
                "loom_coordinator_ingest_drops_total",
                self.coordinator.ingest_drops,
            ),
            ("loom_index_ts_seeks_total", self.index.ts_seeks),
            ("loom_index_summary_probes_total", self.index.summary_probes),
            ("loom_index_chunk_hits_total", self.index.chunk_hits),
            (
                "loom_index_false_positive_chunks_total",
                self.index.false_positive_chunks,
            ),
            ("loom_query_queries_total", self.query.queries),
            ("loom_query_nanos_total", self.query.query_nanos),
            (
                "loom_query_parallel_queries_total",
                self.query.parallel_queries,
            ),
            ("loom_query_pool_tasks_total", self.query.pool_tasks),
            ("loom_query_slow_queries_total", self.query.slow_queries),
            (
                "loom_query_columnar_batches_total",
                self.query.columnar_batches,
            ),
            ("loom_query_columnar_rows_total", self.query.columnar_rows),
        ]
    }

    /// Renders the snapshot in a Prometheus-style text format: one
    /// `name value` line per scalar, plus cumulative `_bucket` lines for
    /// the two latency histograms.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.named_values() {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        write_histogram(
            &mut out,
            "loom_hybridlog_flush_latency",
            &self.hybridlog.flush_latency,
        );
        write_histogram(&mut out, "loom_query_latency", &self.query.query_latency);
        write_histogram(&mut out, "loom_query_batch_rows", &self.query.batch_rows);
        write_histogram(
            &mut out,
            "loom_query_batch_selectivity_pct",
            &self.query.batch_selectivity,
        );
        out
    }
}

/// Appends cumulative `<name>_bucket{le="..."}` lines plus a `_count`
/// line, mirroring the Prometheus histogram exposition shape.
fn write_histogram(out: &mut String, name: &str, h: &HistogramCounts) {
    let mut cumulative = 0u64;
    // counts[0] is the low-outlier bucket (< bounds[0]); fold it into the
    // first boundary's cumulative count like Prometheus folds everything
    // below the first `le`.
    for (i, bound) in h.bounds.iter().enumerate() {
        cumulative += h.counts.get(i).copied().unwrap_or(0);
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        out.push_str(&format!("{bound}"));
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    // The +Inf bucket is everything, including the high-outlier count(s)
    // past the last boundary — by construction it equals `_count`.
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    out.push_str(&h.total().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&h.total().to_string());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_values_are_distinct_and_span_all_layers() {
        let snap = MetricsSnapshot::default();
        let names: Vec<&str> = snap.named_values().iter().map(|(n, _)| *n).collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(names.len(), unique.len(), "metric names must be unique");
        assert!(names.len() >= 12, "need at least 12 distinct metrics");
        for layer in ["hybridlog", "coordinator", "index", "query"] {
            assert!(
                names.iter().any(|n| n.contains(layer)),
                "missing layer {layer}"
            );
        }
    }

    #[test]
    fn text_format_has_one_line_per_scalar_and_histogram_buckets() {
        let mut snap = MetricsSnapshot::default();
        snap.query.queries = 7;
        snap.query.query_latency = HistogramCounts {
            bounds: vec![1_000.0, 4_000.0],
            counts: vec![1, 2, 3, 4],
        };
        let text = snap.to_text();
        assert!(text.contains("loom_query_queries_total 7\n"));
        assert!(text.contains("loom_query_latency_bucket{le=\"1000\"} 1\n"));
        assert!(text.contains("loom_query_latency_bucket{le=\"4000\"} 3\n"));
        assert!(text.contains("loom_query_latency_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("loom_query_latency_count 10\n"));
    }
}
