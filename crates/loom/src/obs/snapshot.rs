//! Point-in-time copies of the metrics registry.
//!
//! [`MetricsSnapshot`] is a plain-data struct: capturing one reads every
//! counter once (relaxed loads summed across shards) and copies the
//! histogram buckets, so the caller can diff, serialize, or print it
//! without holding any engine state. Counters are monotone, so two
//! snapshots can always be subtracted to get a rate.

use super::latency::HistogramCounts;

/// Hybrid-log layer: in-memory block lifecycle and background flushing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HybridLogMetrics {
    /// Active-block seals (ping-pong swaps) across all three logs.
    pub block_seals: u64,
    /// Times an ingest thread had to spin waiting for the flusher to
    /// release the next block (backpressure).
    pub backpressure_waits: u64,
    /// Flush requests handed to the flusher thread (seals + partial syncs).
    pub flushes_enqueued: u64,
    /// Flushes completed by the flusher thread.
    pub flushes: u64,
    /// Total time spent inside completed flushes, in nanoseconds.
    pub flush_nanos: u64,
    /// Bytes written to storage by completed flushes.
    pub flushed_bytes: u64,
    /// Flush requests currently queued or in progress (gauge).
    pub flush_queue_depth: u64,
    /// Snapshot reads that observed a torn generation and retried
    /// (seqlock validation failures).
    pub seqlock_retries: u64,
    /// Transient flusher I/O errors absorbed by the retry policy
    /// ([`Config::io_retry`](crate::Config::io_retry)).
    pub io_retries: u64,
    /// Flushers that exhausted their retry budget and failed permanently
    /// (each flips the engine to read-only).
    pub io_giveups: u64,
    /// Health-state departures from `Healthy` (into `Degraded` or
    /// `ReadOnly`).
    pub degraded_transitions: u64,
    /// Latency distribution of completed flushes, in nanoseconds.
    pub flush_latency: HistogramCounts,
}

/// Coordinator / write-path layer: chunk sealing and summary building.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoordinatorMetrics {
    /// Record-log chunks sealed (each producing one chunk summary).
    pub chunks_sealed: u64,
    /// Total time spent building and encoding chunk summaries, in
    /// nanoseconds.
    pub summary_build_nanos: u64,
    /// Encoded bytes appended to the chunk-summary log.
    pub summary_bytes: u64,
    /// Data-directory reopens that took the clean-shutdown fast path.
    pub clean_reopens: u64,
    /// Data-directory reopens that required a dirty recovery scan.
    pub dirty_recoveries: u64,
    /// Total time spent in dirty recovery scans, in nanoseconds.
    pub recovery_nanos: u64,
    /// Torn-tail bytes discarded across all dirty recoveries.
    pub recovery_truncated_bytes: u64,
    /// Records dropped by the
    /// [`OverloadPolicy::DropNewest`](crate::OverloadPolicy::DropNewest)
    /// backpressure policy.
    pub ingest_drops: u64,
    /// Committed retention compaction batches (one cold segment each).
    pub tier_compactions: u64,
    /// Chunks aged from the hot record log into cold segments.
    pub tier_chunks_aged: u64,
    /// Uncompressed bytes of aged chunks.
    pub tier_aged_raw_bytes: u64,
    /// Compressed bytes those chunks occupy in cold segments.
    pub tier_aged_comp_bytes: u64,
    /// Whole cold slices dropped by retention.
    pub tier_slices_pruned: u64,
    /// Chunks read (and decompressed) from the cold tier by queries.
    pub tier_cold_chunk_reads: u64,
}

/// Index layer: timestamp-index seeks and chunk-summary pruning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexMetrics {
    /// Queries that used the timestamp index to seek to the time range.
    pub ts_seeks: u64,
    /// Chunk summaries examined by the planner across all queries.
    pub summary_probes: u64,
    /// Summaries whose histogram overlapped the value predicate (chunk
    /// had to be read).
    pub chunk_hits: u64,
    /// Chunks read because their summary matched, that then yielded zero
    /// matching records — the summary's false positives.
    pub false_positive_chunks: u64,
}

/// Query layer: operator counts, per-query latency, and pool usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// Queries executed (any operator).
    pub queries: u64,
    /// Total wall-clock time across all queries, in nanoseconds.
    pub query_nanos: u64,
    /// Queries that ran any stage on a worker pool (parallelism > 1).
    pub parallel_queries: u64,
    /// Tasks submitted to query worker pools.
    pub pool_tasks: u64,
    /// Queries that exceeded the slow-query threshold.
    pub slow_queries: u64,
    /// Chunk pieces decoded through the columnar batch path.
    pub columnar_batches: u64,
    /// Rows decoded into column batches across all queries.
    pub columnar_rows: u64,
    /// Latency distribution of whole queries, in nanoseconds.
    pub query_latency: HistogramCounts,
    /// Distribution of rows per decoded column batch.
    pub batch_rows: HistogramCounts,
    /// Distribution of per-batch selection percentage (selected rows /
    /// decoded rows, 0–100).
    pub batch_selectivity: HistogramCounts,
}

/// Network-service layer: connections, ingest frames, acks/replays, and
/// subscription delivery (all zero unless a network front-end is
/// attached via [`Loom::net_obs`](crate::Loom::net_obs)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetMetrics {
    /// Connections that completed the hello handshake.
    pub connections: u64,
    /// Currently open handshaken connections (gauge).
    pub connections_active: u64,
    /// Frames decoded off sockets.
    pub frames_read: u64,
    /// Frames encoded onto sockets.
    pub frames_written: u64,
    /// Ingest batches accepted (replays excluded).
    pub batches: u64,
    /// Records ingested over the network.
    pub records: u64,
    /// Ack frames sent.
    pub acks: u64,
    /// Nack frames sent (typed refusals; a degraded engine nacks
    /// instead of stalling the socket).
    pub nacks: u64,
    /// Replayed batches deduplicated by `(client_id, batch_seq)` —
    /// acked again without re-ingesting.
    pub replays: u64,
    /// Subscriptions ever registered.
    pub subscriptions: u64,
    /// Currently live subscriptions (gauge).
    pub subscriptions_active: u64,
    /// `SubData` deliveries enqueued.
    pub sub_deliveries: u64,
    /// Records delivered to subscribers.
    pub sub_records: u64,
    /// Records shed by slow-consumer policies (drop-with-gap or
    /// disconnect).
    pub slow_consumer_drops: u64,
    /// Frames currently queued across all subscriber queues (gauge).
    pub sub_queue_depth: u64,
    /// Connections that died from I/O errors, bad frames, or a
    /// slow-consumer kill.
    pub disconnects: u64,
}

/// Per-shard headline counters, attached to an aggregated
/// [`MetricsSnapshot`] when the engine runs with more than one shard.
///
/// The rollup is intentionally a small selection — the full per-shard
/// snapshot is available via
/// [`Loom::shard_metrics`](crate::Loom::shard_metrics); these are the
/// values an operator scans first when one tenant misbehaves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRollup {
    /// Shard ordinal (the value of `hash(source) % shards`).
    pub shard: u64,
    /// Flushes completed by this shard's flushers.
    pub flushes: u64,
    /// Bytes this shard's flushers wrote to storage.
    pub flushed_bytes: u64,
    /// Record-log chunks this shard sealed.
    pub chunks_sealed: u64,
    /// Queries executed against this shard.
    pub queries: u64,
    /// Health-state departures from `Healthy` on this shard.
    pub degraded_transitions: u64,
}

/// A consistent-enough point-in-time copy of every engine metric.
///
/// "Consistent enough": each value is read atomically, but the snapshot
/// as a whole is not a linearizable cut — counters incremented while the
/// snapshot is being taken may or may not appear. This is the standard
/// monitoring-counter contract; all counters are monotone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Hybrid-log layer metrics.
    pub hybridlog: HybridLogMetrics,
    /// Coordinator / write-path metrics.
    pub coordinator: CoordinatorMetrics,
    /// Index-layer metrics.
    pub index: IndexMetrics,
    /// Query-layer metrics.
    pub query: QueryMetrics,
    /// Network-service metrics (engine-wide; zeros without an attached
    /// network front-end).
    pub net: NetMetrics,
    /// Per-shard headline rollups; empty on a single-shard engine, one
    /// entry per shard otherwise. The layer metrics above are always the
    /// across-shards aggregate, so every pre-existing metric name keeps
    /// its meaning.
    pub shards: Vec<ShardRollup>,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: scalar counters are summed
    /// and histogram buckets merged element-wise. This is how a sharded
    /// engine presents one aggregate registry — the per-shard snapshots
    /// are merged, so existing metric names report whole-engine totals.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let h = &mut self.hybridlog;
        let oh = &other.hybridlog;
        h.block_seals += oh.block_seals;
        h.backpressure_waits += oh.backpressure_waits;
        h.flushes_enqueued += oh.flushes_enqueued;
        h.flushes += oh.flushes;
        h.flush_nanos += oh.flush_nanos;
        h.flushed_bytes += oh.flushed_bytes;
        h.flush_queue_depth += oh.flush_queue_depth;
        h.seqlock_retries += oh.seqlock_retries;
        h.io_retries += oh.io_retries;
        h.io_giveups += oh.io_giveups;
        h.degraded_transitions += oh.degraded_transitions;
        merge_histogram(&mut h.flush_latency, &oh.flush_latency);

        let c = &mut self.coordinator;
        let oc = &other.coordinator;
        c.chunks_sealed += oc.chunks_sealed;
        c.summary_build_nanos += oc.summary_build_nanos;
        c.summary_bytes += oc.summary_bytes;
        c.clean_reopens += oc.clean_reopens;
        c.dirty_recoveries += oc.dirty_recoveries;
        c.recovery_nanos += oc.recovery_nanos;
        c.recovery_truncated_bytes += oc.recovery_truncated_bytes;
        c.ingest_drops += oc.ingest_drops;
        c.tier_compactions += oc.tier_compactions;
        c.tier_chunks_aged += oc.tier_chunks_aged;
        c.tier_aged_raw_bytes += oc.tier_aged_raw_bytes;
        c.tier_aged_comp_bytes += oc.tier_aged_comp_bytes;
        c.tier_slices_pruned += oc.tier_slices_pruned;
        c.tier_cold_chunk_reads += oc.tier_cold_chunk_reads;

        let i = &mut self.index;
        let oi = &other.index;
        i.ts_seeks += oi.ts_seeks;
        i.summary_probes += oi.summary_probes;
        i.chunk_hits += oi.chunk_hits;
        i.false_positive_chunks += oi.false_positive_chunks;

        let q = &mut self.query;
        let oq = &other.query;
        q.queries += oq.queries;
        q.query_nanos += oq.query_nanos;
        q.parallel_queries += oq.parallel_queries;
        q.pool_tasks += oq.pool_tasks;
        q.slow_queries += oq.slow_queries;
        q.columnar_batches += oq.columnar_batches;
        q.columnar_rows += oq.columnar_rows;
        merge_histogram(&mut q.query_latency, &oq.query_latency);
        merge_histogram(&mut q.batch_rows, &oq.batch_rows);
        merge_histogram(&mut q.batch_selectivity, &oq.batch_selectivity);

        let n = &mut self.net;
        let on = &other.net;
        n.connections += on.connections;
        n.connections_active += on.connections_active;
        n.frames_read += on.frames_read;
        n.frames_written += on.frames_written;
        n.batches += on.batches;
        n.records += on.records;
        n.acks += on.acks;
        n.nacks += on.nacks;
        n.replays += on.replays;
        n.subscriptions += on.subscriptions;
        n.subscriptions_active += on.subscriptions_active;
        n.sub_deliveries += on.sub_deliveries;
        n.sub_records += on.sub_records;
        n.slow_consumer_drops += on.slow_consumer_drops;
        n.sub_queue_depth += on.sub_queue_depth;
        n.disconnects += on.disconnects;
    }

    /// The rollup row a per-shard snapshot contributes to the aggregate.
    pub fn rollup(&self, shard: u64) -> ShardRollup {
        ShardRollup {
            shard,
            flushes: self.hybridlog.flushes,
            flushed_bytes: self.hybridlog.flushed_bytes,
            chunks_sealed: self.coordinator.chunks_sealed,
            queries: self.query.queries,
            degraded_transitions: self.hybridlog.degraded_transitions,
        }
    }
    /// Every scalar metric as a `(name, value)` pair, in a stable order.
    ///
    /// Names follow the `loom_<layer>_<metric>` convention used by the
    /// text exposition format.
    pub fn named_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "loom_hybridlog_block_seals_total",
                self.hybridlog.block_seals,
            ),
            (
                "loom_hybridlog_backpressure_waits_total",
                self.hybridlog.backpressure_waits,
            ),
            (
                "loom_hybridlog_flushes_enqueued_total",
                self.hybridlog.flushes_enqueued,
            ),
            ("loom_hybridlog_flushes_total", self.hybridlog.flushes),
            (
                "loom_hybridlog_flush_nanos_total",
                self.hybridlog.flush_nanos,
            ),
            (
                "loom_hybridlog_flushed_bytes_total",
                self.hybridlog.flushed_bytes,
            ),
            (
                "loom_hybridlog_flush_queue_depth",
                self.hybridlog.flush_queue_depth,
            ),
            (
                "loom_hybridlog_seqlock_retries_total",
                self.hybridlog.seqlock_retries,
            ),
            ("loom_hybridlog_io_retries_total", self.hybridlog.io_retries),
            ("loom_hybridlog_io_giveups_total", self.hybridlog.io_giveups),
            (
                "loom_hybridlog_degraded_transitions_total",
                self.hybridlog.degraded_transitions,
            ),
            (
                "loom_coordinator_chunks_sealed_total",
                self.coordinator.chunks_sealed,
            ),
            (
                "loom_coordinator_summary_build_nanos_total",
                self.coordinator.summary_build_nanos,
            ),
            (
                "loom_coordinator_summary_bytes_total",
                self.coordinator.summary_bytes,
            ),
            (
                "loom_coordinator_clean_reopens_total",
                self.coordinator.clean_reopens,
            ),
            (
                "loom_coordinator_dirty_recoveries_total",
                self.coordinator.dirty_recoveries,
            ),
            (
                "loom_coordinator_recovery_nanos_total",
                self.coordinator.recovery_nanos,
            ),
            (
                "loom_coordinator_recovery_truncated_bytes_total",
                self.coordinator.recovery_truncated_bytes,
            ),
            (
                "loom_coordinator_ingest_drops_total",
                self.coordinator.ingest_drops,
            ),
            (
                "loom_tier_compactions_total",
                self.coordinator.tier_compactions,
            ),
            (
                "loom_tier_chunks_aged_total",
                self.coordinator.tier_chunks_aged,
            ),
            (
                "loom_tier_aged_raw_bytes_total",
                self.coordinator.tier_aged_raw_bytes,
            ),
            (
                "loom_tier_aged_comp_bytes_total",
                self.coordinator.tier_aged_comp_bytes,
            ),
            (
                "loom_tier_slices_pruned_total",
                self.coordinator.tier_slices_pruned,
            ),
            (
                "loom_tier_cold_chunk_reads_total",
                self.coordinator.tier_cold_chunk_reads,
            ),
            ("loom_index_ts_seeks_total", self.index.ts_seeks),
            ("loom_index_summary_probes_total", self.index.summary_probes),
            ("loom_index_chunk_hits_total", self.index.chunk_hits),
            (
                "loom_index_false_positive_chunks_total",
                self.index.false_positive_chunks,
            ),
            ("loom_query_queries_total", self.query.queries),
            ("loom_query_nanos_total", self.query.query_nanos),
            (
                "loom_query_parallel_queries_total",
                self.query.parallel_queries,
            ),
            ("loom_query_pool_tasks_total", self.query.pool_tasks),
            ("loom_query_slow_queries_total", self.query.slow_queries),
            (
                "loom_query_columnar_batches_total",
                self.query.columnar_batches,
            ),
            ("loom_query_columnar_rows_total", self.query.columnar_rows),
            ("loom_net_connections_total", self.net.connections),
            ("loom_net_connections_active", self.net.connections_active),
            ("loom_net_frames_read_total", self.net.frames_read),
            ("loom_net_frames_written_total", self.net.frames_written),
            ("loom_net_batches_total", self.net.batches),
            ("loom_net_records_total", self.net.records),
            ("loom_net_acks_total", self.net.acks),
            ("loom_net_nacks_total", self.net.nacks),
            ("loom_net_replays_total", self.net.replays),
            ("loom_net_subscriptions_total", self.net.subscriptions),
            (
                "loom_net_subscriptions_active",
                self.net.subscriptions_active,
            ),
            ("loom_net_sub_deliveries_total", self.net.sub_deliveries),
            ("loom_net_sub_records_total", self.net.sub_records),
            (
                "loom_net_slow_consumer_drops_total",
                self.net.slow_consumer_drops,
            ),
            ("loom_net_sub_queue_depth", self.net.sub_queue_depth),
            ("loom_net_disconnects_total", self.net.disconnects),
        ]
    }

    /// Renders the snapshot in a Prometheus-style text format: one
    /// `name value` line per scalar, plus cumulative `_bucket` lines for
    /// the two latency histograms.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.named_values() {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        write_histogram(
            &mut out,
            "loom_hybridlog_flush_latency",
            &self.hybridlog.flush_latency,
        );
        write_histogram(&mut out, "loom_query_latency", &self.query.query_latency);
        write_histogram(&mut out, "loom_query_batch_rows", &self.query.batch_rows);
        write_histogram(
            &mut out,
            "loom_query_batch_selectivity_pct",
            &self.query.batch_selectivity,
        );
        // Per-shard rollups use a `shard` label so aggregators can group
        // by shard without any of the unlabeled totals above changing.
        for r in &self.shards {
            let shard = r.shard;
            for (name, value) in [
                ("loom_shard_flushes_total", r.flushes),
                ("loom_shard_flushed_bytes_total", r.flushed_bytes),
                ("loom_shard_chunks_sealed_total", r.chunks_sealed),
                ("loom_shard_queries_total", r.queries),
                (
                    "loom_shard_degraded_transitions_total",
                    r.degraded_transitions,
                ),
            ] {
                out.push_str(&format!("{name}{{shard=\"{shard}\"}} {value}\n"));
            }
        }
        out
    }
}

/// Merges histogram buckets element-wise. A side with no samples adopts
/// the other's bounds; mismatched bounds (impossible for snapshots taken
/// from one engine, where every shard uses the same spec) fall back to
/// keeping the left side's shape and folding the other's total into its
/// overflow bucket rather than mixing incomparable boundaries.
fn merge_histogram(into: &mut HistogramCounts, other: &HistogramCounts) {
    if other.counts.iter().all(|&c| c == 0) {
        return;
    }
    if into.counts.iter().all(|&c| c == 0) {
        *into = other.clone();
        return;
    }
    if into.bounds == other.bounds && into.counts.len() == other.counts.len() {
        for (a, b) in into.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    } else if let Some(last) = into.counts.last_mut() {
        *last += other.total();
    }
}

/// Appends cumulative `<name>_bucket{le="..."}` lines plus a `_count`
/// line, mirroring the Prometheus histogram exposition shape.
fn write_histogram(out: &mut String, name: &str, h: &HistogramCounts) {
    let mut cumulative = 0u64;
    // counts[0] is the low-outlier bucket (< bounds[0]); fold it into the
    // first boundary's cumulative count like Prometheus folds everything
    // below the first `le`.
    for (i, bound) in h.bounds.iter().enumerate() {
        cumulative += h.counts.get(i).copied().unwrap_or(0);
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        out.push_str(&format!("{bound}"));
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    // The +Inf bucket is everything, including the high-outlier count(s)
    // past the last boundary — by construction it equals `_count`.
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    out.push_str(&h.total().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&h.total().to_string());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_values_are_distinct_and_span_all_layers() {
        let snap = MetricsSnapshot::default();
        let names: Vec<&str> = snap.named_values().iter().map(|(n, _)| *n).collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(names.len(), unique.len(), "metric names must be unique");
        assert!(names.len() >= 12, "need at least 12 distinct metrics");
        for layer in ["hybridlog", "coordinator", "index", "query", "net"] {
            assert!(
                names.iter().any(|n| n.contains(layer)),
                "missing layer {layer}"
            );
        }
    }

    #[test]
    fn text_format_has_one_line_per_scalar_and_histogram_buckets() {
        let mut snap = MetricsSnapshot::default();
        snap.query.queries = 7;
        snap.query.query_latency = HistogramCounts {
            bounds: vec![1_000.0, 4_000.0],
            counts: vec![1, 2, 3, 4],
        };
        let text = snap.to_text();
        assert!(text.contains("loom_query_queries_total 7\n"));
        assert!(text.contains("loom_query_latency_bucket{le=\"1000\"} 1\n"));
        assert!(text.contains("loom_query_latency_bucket{le=\"4000\"} 3\n"));
        assert!(text.contains("loom_query_latency_bucket{le=\"+Inf\"} 10\n"));
        assert!(text.contains("loom_query_latency_count 10\n"));
    }

    #[test]
    fn merge_sums_scalars_and_histogram_buckets() {
        let mut a = MetricsSnapshot::default();
        a.query.queries = 3;
        a.hybridlog.flushes = 2;
        a.query.query_latency = HistogramCounts {
            bounds: vec![1_000.0, 4_000.0],
            counts: vec![1, 2, 3, 4],
        };
        let mut b = MetricsSnapshot::default();
        b.query.queries = 5;
        b.hybridlog.flushes = 7;
        b.index.chunk_hits = 1;
        b.query.query_latency = HistogramCounts {
            bounds: vec![1_000.0, 4_000.0],
            counts: vec![10, 0, 0, 1],
        };
        a.merge(&b);
        assert_eq!(a.query.queries, 8);
        assert_eq!(a.hybridlog.flushes, 9);
        assert_eq!(a.index.chunk_hits, 1);
        assert_eq!(a.query.query_latency.counts, vec![11, 2, 3, 5]);
        // Merging into an empty snapshot adopts the source histogram.
        let mut empty = MetricsSnapshot::default();
        empty.merge(&b);
        assert_eq!(empty.query.query_latency.counts, vec![10, 0, 0, 1]);
    }

    #[test]
    fn shard_rollups_render_with_shard_label() {
        let snap = MetricsSnapshot {
            shards: vec![
                ShardRollup {
                    shard: 0,
                    flushes: 4,
                    ..ShardRollup::default()
                },
                ShardRollup {
                    shard: 1,
                    queries: 9,
                    ..ShardRollup::default()
                },
            ],
            ..MetricsSnapshot::default()
        };
        let text = snap.to_text();
        assert!(text.contains("loom_shard_flushes_total{shard=\"0\"} 4\n"));
        assert!(text.contains("loom_shard_queries_total{shard=\"1\"} 9\n"));
        // Unlabeled totals are untouched by the rollup lines.
        assert!(text.contains("loom_query_queries_total 0\n"));
    }
}
