//! Lock-free counters and gauges for the self-observability registry.
//!
//! [`Counter`] shards its value across cache-line-padded atomics indexed
//! by a per-thread shard id, so concurrent increments from query worker
//! threads never contend on one cache line. Reads sum the shards: they
//! are monotone but not linearizable with respect to in-flight
//! increments, which is the usual contract for monitoring counters.
//! Increments are release and reads acquire, so snapshots that read
//! counters in effect-before-cause order preserve cross-counter
//! invariants (see [`LogObs::snapshot`](super::LogObs)).
//!
//! With the `self-obs` feature disabled every mutating method compiles to
//! an empty body, so instrumented call sites cost nothing.

use crate::sync::atomic::{AtomicU64, Ordering};

/// Number of shards per counter; threads hash onto shards round-robin.
const SHARDS: usize = 8;

/// One cache line per shard so concurrent increments do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// A sharded, monotonically increasing event counter.
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Counter {
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }
}

impl Counter {
    /// Adds `n` to the counter (never blocks).
    ///
    /// Release ordering so that a reader who observes this increment via
    /// [`get`](Counter::get) also observes every write sequenced before
    /// it — that is what lets snapshots preserve cross-counter
    /// invariants like `flushes <= flushes_enqueued` by reading the
    /// effect-side counter first. On x86 this compiles to the same
    /// `lock xadd` a relaxed increment would.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "self-obs")]
        self.shards[shard_of_thread()]
            .0
            .fetch_add(n, Ordering::Release);
        #[cfg(not(feature = "self-obs"))]
        let _ = n;
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value: the sum of all shards (acquire, pairing with the
    /// release increments in [`add`](Counter::add)).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Acquire))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A value that moves both ways (e.g., a queue depth). Gauges are updated
/// by at most a couple of threads, so they are a single atomic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Increments the gauge.
    #[inline]
    pub fn inc(&self) {
        #[cfg(feature = "self-obs")]
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge. Callers must pair every `dec` with a prior
    /// `inc`; the gauge does not defend against underflow.
    #[inline]
    pub fn dec(&self) {
        #[cfg(feature = "self-obs")]
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Stable per-thread shard index: threads pick shards round-robin on
/// first use, spreading writers evenly without a hash of the thread id.
#[cfg(feature = "self-obs")]
fn shard_of_thread() -> usize {
    use crate::sync::atomic::AtomicUsize;
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = std::sync::Arc::new(Counter::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        c.add(5);
        if cfg!(feature = "self-obs") {
            assert_eq!(c.get(), 4_005);
        } else {
            assert_eq!(c.get(), 0, "compiled-out counters must stay zero");
        }
    }

    #[test]
    fn gauge_tracks_in_flight() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        if cfg!(feature = "self-obs") {
            assert_eq!(g.get(), 1);
        } else {
            assert_eq!(g.get(), 0);
        }
    }
}
