//! Engine self-observability: lock-free metrics and slow-query tracing.
//!
//! Loom's thesis is capturing telemetry with minimal probe effect (§3,
//! §7); this module applies the same standard to the engine itself. A
//! per-instance registry of sharded atomic counters, gauges, and
//! fixed-bucket latency histograms is instrumented at every layer:
//!
//! * **hybridlog** — block seals, ingest backpressure waits, flush
//!   queue depth, flush count/latency/bytes, seqlock snapshot retries;
//! * **coordinator / write path** — chunk seals, summary build time and
//!   encoded bytes;
//! * **indexes** — timestamp-index seeks, chunk-summary probes, hits,
//!   and false-positive chunk reads;
//! * **query ops** — query count and latency, per-phase timings,
//!   planner decisions, worker-pool utilization.
//!
//! Read everything at once with
//! [`Loom::metrics_snapshot`](crate::Loom::metrics_snapshot); queries
//! slower than
//! [`Config::slow_query_nanos`](crate::Config::slow_query_nanos) also
//! leave a structured [`SlowQueryTrace`] in a bounded ring buffer read
//! via [`Loom::recent_slow_queries`](crate::Loom::recent_slow_queries).
//!
//! # Overhead
//!
//! Hot-path updates are one relaxed `fetch_add` on a cache-line-padded
//! shard; timing uses one `Instant::now` pair per *phase*, not per
//! record. Building without the `self-obs` cargo feature (on by
//! default) compiles every mutating method to an empty body and removes
//! the clock reads, so instrumented call sites cost nothing; the types
//! and snapshot API remain available and report zeros.

mod counters;
mod latency;
mod slow_query;
mod snapshot;

pub use counters::{Counter, Gauge};
pub use latency::{HistogramCounts, LatencyHistogram};
pub use slow_query::{QueryKind, SlowQueryLog, SlowQueryTrace};
pub use snapshot::{
    CoordinatorMetrics, HybridLogMetrics, IndexMetrics, MetricsSnapshot, NetMetrics, QueryMetrics,
    ShardRollup,
};

use std::sync::Arc;

/// A phase timer that compiles to nothing without `self-obs`: no
/// `Instant::now` syscall is issued and `elapsed_nanos` returns zero.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stopwatch {
    #[cfg(feature = "self-obs")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing (a no-op without `self-obs`).
    #[inline]
    pub(crate) fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "self-obs")]
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since `start` (zero without `self-obs`).
    #[inline]
    pub(crate) fn elapsed_nanos(&self) -> u64 {
        #[cfg(feature = "self-obs")]
        {
            self.start.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "self-obs"))]
        {
            0
        }
    }
}

/// Per-phase wall-clock breakdown of one query, in nanoseconds.
///
/// Operators fill this as they run; it lands in [`SlowQueryTrace`] when
/// the query crosses the slow threshold. Phases that an operator skips
/// (e.g., no tail region) stay zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryPhases {
    /// Planning: timestamp-index seek and range resolution.
    pub plan_nanos: u64,
    /// Summary selection: walking chunk summaries to pick candidates.
    pub select_nanos: u64,
    /// Scanning selected chunks (serial or across the worker pool).
    pub chunk_scan_nanos: u64,
    /// Scanning the unsummarized tail region.
    pub tail_scan_nanos: u64,
}

/// Hybrid-log metrics, shared (via `Arc`) by the record, chunk, and
/// timestamp logs and their flusher threads.
#[derive(Debug, Default)]
pub struct LogObs {
    block_seals: Counter,
    backpressure_waits: Counter,
    flushes_enqueued: Counter,
    flushes: Counter,
    flush_nanos: Counter,
    flushed_bytes: Counter,
    flush_queue: Gauge,
    seqlock_retries: Counter,
    io_retries: Counter,
    io_giveups: Counter,
    degraded_transitions: Counter,
    flush_latency: LatencyHistogram,
}

impl LogObs {
    /// An active block filled up and was swapped for its sibling.
    #[inline]
    pub(crate) fn block_sealed(&self) {
        self.block_seals.inc();
    }

    /// An ingest thread spun waiting for the flusher to free a block.
    #[inline]
    pub(crate) fn backpressure_wait(&self) {
        self.backpressure_waits.inc();
    }

    /// A flush request (seal or partial sync) entered the flush queue.
    #[inline]
    pub(crate) fn flush_enqueued(&self) {
        self.flushes_enqueued.inc();
        self.flush_queue.inc();
    }

    /// The flusher finished writing `bytes` in `nanos`.
    #[inline]
    pub(crate) fn flush_done(&self, nanos: u64, bytes: u64) {
        self.flushes.inc();
        self.flush_nanos.add(nanos);
        self.flushed_bytes.add(bytes);
        self.flush_latency.record(nanos);
        self.flush_queue.dec();
    }

    /// A snapshot read observed a torn generation and retried.
    #[inline]
    pub(crate) fn seqlock_retry(&self) {
        self.seqlock_retries.inc();
    }

    /// A flusher I/O operation failed transiently and will be retried.
    #[inline]
    pub(crate) fn io_retry(&self) {
        self.io_retries.inc();
    }

    /// A flusher exhausted its retry budget and gave up permanently.
    #[inline]
    pub(crate) fn io_giveup(&self) {
        self.io_giveups.inc();
    }

    /// The engine health state left `Healthy` (either into `Degraded`
    /// or straight into `ReadOnly`).
    #[inline]
    pub(crate) fn degraded_transition(&self) {
        self.degraded_transitions.inc();
    }

    fn snapshot(&self) -> HybridLogMetrics {
        // Read effect-side counters before their causes so the snapshot
        // preserves the invariants a monitoring consumer will check:
        // every flush the histogram or `flushes` accounts for was
        // enqueued first (the writer increments `flushes_enqueued`
        // before handing the request to the flusher), so reading
        // completion counters first guarantees
        // `flush_latency.total() <= flushes <= flushes_enqueued`.
        let flush_latency = self.flush_latency.counts();
        let flushes = self.flushes.get();
        let flushes_enqueued = self.flushes_enqueued.get();
        HybridLogMetrics {
            block_seals: self.block_seals.get(),
            backpressure_waits: self.backpressure_waits.get(),
            flushes_enqueued,
            flushes,
            flush_nanos: self.flush_nanos.get(),
            flushed_bytes: self.flushed_bytes.get(),
            flush_queue_depth: self.flush_queue.get(),
            seqlock_retries: self.seqlock_retries.get(),
            io_retries: self.io_retries.get(),
            io_giveups: self.io_giveups.get(),
            degraded_transitions: self.degraded_transitions.get(),
            flush_latency,
        }
    }
}

/// Coordinator / write-path metrics (chunk sealing and recovery).
#[derive(Debug, Default)]
pub struct EngineObs {
    chunks_sealed: Counter,
    summary_build_nanos: Counter,
    summary_bytes: Counter,
    clean_reopens: Counter,
    dirty_recoveries: Counter,
    recovery_nanos: Counter,
    recovery_truncated_bytes: Counter,
    ingest_drops: Counter,
    tier_compactions: Counter,
    tier_chunks_aged: Counter,
    tier_aged_raw_bytes: Counter,
    tier_aged_comp_bytes: Counter,
    tier_slices_pruned: Counter,
    tier_cold_chunk_reads: Counter,
}

impl EngineObs {
    /// A chunk was sealed: its summary took `nanos` to build and encode
    /// into `bytes` bytes.
    #[inline]
    pub(crate) fn chunk_sealed(&self, nanos: u64, bytes: u64) {
        self.chunks_sealed.inc();
        self.summary_build_nanos.add(nanos);
        self.summary_bytes.add(bytes);
    }

    /// A data directory was reopened: via the clean-shutdown fast path,
    /// or through a dirty scan that took `nanos` and discarded
    /// `truncated_bytes` of torn log tails.
    #[inline]
    pub(crate) fn reopened(&self, clean: bool, nanos: u64, truncated_bytes: u64) {
        if clean {
            self.clean_reopens.inc();
        } else {
            self.dirty_recoveries.inc();
            self.recovery_nanos.add(nanos);
            self.recovery_truncated_bytes.add(truncated_bytes);
        }
    }

    /// A record was dropped by the `DropNewest` overload policy.
    #[inline]
    pub(crate) fn ingest_drop(&self) {
        self.ingest_drops.inc();
    }

    /// A compaction batch committed: `chunks` chunks totalling `raw`
    /// uncompressed bytes landed in a cold segment as `comp` bytes.
    #[inline]
    pub(crate) fn compaction(&self, chunks: u64, raw: u64, comp: u64) {
        self.tier_compactions.inc();
        self.tier_chunks_aged.add(chunks);
        self.tier_aged_raw_bytes.add(raw);
        self.tier_aged_comp_bytes.add(comp);
    }

    /// A whole cold slice was dropped by retention.
    #[inline]
    pub(crate) fn slice_pruned(&self) {
        self.tier_slices_pruned.inc();
    }

    /// A query read (and decompressed) one chunk from the cold tier.
    #[inline]
    pub(crate) fn cold_chunk_read(&self) {
        self.tier_cold_chunk_reads.inc();
    }

    fn snapshot(&self) -> CoordinatorMetrics {
        CoordinatorMetrics {
            chunks_sealed: self.chunks_sealed.get(),
            summary_build_nanos: self.summary_build_nanos.get(),
            summary_bytes: self.summary_bytes.get(),
            clean_reopens: self.clean_reopens.get(),
            dirty_recoveries: self.dirty_recoveries.get(),
            recovery_nanos: self.recovery_nanos.get(),
            recovery_truncated_bytes: self.recovery_truncated_bytes.get(),
            ingest_drops: self.ingest_drops.get(),
            tier_compactions: self.tier_compactions.get(),
            tier_chunks_aged: self.tier_chunks_aged.get(),
            tier_aged_raw_bytes: self.tier_aged_raw_bytes.get(),
            tier_aged_comp_bytes: self.tier_aged_comp_bytes.get(),
            tier_slices_pruned: self.tier_slices_pruned.get(),
            tier_cold_chunk_reads: self.tier_cold_chunk_reads.get(),
        }
    }
}

/// Index-layer metrics (timestamp index + chunk summaries).
#[derive(Debug, Default)]
pub struct IndexObs {
    ts_seeks: Counter,
    summary_probes: Counter,
    chunk_hits: Counter,
    false_positive_chunks: Counter,
}

impl IndexObs {
    /// A query used the timestamp index to seek.
    #[inline]
    pub(crate) fn ts_seek(&self) {
        self.ts_seeks.inc();
    }

    /// `n` chunk summaries were examined.
    #[inline]
    pub(crate) fn summary_probes(&self, n: u64) {
        self.summary_probes.add(n);
    }

    /// `n` summaries matched the predicate (their chunks must be read).
    #[inline]
    pub(crate) fn chunk_hits(&self, n: u64) {
        self.chunk_hits.add(n);
    }

    /// A chunk whose summary matched yielded zero matching records.
    #[inline]
    pub(crate) fn false_positive_chunk(&self) {
        self.false_positive_chunks.inc();
    }

    fn snapshot(&self) -> IndexMetrics {
        IndexMetrics {
            ts_seeks: self.ts_seeks.get(),
            summary_probes: self.summary_probes.get(),
            chunk_hits: self.chunk_hits.get(),
            false_positive_chunks: self.false_positive_chunks.get(),
        }
    }
}

/// Query-layer metrics.
#[derive(Debug)]
pub struct QueryObs {
    queries: Counter,
    query_nanos: Counter,
    parallel_queries: Counter,
    pool_tasks: Counter,
    slow_queries: Counter,
    columnar_batches: Counter,
    columnar_rows: Counter,
    query_latency: LatencyHistogram,
    batch_rows: LatencyHistogram,
    batch_selectivity: LatencyHistogram,
}

impl Default for QueryObs {
    fn default() -> Self {
        QueryObs {
            queries: Counter::default(),
            query_nanos: Counter::default(),
            parallel_queries: Counter::default(),
            pool_tasks: Counter::default(),
            slow_queries: Counter::default(),
            columnar_batches: Counter::default(),
            columnar_rows: Counter::default(),
            query_latency: LatencyHistogram::default_nanos(),
            // Rows per decoded batch: 1 .. 4^10 ≈ 1M, exponential.
            batch_rows: LatencyHistogram::new(
                crate::histogram::HistogramSpec::exponential(1.0, 4.0, 10)
                    .expect("static spec is valid"),
            ),
            // Selection percentage per batch: 0..100 in 10% steps.
            batch_selectivity: LatencyHistogram::new(
                crate::histogram::HistogramSpec::uniform(0.0, 100.0, 10)
                    .expect("static spec is valid"),
            ),
        }
    }
}

impl QueryObs {
    /// `n` tasks were submitted to a query worker pool.
    #[inline]
    pub(crate) fn pool_tasks(&self, n: u64) {
        self.pool_tasks.add(n);
    }

    /// A chunk piece was decoded into a column batch of `rows` rows of
    /// which `selected` passed the selection kernel.
    #[inline]
    pub(crate) fn columnar_batch(&self, rows: u64, selected: u64) {
        #[cfg(feature = "self-obs")]
        {
            self.columnar_batches.inc();
            self.columnar_rows.add(rows);
            self.batch_rows.record(rows);
            if let Some(pct) = (selected * 100).checked_div(rows) {
                self.batch_selectivity.record(pct);
            }
        }
        #[cfg(not(feature = "self-obs"))]
        let _ = (rows, selected);
    }

    fn snapshot(&self) -> QueryMetrics {
        // `observe_query` bumps `queries` before recording the latency
        // sample; reading the histogram first therefore guarantees
        // `query_latency.total() <= queries` in any snapshot. Same for
        // the per-batch histograms vs. `columnar_batches` (the counter
        // is bumped first in `columnar_batch`, so histogram totals never
        // exceed it).
        let query_latency = self.query_latency.counts();
        let batch_rows = self.batch_rows.counts();
        let batch_selectivity = self.batch_selectivity.counts();
        QueryMetrics {
            queries: self.queries.get(),
            query_nanos: self.query_nanos.get(),
            parallel_queries: self.parallel_queries.get(),
            pool_tasks: self.pool_tasks.get(),
            slow_queries: self.slow_queries.get(),
            columnar_batches: self.columnar_batches.get(),
            columnar_rows: self.columnar_rows.get(),
            query_latency,
            batch_rows,
            batch_selectivity,
        }
    }
}

/// Network-service metrics, engine-wide (not per shard: connections
/// belong to the instance, not to any one shard's logs).
///
/// Owned by the engine and handed to the network front-end via
/// [`Loom::net_obs`](crate::Loom::net_obs); the server increments, and
/// [`Loom::metrics_snapshot`](crate::Loom::metrics_snapshot) folds the
/// values into [`MetricsSnapshot::net`] under `loom_net_*` names. The
/// mutators are public because the server loop lives in the daemon
/// crate.
#[derive(Debug, Default)]
pub struct NetObs {
    connections: Counter,
    connections_active: Gauge,
    frames_read: Counter,
    frames_written: Counter,
    batches: Counter,
    records: Counter,
    acks: Counter,
    nacks: Counter,
    replays: Counter,
    subscriptions: Counter,
    subscriptions_active: Gauge,
    sub_deliveries: Counter,
    sub_records: Counter,
    slow_consumer_drops: Counter,
    sub_queue_depth: Gauge,
    disconnects: Counter,
}

impl NetObs {
    /// A connection completed its handshake.
    #[inline]
    pub fn connection_opened(&self) {
        self.connections.inc();
        self.connections_active.inc();
    }

    /// A handshaken connection closed (any reason).
    #[inline]
    pub fn connection_closed(&self) {
        self.connections_active.dec();
    }

    /// One frame was decoded off a socket.
    #[inline]
    pub fn frame_read(&self) {
        self.frames_read.inc();
    }

    /// One frame was encoded onto a socket.
    #[inline]
    pub fn frame_written(&self) {
        self.frames_written.inc();
    }

    /// A batch of `records` records was ingested (not a replay).
    #[inline]
    pub fn batch_ingested(&self, records: u64) {
        self.batches.inc();
        self.records.add(records);
    }

    /// An ack frame was sent.
    #[inline]
    pub fn ack_sent(&self) {
        self.acks.inc();
    }

    /// A nack frame was sent.
    #[inline]
    pub fn nack_sent(&self) {
        self.nacks.inc();
    }

    /// A replayed batch was deduplicated (acked without re-ingesting).
    #[inline]
    pub fn replay_deduped(&self) {
        self.replays.inc();
    }

    /// A subscription was registered.
    #[inline]
    pub fn subscription_opened(&self) {
        self.subscriptions.inc();
        self.subscriptions_active.inc();
    }

    /// A subscription ended.
    #[inline]
    pub fn subscription_closed(&self) {
        self.subscriptions_active.dec();
    }

    /// One `SubData` delivery of `records` records was enqueued.
    #[inline]
    pub fn delivery(&self, records: u64) {
        self.sub_deliveries.inc();
        self.sub_records.add(records);
    }

    /// `records` records were shed by a slow-consumer policy.
    #[inline]
    pub fn slow_consumer_drop(&self, records: u64) {
        self.slow_consumer_drops.add(records);
    }

    /// A frame entered a subscriber's delivery queue.
    #[inline]
    pub fn queue_push(&self) {
        self.sub_queue_depth.inc();
    }

    /// A frame left a subscriber's delivery queue.
    #[inline]
    pub fn queue_pop(&self) {
        self.sub_queue_depth.dec();
    }

    /// A connection died from an I/O error, bad frame, or policy kill
    /// (as opposed to an orderly close).
    #[inline]
    pub fn disconnect(&self) {
        self.disconnects.inc();
    }

    pub(crate) fn snapshot(&self) -> NetMetrics {
        NetMetrics {
            connections: self.connections.get(),
            connections_active: self.connections_active.get(),
            frames_read: self.frames_read.get(),
            frames_written: self.frames_written.get(),
            batches: self.batches.get(),
            records: self.records.get(),
            acks: self.acks.get(),
            nacks: self.nacks.get(),
            replays: self.replays.get(),
            subscriptions: self.subscriptions.get(),
            subscriptions_active: self.subscriptions_active.get(),
            sub_deliveries: self.sub_deliveries.get(),
            sub_records: self.sub_records.get(),
            slow_consumer_drops: self.slow_consumer_drops.get(),
            sub_queue_depth: self.sub_queue_depth.get(),
            disconnects: self.disconnects.get(),
        }
    }
}

/// Everything a query terminal reports to [`Obs::observe_query`].
///
/// Fields are read only inside the `self-obs`-gated body of
/// `observe_query`, hence the dead-code allowance when the feature is
/// off.
#[cfg_attr(not(feature = "self-obs"), allow(dead_code))]
pub(crate) struct QueryObservation {
    pub(crate) kind: QueryKind,
    pub(crate) source: u32,
    pub(crate) index: Option<u32>,
    pub(crate) used_ts_index: bool,
    pub(crate) used_chunk_index: bool,
    pub(crate) stats: crate::stats::QueryStats,
    pub(crate) phases: QueryPhases,
    pub(crate) total_nanos: u64,
}

/// The per-instance metrics registry, owned by `engine::Inner`.
#[derive(Debug)]
pub struct Obs {
    /// Hybrid-log metrics; `Arc`-shared with the three logs' flushers.
    pub(crate) log: Arc<LogObs>,
    /// Write-path metrics.
    pub(crate) engine: EngineObs,
    /// Index metrics.
    pub(crate) index: IndexObs,
    /// Query metrics.
    pub(crate) query: QueryObs,
    /// Slow-query ring; `Arc`-shared across every shard of an engine so
    /// traces interleave in one global arrival order.
    slow: Arc<SlowQueryLog>,
    #[cfg_attr(not(feature = "self-obs"), allow(dead_code))]
    slow_threshold_nanos: u64,
}

impl Obs {
    /// Creates a registry; queries slower than `slow_threshold_nanos`
    /// are traced into a ring of `slow_capacity` entries.
    ///
    /// The engine always shares one slow-query ring across shards via
    /// [`Obs::with_slow_log`]; this stand-alone constructor remains for
    /// unit tests of the observability layer itself.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(slow_threshold_nanos: u64, slow_capacity: usize) -> Self {
        Self::with_slow_log(
            slow_threshold_nanos,
            Arc::new(SlowQueryLog::new(slow_capacity)),
        )
    }

    /// [`Obs::new`] with an externally owned slow-query ring, so the
    /// per-shard registries of a sharded engine share one trace log.
    pub(crate) fn with_slow_log(slow_threshold_nanos: u64, slow: Arc<SlowQueryLog>) -> Self {
        Obs {
            log: Arc::new(LogObs::default()),
            engine: EngineObs::default(),
            index: IndexObs::default(),
            query: QueryObs::default(),
            slow,
            slow_threshold_nanos: slow_threshold_nanos.max(1),
        }
    }

    /// Records a completed query: bumps the query-layer counters and, if
    /// it crossed the slow threshold, captures a structured trace.
    pub(crate) fn observe_query(&self, o: QueryObservation) {
        #[cfg(feature = "self-obs")]
        {
            self.query.queries.inc();
            self.query.query_nanos.add(o.total_nanos);
            self.query.query_latency.record(o.total_nanos);
            if o.stats.workers_used > 1 {
                self.query.parallel_queries.inc();
            }
            if o.total_nanos >= self.slow_threshold_nanos {
                self.query.slow_queries.inc();
                self.slow.record(SlowQueryTrace {
                    seq: 0,
                    kind: o.kind,
                    source: o.source,
                    index: o.index,
                    total_nanos: o.total_nanos,
                    phases: o.phases,
                    used_ts_index: o.used_ts_index,
                    used_chunk_index: o.used_chunk_index,
                    workers_used: o.stats.workers_used,
                    summaries_scanned: o.stats.summaries_scanned,
                    chunks_scanned: o.stats.chunks_scanned,
                    chunks_pruned: o
                        .stats
                        .summaries_scanned
                        .saturating_sub(o.stats.chunks_scanned),
                    records_scanned: o.stats.records_scanned,
                    records_matched: o.stats.records_matched,
                });
            }
        }
        #[cfg(not(feature = "self-obs"))]
        let _ = o;
    }

    /// Point-in-time copy of every metric (zeros without `self-obs`).
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hybridlog: self.log.snapshot(),
            coordinator: self.engine.snapshot(),
            index: self.index.snapshot(),
            query: self.query.snapshot(),
            // Network counters are engine-wide, not per shard; the
            // engine's snapshot entry point fills them in.
            net: NetMetrics::default(),
            shards: Vec::new(),
        }
    }

    /// The retained slow-query traces, oldest first.
    pub(crate) fn recent_slow_queries(&self) -> Vec<SlowQueryTrace> {
        self.slow.recent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::QueryStats;

    fn observation(total_nanos: u64) -> QueryObservation {
        QueryObservation {
            kind: QueryKind::IndexedScan,
            source: 1,
            index: Some(2),
            used_ts_index: true,
            used_chunk_index: true,
            stats: QueryStats {
                summaries_scanned: 10,
                chunks_scanned: 3,
                records_scanned: 300,
                records_matched: 42,
                bytes_read: 9_000,
                columnar_batches: 2,
                columnar_rows: 200,
                workers_used: 2,
                shards_fanned_out: 1,
            },
            phases: QueryPhases::default(),
            total_nanos,
        }
    }

    #[test]
    fn observe_query_updates_counters_and_slow_ring() {
        let obs = Obs::new(1_000, 4);
        obs.observe_query(observation(100)); // fast
        obs.observe_query(observation(5_000)); // slow
        let snap = obs.snapshot();
        if cfg!(feature = "self-obs") {
            assert_eq!(snap.query.queries, 2);
            assert_eq!(snap.query.parallel_queries, 2);
            assert_eq!(snap.query.slow_queries, 1);
            let slow = obs.recent_slow_queries();
            assert_eq!(slow.len(), 1);
            assert_eq!(slow[0].total_nanos, 5_000);
            assert_eq!(slow[0].chunks_pruned, 7, "summaries - chunks read");
        } else {
            assert_eq!(snap.query.queries, 0);
            assert!(obs.recent_slow_queries().is_empty());
        }
    }

    #[test]
    fn snapshot_spans_all_layers() {
        let obs = Obs::new(u64::MAX, 4);
        obs.log.block_sealed();
        obs.log.flush_enqueued();
        obs.log.flush_done(1_000, 4096);
        obs.engine.chunk_sealed(2_000, 128);
        obs.index.ts_seek();
        obs.index.summary_probes(5);
        obs.index.chunk_hits(2);
        obs.index.false_positive_chunk();
        let snap = obs.snapshot();
        if cfg!(feature = "self-obs") {
            assert_eq!(snap.hybridlog.block_seals, 1);
            assert_eq!(snap.hybridlog.flushes, 1);
            assert_eq!(snap.hybridlog.flush_queue_depth, 0);
            assert_eq!(snap.hybridlog.flush_latency.total(), 1);
            assert_eq!(snap.coordinator.chunks_sealed, 1);
            assert_eq!(snap.index.summary_probes, 5);
            assert_eq!(snap.index.false_positive_chunks, 1);
        } else {
            // Compiled out: every value is zero. The histograms still
            // carry their (static) bucket bounds, so compare values, not
            // the whole snapshot.
            assert!(snap.named_values().iter().all(|(_, v)| *v == 0));
            assert_eq!(snap.hybridlog.flush_latency.total(), 0);
            assert_eq!(snap.query.query_latency.total(), 0);
        }
    }
}
