//! Synchronization facade for the crate's concurrent modules.
//!
//! Normal builds re-export the `std` primitives unchanged (zero cost).
//! Under `--cfg conc_check` the same names resolve to `conc-check`'s
//! instrumented types, whose every operation is a scheduling point of
//! the deterministic model checker — that is what lets the harnesses in
//! `tests/conc_check.rs` exhaustively explore the seqlock and ping-pong
//! recycle protocols. Outside a model execution the instrumented types
//! degrade to plain `std` behavior, so a `conc_check` build still runs
//! the ordinary test suite.
//!
//! Concurrent code in this crate must import atomics, spin hints, and
//! yields from here, never from `std` directly; the `lint` crate's
//! conventions assume it and DESIGN.md §"Memory model and verification"
//! documents the protocols that depend on it.

#[cfg(not(conc_check))]
pub use std::sync::atomic;

#[cfg(conc_check)]
pub use conc_check::sync::atomic;

/// Spin-wait hint, facaded so model runs deprioritize spinners instead
/// of burning schedules on stutter steps.
pub mod hint {
    #[cfg(not(conc_check))]
    pub use std::hint::spin_loop;

    #[cfg(conc_check)]
    pub use conc_check::sync::hint::spin_loop;

    #[cfg(conc_check)]
    pub use conc_check::sync::hint::{raw_read, raw_write};

    /// Raw shared-buffer read annotation: a model-run scheduling point,
    /// a free no-op here.
    #[cfg(not(conc_check))]
    #[inline(always)]
    pub fn raw_read(_loc: usize) {}

    /// Raw shared-buffer write annotation: a model-run scheduling
    /// point, a free no-op here.
    #[cfg(not(conc_check))]
    #[inline(always)]
    pub fn raw_write(_loc: usize) {}
}

/// Scheduler-yield, facaded so model runs treat it as a voluntary
/// (unpenalized) context switch.
pub mod thread {
    #[cfg(not(conc_check))]
    pub use std::thread::yield_now;

    #[cfg(conc_check)]
    pub use conc_check::sync::thread::yield_now;
}

/// Named locks with the `conc_check` runtime lock-order witness.
///
/// The in-tree `parking_lot` stand-in's `Mutex`/`RwLock` accept a
/// lock-order *class name* (`Mutex::named("loom.registry", …)`);
/// under `--cfg conc_check` every acquisition of a named lock feeds a
/// process-global order table and panics on inversion, printing both
/// acquisition stacks. This is the runtime partner of the static
/// lock-order pass in `crates/lint` (DESIGN.md §10.4); the static
/// graph lives in `results/lock_order.txt`. Lock-holding code in this
/// crate should import the lock types from here.
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
