//! Chunk summaries: the entries of Loom's chunk index (§4.2, Figure 8).
//!
//! A chunk summary is a small, lightweight structure containing metadata
//! about one record-log chunk: its time range, per-source record counts,
//! and — for each index active on a source in the chunk — statistics on
//! the values that fall within each histogram bin. Loom incrementally
//! updates the summary of the *active* chunk as records arrive and appends
//! the finalized summary to the chunk index when the chunk fills up.

use std::collections::BTreeMap;

use crate::durability::{crc32, FRAME_HEADER_SIZE};
use crate::error::{LoomError, Result};

/// Statistics for the records of one chunk whose indexed values fall in
/// one histogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinStats {
    /// Number of records in the bin.
    pub count: u64,
    /// Minimum indexed value.
    pub min: f64,
    /// Maximum indexed value.
    pub max: f64,
    /// Sum of indexed values.
    pub sum: f64,
    /// Earliest record timestamp in the bin.
    pub ts_min: u64,
    /// Latest record timestamp in the bin.
    pub ts_max: u64,
}

impl BinStats {
    /// Statistics of a single observation.
    pub fn of(value: f64, ts: u64) -> Self {
        BinStats {
            count: 1,
            min: value,
            max: value,
            sum: value,
            ts_min: ts,
            ts_max: ts,
        }
    }

    /// Folds another observation into the statistics.
    pub fn observe(&mut self, value: f64, ts: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        self.ts_min = self.ts_min.min(ts);
        self.ts_max = self.ts_max.max(ts);
    }

    /// Merges another bin's statistics into this one.
    pub fn merge(&mut self, other: &BinStats) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.ts_min = self.ts_min.min(other.ts_min);
        self.ts_max = self.ts_max.max(other.ts_max);
    }
}

/// Summary of one record-log chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkSummary {
    /// Sequence number of the chunk (chunk_addr / chunk_size).
    pub chunk_seq: u64,
    /// Record-log address of the chunk's first byte.
    pub chunk_addr: u64,
    /// Length of the chunk in bytes.
    pub chunk_len: u32,
    /// Earliest record timestamp in the chunk (u64::MAX when empty).
    pub ts_min: u64,
    /// Latest record timestamp in the chunk (0 when empty).
    pub ts_max: u64,
    /// Record count per source present in the chunk.
    pub sources: BTreeMap<u32, u64>,
    /// Per-index, per-bin statistics: `indexes[index_id][bin] = stats`.
    pub indexes: BTreeMap<u32, BTreeMap<u32, BinStats>>,
}

impl ChunkSummary {
    /// Creates an empty summary for the chunk starting at `chunk_addr`.
    pub fn new(chunk_seq: u64, chunk_addr: u64, chunk_len: u32) -> Self {
        ChunkSummary {
            chunk_seq,
            chunk_addr,
            chunk_len,
            ts_min: u64::MAX,
            ts_max: 0,
            sources: BTreeMap::new(),
            indexes: BTreeMap::new(),
        }
    }

    /// Records the arrival of a record from `source` at time `ts`.
    pub fn observe_record(&mut self, source: u32, ts: u64) {
        self.ts_min = self.ts_min.min(ts);
        self.ts_max = self.ts_max.max(ts);
        *self.sources.entry(source).or_insert(0) += 1;
    }

    /// Records an indexed value landing in `bin` of index `index_id`.
    pub fn observe_value(&mut self, index_id: u32, bin: u32, value: f64, ts: u64) {
        self.indexes
            .entry(index_id)
            .or_default()
            .entry(bin)
            .and_modify(|s| s.observe(value, ts))
            .or_insert_with(|| BinStats::of(value, ts));
    }

    /// Total records across all sources.
    pub fn record_count(&self) -> u64 {
        self.sources.values().sum()
    }

    /// Whether the chunk holds any record from `source`.
    pub fn has_source(&self, source: u32) -> bool {
        self.sources.contains_key(&source)
    }

    /// The per-bin statistics for `index_id`, if any record was indexed.
    pub fn index_bins(&self, index_id: u32) -> Option<&BTreeMap<u32, BinStats>> {
        self.indexes.get(&index_id)
    }

    /// Serializes the summary as a checksummed frame —
    /// `[body_len u32][crc32 u32][body]` — so the chunk index can be
    /// scanned sequentially and torn or corrupted frames detected.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let len_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // length placeholder
        out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        out.extend_from_slice(&self.chunk_seq.to_le_bytes());
        out.extend_from_slice(&self.chunk_addr.to_le_bytes());
        out.extend_from_slice(&self.chunk_len.to_le_bytes());
        out.extend_from_slice(&self.ts_min.to_le_bytes());
        out.extend_from_slice(&self.ts_max.to_le_bytes());
        out.extend_from_slice(&(self.sources.len() as u32).to_le_bytes());
        for (source, count) in &self.sources {
            out.extend_from_slice(&source.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out.extend_from_slice(&(self.indexes.len() as u32).to_le_bytes());
        for (index_id, bins) in &self.indexes {
            out.extend_from_slice(&index_id.to_le_bytes());
            out.extend_from_slice(&(bins.len() as u32).to_le_bytes());
            for (bin, s) in bins {
                out.extend_from_slice(&bin.to_le_bytes());
                out.extend_from_slice(&s.count.to_le_bytes());
                out.extend_from_slice(&s.min.to_le_bytes());
                out.extend_from_slice(&s.max.to_le_bytes());
                out.extend_from_slice(&s.sum.to_le_bytes());
                out.extend_from_slice(&s.ts_min.to_le_bytes());
                out.extend_from_slice(&s.ts_max.to_le_bytes());
            }
        }
        let total = (out.len() - len_pos - FRAME_HEADER_SIZE) as u32;
        let crc = crc32(&out[len_pos + FRAME_HEADER_SIZE..]);
        out[len_pos..len_pos + 4].copy_from_slice(&total.to_le_bytes());
        out[len_pos + 4..len_pos + 8].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decodes a summary from `bytes` (which must start at the frame
    /// header). Verifies the frame checksum and returns the summary and
    /// the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(ChunkSummary, usize)> {
        let mut c = Cursor::new(bytes);
        let body_len = c.u32()? as usize;
        let stored_crc = c.u32()?;
        if bytes.len() < FRAME_HEADER_SIZE + body_len {
            return Err(LoomError::Corrupt(format!(
                "chunk summary truncated: need {} bytes, have {}",
                FRAME_HEADER_SIZE + body_len,
                bytes.len()
            )));
        }
        let body = &bytes[FRAME_HEADER_SIZE..FRAME_HEADER_SIZE + body_len];
        if crc32(body) != stored_crc {
            return Err(LoomError::Corrupt("chunk summary checksum mismatch".into()));
        }
        let chunk_seq = c.u64()?;
        let chunk_addr = c.u64()?;
        let chunk_len = c.u32()?;
        let ts_min = c.u64()?;
        let ts_max = c.u64()?;
        let n_sources = c.u32()?;
        let mut sources = BTreeMap::new();
        for _ in 0..n_sources {
            let source = c.u32()?;
            let count = c.u64()?;
            sources.insert(source, count);
        }
        let n_indexes = c.u32()?;
        let mut indexes = BTreeMap::new();
        for _ in 0..n_indexes {
            let index_id = c.u32()?;
            let n_bins = c.u32()?;
            let mut bins = BTreeMap::new();
            for _ in 0..n_bins {
                let bin = c.u32()?;
                let stats = BinStats {
                    count: c.u64()?,
                    min: c.f64()?,
                    max: c.f64()?,
                    sum: c.f64()?,
                    ts_min: c.u64()?,
                    ts_max: c.u64()?,
                };
                bins.insert(bin, stats);
            }
            indexes.insert(index_id, bins);
        }
        let consumed = FRAME_HEADER_SIZE + body_len;
        if c.pos > consumed {
            return Err(LoomError::Corrupt(
                "chunk summary body overran its length prefix".into(),
            ));
        }
        Ok((
            ChunkSummary {
                chunk_seq,
                chunk_addr,
                chunk_len,
                ts_min,
                ts_max,
                sources,
                indexes,
            },
            consumed,
        ))
    }
}

/// Minimal little-endian read cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(LoomError::Corrupt(format!(
                "unexpected end of summary at offset {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> ChunkSummary {
        let mut s = ChunkSummary::new(7, 7 * 65536, 65536);
        s.observe_record(1, 100);
        s.observe_record(1, 120);
        s.observe_record(2, 110);
        s.observe_value(10, 1, 5.0, 100);
        s.observe_value(10, 1, 7.0, 120);
        s.observe_value(10, 3, 999.0, 120);
        s.observe_value(11, 0, -2.5, 110);
        s
    }

    #[test]
    fn observe_tracks_stats() {
        let s = sample_summary();
        assert_eq!(s.ts_min, 100);
        assert_eq!(s.ts_max, 120);
        assert_eq!(s.record_count(), 3);
        assert_eq!(s.sources[&1], 2);
        assert_eq!(s.sources[&2], 1);
        let bins = s.index_bins(10).unwrap();
        assert_eq!(bins[&1].count, 2);
        assert_eq!(bins[&1].min, 5.0);
        assert_eq!(bins[&1].max, 7.0);
        assert_eq!(bins[&1].sum, 12.0);
        assert_eq!(bins[&3].count, 1);
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = sample_summary();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let (decoded, consumed) = ChunkSummary::decode(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded, s);
    }

    #[test]
    fn sequential_summaries_decode_in_order() {
        let mut buf = Vec::new();
        let mut expected = Vec::new();
        for i in 0..5 {
            let mut s = ChunkSummary::new(i, i * 4096, 4096);
            s.observe_record(1, i * 10);
            s.observe_value(1, (i % 3) as u32, i as f64, i * 10);
            s.encode(&mut buf);
            expected.push(s);
        }
        let mut pos = 0;
        let mut got = Vec::new();
        while pos < buf.len() {
            let (s, n) = ChunkSummary::decode(&buf[pos..]).unwrap();
            pos += n;
            got.push(s);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn truncated_summary_is_corrupt() {
        let s = sample_summary();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert!(ChunkSummary::decode(&buf[..buf.len() - 1]).is_err());
        assert!(ChunkSummary::decode(&buf[..3]).is_err());
    }

    #[test]
    fn flipped_body_byte_is_detected() {
        let s = sample_summary();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        buf[FRAME_HEADER_SIZE + 5] ^= 0x10;
        let err = ChunkSummary::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn empty_summary_round_trips() {
        let s = ChunkSummary::new(0, 0, 4096);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let (decoded, n) = ChunkSummary::decode(&buf).unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(decoded, s);
        assert_eq!(decoded.record_count(), 0);
    }

    #[test]
    fn merge_combines_bins() {
        let mut a = BinStats::of(5.0, 10);
        let b = BinStats::of(1.0, 30);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.sum, 6.0);
        assert_eq!(a.ts_min, 10);
        assert_eq!(a.ts_max, 30);
    }
}
