//! Record-log entry format (§4.2).
//!
//! The record log interleaves records from many sources. Each entry is a
//! fixed 24-byte header followed by the payload. Records from the same
//! source are linked into a *record chain* via the header's back pointer.
//!
//! The record log is divided into fixed-size chunks (the unit of sparse
//! indexing). Records never straddle a chunk boundary: when a record does
//! not fit in the active chunk's remainder, Loom writes a padding entry
//! (or raw zeros when fewer than a header's worth of bytes remain) and
//! starts the record in the next chunk. Every chunk therefore begins at a
//! record header, making chunk scans self-contained.

use crate::error::{LoomError, Result};

/// Size in bytes of a record header.
pub const RECORD_HEADER_SIZE: usize = 24;

/// Sentinel source ID marking a padding entry at the end of a chunk.
pub const SOURCE_PAD: u32 = u32::MAX;

/// Sentinel "no previous record" back pointer.
///
/// Address 0 is a valid log address, so the nil pointer is `u64::MAX`.
pub const NIL_ADDR: u64 = u64::MAX;

/// Header of a record-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Source the record belongs to (0 is invalid and terminates chunk
    /// scans; [`SOURCE_PAD`] marks padding).
    pub source: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// Address of the previous record from the same source, or [`NIL_ADDR`].
    pub prev: u64,
    /// Internal (arrival) timestamp in nanoseconds (§5.2).
    pub ts: u64,
}

impl RecordHeader {
    /// Encodes the header into a fixed-size little-endian buffer.
    pub fn encode(&self) -> [u8; RECORD_HEADER_SIZE] {
        let mut buf = [0u8; RECORD_HEADER_SIZE];
        buf[0..4].copy_from_slice(&self.source.to_le_bytes());
        buf[4..8].copy_from_slice(&self.len.to_le_bytes());
        buf[8..16].copy_from_slice(&self.prev.to_le_bytes());
        buf[16..24].copy_from_slice(&self.ts.to_le_bytes());
        buf
    }

    /// Decodes a header from a buffer of at least [`RECORD_HEADER_SIZE`] bytes.
    pub fn decode(buf: &[u8]) -> Result<RecordHeader> {
        if buf.len() < RECORD_HEADER_SIZE {
            return Err(LoomError::Corrupt(format!(
                "record header truncated: {} bytes",
                buf.len()
            )));
        }
        Ok(RecordHeader {
            source: u32::from_le_bytes(buf[0..4].try_into().expect("length checked")),
            len: u32::from_le_bytes(buf[4..8].try_into().expect("length checked")),
            prev: u64::from_le_bytes(buf[8..16].try_into().expect("length checked")),
            ts: u64::from_le_bytes(buf[16..24].try_into().expect("length checked")),
        })
    }

    /// Whether this header marks a padding entry.
    pub fn is_pad(&self) -> bool {
        self.source == SOURCE_PAD
    }

    /// Total entry size (header plus payload).
    pub fn entry_size(&self) -> usize {
        RECORD_HEADER_SIZE + self.len as usize
    }
}

/// A record parsed out of a chunk, with its address and borrowed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRecord<'a> {
    /// Log address of the record's header.
    pub addr: u64,
    /// The record header.
    pub header: RecordHeader,
    /// The record payload.
    pub payload: &'a [u8],
}

/// Iterates over the records stored in one chunk's raw bytes.
///
/// `base_addr` is the log address of `bytes[0]`. Padding entries are
/// skipped; iteration ends at a zeroed (source 0) header or the end of the
/// buffer. A partially written final chunk may simply end early.
pub struct ChunkIter<'a> {
    bytes: &'a [u8],
    base_addr: u64,
    pos: usize,
}

impl<'a> ChunkIter<'a> {
    /// Creates an iterator over `bytes`, whose first byte lives at log
    /// address `base_addr`.
    pub fn new(bytes: &'a [u8], base_addr: u64) -> Self {
        ChunkIter {
            bytes,
            base_addr,
            pos: 0,
        }
    }
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = Result<ChunkRecord<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos + RECORD_HEADER_SIZE > self.bytes.len() {
                return None;
            }
            let header = match RecordHeader::decode(&self.bytes[self.pos..]) {
                Ok(h) => h,
                Err(e) => return Some(Err(e)),
            };
            if header.source == 0 {
                // Zeroed tail: end of valid data in this chunk.
                return None;
            }
            let payload_start = self.pos + RECORD_HEADER_SIZE;
            let payload_end = payload_start + header.len as usize;
            if payload_end > self.bytes.len() {
                return Some(Err(LoomError::Corrupt(format!(
                    "entry at offset {} overruns chunk ({} > {})",
                    self.pos,
                    payload_end,
                    self.bytes.len()
                ))));
            }
            let addr = self.base_addr + self.pos as u64;
            self.pos = payload_end;
            if header.is_pad() {
                continue;
            }
            return Some(Ok(ChunkRecord {
                addr,
                header,
                payload: &self.bytes[payload_start..payload_end],
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = RecordHeader {
            source: 42,
            len: 48,
            prev: 0xdead_beef_cafe,
            ts: 123_456_789,
        };
        let buf = h.encode();
        assert_eq!(RecordHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(RecordHeader::decode(&[0u8; 23]).is_err());
    }

    #[test]
    fn chunk_iter_walks_records_and_skips_padding() {
        let mut chunk = Vec::new();
        let mk = |source: u32, payload: &[u8], prev: u64, ts: u64| {
            let h = RecordHeader {
                source,
                len: payload.len() as u32,
                prev,
                ts,
            };
            let mut v = h.encode().to_vec();
            v.extend_from_slice(payload);
            v
        };
        chunk.extend(mk(1, b"aaaa", NIL_ADDR, 10));
        chunk.extend(mk(2, b"bb", NIL_ADDR, 11));
        // Padding entry.
        chunk.extend(mk(SOURCE_PAD, &[0u8; 8], 0, 0));
        chunk.extend(mk(1, b"cccccc", 0, 12));
        // Zeroed tail.
        chunk.extend(std::iter::repeat_n(0u8, 40));

        let records: Vec<_> = ChunkIter::new(&chunk, 1000)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].addr, 1000);
        assert_eq!(records[0].payload, b"aaaa");
        assert_eq!(records[1].header.source, 2);
        assert_eq!(records[2].payload, b"cccccc");
        assert_eq!(records[2].header.prev, 0);
    }

    #[test]
    fn chunk_iter_stops_at_short_zero_tail() {
        // Fewer than a header's worth of zero bytes at the end.
        let h = RecordHeader {
            source: 1,
            len: 4,
            prev: NIL_ADDR,
            ts: 5,
        };
        let mut chunk = h.encode().to_vec();
        chunk.extend_from_slice(b"wxyz");
        chunk.extend_from_slice(&[0u8; 10]);
        let records: Vec<_> = ChunkIter::new(&chunk, 0)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn chunk_iter_reports_overrun_as_corrupt() {
        let h = RecordHeader {
            source: 1,
            len: 1000,
            prev: NIL_ADDR,
            ts: 5,
        };
        let mut chunk = h.encode().to_vec();
        chunk.extend_from_slice(b"short");
        let mut it = ChunkIter::new(&chunk, 0);
        assert!(matches!(it.next(), Some(Err(LoomError::Corrupt(_)))));
    }

    #[test]
    fn empty_chunk_yields_nothing() {
        assert!(ChunkIter::new(&[], 0).next().is_none());
        assert!(ChunkIter::new(&[0u8; 64], 0).next().is_none());
    }
}
