//! Record-log entry format (§4.2).
//!
//! The record log interleaves records from many sources. Each entry is a
//! fixed 28-byte header followed by the payload. Records from the same
//! source are linked into a *record chain* via the header's back pointer.
//! The header's final field is a CRC32 over the first 24 header bytes and
//! the payload, so torn tails and bit flips are detected during recovery
//! and chunk scans instead of being mis-parsed as records.
//!
//! The record log is divided into fixed-size chunks (the unit of sparse
//! indexing). Records never straddle a chunk boundary: when a record does
//! not fit in the active chunk's remainder, Loom writes a padding entry
//! (or raw zeros when fewer than a header's worth of bytes remain) and
//! starts the record in the next chunk. Every chunk therefore begins at a
//! record header, making chunk scans self-contained.

use crate::durability::{crc32_pair, LogId};
use crate::error::{LoomError, Result};

/// Size in bytes of a record header (including its trailing CRC32).
pub const RECORD_HEADER_SIZE: usize = 28;

/// Offset of the CRC32 field inside an encoded header; the checksum
/// covers `header[0..RECORD_CRC_OFFSET]` followed by the payload.
pub const RECORD_CRC_OFFSET: usize = 24;

/// Sentinel source ID marking a padding entry at the end of a chunk.
pub const SOURCE_PAD: u32 = u32::MAX;

/// Sentinel "no previous record" back pointer.
///
/// Address 0 is a valid log address, so the nil pointer is `u64::MAX`.
pub const NIL_ADDR: u64 = u64::MAX;

/// Header of a record-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Source the record belongs to (0 is invalid and terminates chunk
    /// scans; [`SOURCE_PAD`] marks padding).
    pub source: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// Address of the previous record from the same source, or [`NIL_ADDR`].
    pub prev: u64,
    /// Internal (arrival) timestamp in nanoseconds (§5.2).
    pub ts: u64,
}

impl RecordHeader {
    /// Encodes the header into its fixed-size little-endian form,
    /// stamping a CRC32 over the header fields and `payload`.
    ///
    /// `payload` must be the exact bytes appended after the header (its
    /// length must equal `self.len`).
    pub fn encode(&self, payload: &[u8]) -> [u8; RECORD_HEADER_SIZE] {
        debug_assert_eq!(payload.len(), self.len as usize, "payload length mismatch");
        let mut buf = [0u8; RECORD_HEADER_SIZE];
        buf[0..4].copy_from_slice(&self.source.to_le_bytes());
        buf[4..8].copy_from_slice(&self.len.to_le_bytes());
        buf[8..16].copy_from_slice(&self.prev.to_le_bytes());
        buf[16..24].copy_from_slice(&self.ts.to_le_bytes());
        let crc = crc32_pair(&buf[..RECORD_CRC_OFFSET], payload);
        buf[24..28].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a header from a buffer of at least [`RECORD_HEADER_SIZE`]
    /// bytes. The entry checksum is *not* verified here (the payload is
    /// not available); use [`RecordHeader::verify`] once it is.
    pub fn decode(buf: &[u8]) -> Result<RecordHeader> {
        if buf.len() < RECORD_HEADER_SIZE {
            return Err(LoomError::Corrupt(format!(
                "record header truncated: {} bytes",
                buf.len()
            )));
        }
        Ok(RecordHeader {
            source: u32::from_le_bytes(buf[0..4].try_into().expect("length checked")),
            len: u32::from_le_bytes(buf[4..8].try_into().expect("length checked")),
            prev: u64::from_le_bytes(buf[8..16].try_into().expect("length checked")),
            ts: u64::from_le_bytes(buf[16..24].try_into().expect("length checked")),
        })
    }

    /// Verifies the CRC32 stored in an encoded header against the header
    /// bytes and the payload.
    pub fn verify(header_buf: &[u8], payload: &[u8]) -> bool {
        debug_assert!(header_buf.len() >= RECORD_HEADER_SIZE);
        let stored = u32::from_le_bytes(
            header_buf[RECORD_CRC_OFFSET..RECORD_HEADER_SIZE]
                .try_into()
                .expect("length checked"),
        );
        crc32_pair(&header_buf[..RECORD_CRC_OFFSET], payload) == stored
    }

    /// Whether this header marks a padding entry.
    pub fn is_pad(&self) -> bool {
        self.source == SOURCE_PAD
    }

    /// Total entry size (header plus payload).
    pub fn entry_size(&self) -> usize {
        RECORD_HEADER_SIZE + self.len as usize
    }
}

/// A record parsed out of a chunk, with its address and borrowed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRecord<'a> {
    /// Log address of the record's header.
    pub addr: u64,
    /// The record header.
    pub header: RecordHeader,
    /// The record payload.
    pub payload: &'a [u8],
}

/// Iterates over the records stored in one chunk's raw bytes, verifying
/// each entry's checksum.
///
/// `base_addr` is the log address of `bytes[0]`. Padding entries are
/// skipped; iteration ends at a zeroed (source 0) header or the end of the
/// buffer. A partially written final chunk may simply end early. An entry
/// whose checksum does not match yields
/// [`LoomError::CorruptLog`] with the entry's log address.
pub struct ChunkIter<'a> {
    bytes: &'a [u8],
    base_addr: u64,
    pos: usize,
}

impl<'a> ChunkIter<'a> {
    /// Creates an iterator over `bytes`, whose first byte lives at log
    /// address `base_addr`.
    pub fn new(bytes: &'a [u8], base_addr: u64) -> Self {
        ChunkIter {
            bytes,
            base_addr,
            pos: 0,
        }
    }
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = Result<ChunkRecord<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos + RECORD_HEADER_SIZE > self.bytes.len() {
                return None;
            }
            let header_buf = &self.bytes[self.pos..self.pos + RECORD_HEADER_SIZE];
            let header = match RecordHeader::decode(header_buf) {
                Ok(h) => h,
                Err(e) => return Some(Err(e)),
            };
            if header.source == 0 {
                // Zeroed tail: end of valid data in this chunk.
                return None;
            }
            let payload_start = self.pos + RECORD_HEADER_SIZE;
            let payload_end = payload_start + header.len as usize;
            if payload_end > self.bytes.len() {
                return Some(Err(LoomError::CorruptLog {
                    log: LogId::Records,
                    addr: self.base_addr + self.pos as u64,
                    reason: format!(
                        "entry overruns chunk ({} > {})",
                        payload_end,
                        self.bytes.len()
                    ),
                }));
            }
            let payload = &self.bytes[payload_start..payload_end];
            if !RecordHeader::verify(header_buf, payload) {
                return Some(Err(LoomError::CorruptLog {
                    log: LogId::Records,
                    addr: self.base_addr + self.pos as u64,
                    reason: "record checksum mismatch".into(),
                }));
            }
            let addr = self.base_addr + self.pos as u64;
            self.pos = payload_end;
            if header.is_pad() {
                continue;
            }
            return Some(Ok(ChunkRecord {
                addr,
                header,
                payload,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = RecordHeader {
            source: 42,
            len: 4,
            prev: 0xdead_beef_cafe,
            ts: 123_456_789,
        };
        let buf = h.encode(b"abcd");
        assert_eq!(RecordHeader::decode(&buf).unwrap(), h);
        assert!(RecordHeader::verify(&buf, b"abcd"));
        assert!(!RecordHeader::verify(&buf, b"abce"));
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(RecordHeader::decode(&[0u8; RECORD_HEADER_SIZE - 1]).is_err());
    }

    fn mk(source: u32, payload: &[u8], prev: u64, ts: u64) -> Vec<u8> {
        let h = RecordHeader {
            source,
            len: payload.len() as u32,
            prev,
            ts,
        };
        let mut v = h.encode(payload).to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn chunk_iter_walks_records_and_skips_padding() {
        let mut chunk = Vec::new();
        chunk.extend(mk(1, b"aaaa", NIL_ADDR, 10));
        chunk.extend(mk(2, b"bb", NIL_ADDR, 11));
        // Padding entry.
        chunk.extend(mk(SOURCE_PAD, &[0u8; 8], 0, 0));
        chunk.extend(mk(1, b"cccccc", 0, 12));
        // Zeroed tail.
        chunk.extend(std::iter::repeat_n(0u8, 40));

        let records: Vec<_> = ChunkIter::new(&chunk, 1000)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].addr, 1000);
        assert_eq!(records[0].payload, b"aaaa");
        assert_eq!(records[1].header.source, 2);
        assert_eq!(records[2].payload, b"cccccc");
        assert_eq!(records[2].header.prev, 0);
    }

    #[test]
    fn chunk_iter_stops_at_short_zero_tail() {
        // Fewer than a header's worth of zero bytes at the end.
        let mut chunk = mk(1, b"wxyz", NIL_ADDR, 5);
        chunk.extend_from_slice(&[0u8; 10]);
        let records: Vec<_> = ChunkIter::new(&chunk, 0)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn chunk_iter_reports_overrun_as_corrupt() {
        let h = RecordHeader {
            source: 1,
            len: 1000,
            prev: NIL_ADDR,
            ts: 5,
        };
        let mut chunk = h.encode(&[0u8; 1000]).to_vec();
        chunk.extend_from_slice(b"short");
        let mut it = ChunkIter::new(&chunk, 0);
        assert!(matches!(
            it.next(),
            Some(Err(LoomError::CorruptLog {
                log: LogId::Records,
                ..
            }))
        ));
    }

    #[test]
    fn chunk_iter_detects_flipped_payload_byte() {
        let mut chunk = mk(1, b"payload!", NIL_ADDR, 7);
        let flip = RECORD_HEADER_SIZE + 2;
        chunk[flip] ^= 0x40;
        let mut it = ChunkIter::new(&chunk, 512);
        match it.next() {
            Some(Err(LoomError::CorruptLog { log, addr, reason })) => {
                assert_eq!(log, LogId::Records);
                assert_eq!(addr, 512);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn empty_chunk_yields_nothing() {
        assert!(ChunkIter::new(&[], 0).next().is_none());
        assert!(ChunkIter::new(&[0u8; 64], 0).next().is_none());
    }
}
