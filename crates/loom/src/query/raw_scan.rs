//! The raw scan operator (§4.3).
//!
//! Retrieves all records of a source within a time range, iterating from
//! the most to the least recent record. The operator uses the timestamp
//! index to find the source's first record *after* the range (bounding
//! the chain walk for historical queries), then walks the source's record
//! chain backward via the headers' back pointers.

use super::view::{ColdChunkCache, QueryView};
use super::{Record, TimeRange};
use crate::error::Result;
use crate::record::{NIL_ADDR, RECORD_HEADER_SIZE};
use crate::registry::SourceId;
use crate::stats::QueryStats;
use crate::ts_index::TsIndexView;

/// Executes a raw scan over `view`.
pub(crate) fn run<F>(
    view: &QueryView<'_>,
    source: SourceId,
    range: TimeRange,
    mut f: F,
) -> Result<QueryStats>
where
    F: FnMut(Record<'_>),
{
    let mut stats = QueryStats::default();
    let tsv = TsIndexView::new(&view.ts);

    // Start the chain walk at the first record after the range if the
    // timestamp index knows one; otherwise at the source's latest record.
    let start = match tsv.first_mark_after(source.0, range.end)? {
        Some(mark) => mark.target,
        None => view.source_last,
    };
    if start == NIL_ADDR {
        return Ok(stats);
    }

    let mut addr = start;
    let mut payload = Vec::new();
    let mut cache = ColdChunkCache::default();
    loop {
        if addr < view.cold.pruned_below() {
            // The record was dropped by retention, and the chain walks
            // backward in time: everything it still points at is older
            // and dropped too.
            break;
        }
        let (header, header_buf) = view.read_header(addr, &mut cache)?;
        debug_assert_eq!(header.source, source.0, "record chain crossed sources");
        stats.records_scanned += 1;
        stats.bytes_read += RECORD_HEADER_SIZE as u64;
        if header.ts < range.start {
            // The chain is ordered by arrival time: everything earlier is
            // older still.
            break;
        }
        if header.ts <= range.end {
            view.read_payload(addr, &header, &header_buf, &mut payload, &mut cache)?;
            stats.bytes_read += header.len as u64;
            stats.records_matched += 1;
            f(Record {
                addr,
                source,
                ts: header.ts,
                payload: &payload,
            });
        }
        if header.prev == NIL_ADDR {
            break;
        }
        addr = header.prev;
    }
    Ok(stats)
}
