//! The indexed aggregate operator (§4.3).
//!
//! Distributive aggregates (count, sum, min, max, mean) are computed from
//! chunk-summary bins whenever a chunk's time range lies fully inside the
//! query range, falling back to exact chunk scans for partially covered
//! chunks and the unsummarized tail region.
//!
//! Holistic percentiles use the bins-as-CDF strategy: a first pass
//! accumulates per-bin counts to locate the bin containing the requested
//! rank; a second pass collects only that bin's values and selects the
//! rank within it. This avoids materializing or sorting the whole data
//! set.
//!
//! Exact chunk scans (the partially-covered chunks of every aggregate and
//! the value collection of percentile phase B) are independent per chunk,
//! so they run on the worker pool when `QueryOptions::parallelism` (or
//! `Config::query_threads`) asks for more than one thread. Both the serial
//! and parallel paths produce one partial result *per chunk* and merge
//! them in chunk order — the floating-point association is therefore
//! identical for every pool size, and results are bit-for-bit
//! reproducible.

use super::columnar::{self, ScanBuffers};
use super::executor;
use super::planner::{self, DecodeMode};
use super::view::{QueryView, RegionScan, ScanControl};
use super::{Aggregate, AggregateResult, IndexMeta, QueryOptions, TimeRange};
use crate::error::{LoomError, Result};
use crate::obs::{QueryPhases, Stopwatch};
use crate::stats::QueryStats;
use crate::summary::BinStats;

/// Runs `task(bufs, chunk_addr)` over every chunk and returns the per-chunk
/// partial results in chunk order, folding each chunk's scan counters into
/// `stats` (also in chunk order).
///
/// With one worker the chunks are scanned inline on the calling thread
/// with a single pooled scratch buffer; otherwise they fan out across the
/// pool. Both paths run the same per-chunk closure and merge in the same
/// order, so the result is independent of the worker count.
fn for_chunks<T, F>(
    view: &QueryView<'_>,
    workers: usize,
    chunks: &[u64],
    stats: &mut QueryStats,
    task: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut ScanBuffers, u64) -> Result<(T, RegionScan)> + Sync,
{
    let outputs = if workers <= 1 {
        let mut bufs = view.bufs.acquire();
        let mut outputs = Vec::with_capacity(chunks.len());
        for &chunk_addr in chunks {
            outputs.push(task(&mut bufs, chunk_addr)?);
        }
        view.bufs.release(bufs);
        outputs
    } else {
        executor::map_chunks(view.bufs, workers, chunks, |bufs, chunk_addr| {
            task(bufs, chunk_addr)
        })?
    };
    let mut results = Vec::with_capacity(outputs.len());
    for (value, out) in outputs {
        out.fold_into(stats);
        results.push(value);
    }
    Ok(results)
}

/// Per-chunk exact bin counting: one `counts`-shaped vector per chunk.
fn count_chunk_exact(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    bin_count: usize,
    mode: DecodeMode,
    bufs: &mut ScanBuffers,
    chunk_addr: u64,
) -> Result<(Vec<u64>, RegionScan)> {
    let mut counts = vec![0u64; bin_count];
    match mode {
        DecodeMode::Columnar(desc) => {
            let out = columnar::decode_chunk(
                view,
                chunk_addr,
                meta.source.0,
                desc,
                Some(range.end),
                bufs,
            )?;
            let selected = bufs.cols.select_time(range);
            view.obs
                .query
                .columnar_batch(bufs.cols.len() as u64, selected);
            for v in bufs.cols.selected_values() {
                if let Some(bin) = meta.spec.bin_of(v) {
                    counts[bin] += 1;
                }
            }
            Ok((counts, out.scan))
        }
        DecodeMode::RecordAtATime => {
            let out = view.scan_chunk_with_buf(chunk_addr, &mut bufs.chunk, |rec| {
                if rec.header.ts > range.end {
                    return ScanControl::Stop;
                }
                if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                    if let Some(v) = (meta.extractor)(rec.payload) {
                        if let Some(bin) = meta.spec.bin_of(v) {
                            counts[bin] += 1;
                        }
                    }
                }
                ScanControl::Continue
            })?;
            Ok((counts, out))
        }
    }
}

/// Exact bin counting for the unsummarized tail region (always serial:
/// the region is at most one chunk of not-yet-sealed data).
fn count_region_exact(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    plan_region_start: u64,
    counts: &mut [u64],
    stats: &mut QueryStats,
) -> Result<()> {
    let out = view.scan_region(plan_region_start, view.rec.watermark(), |rec| {
        if rec.header.ts > range.end {
            return ScanControl::Stop;
        }
        if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
            if let Some(v) = (meta.extractor)(rec.payload) {
                if let Some(bin) = meta.spec.bin_of(v) {
                    counts[bin] += 1;
                }
            }
        }
        ScanControl::Continue
    })?;
    out.fold_into(stats);
    Ok(())
}

/// Computes the per-bin record counts for an index over a time range
/// (the CDF of §4.3, exposed for composition — e.g., the distributed
/// coordinator merges per-node bin counts before selecting a global
/// percentile bin).
pub(crate) fn bin_counts(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    opts: QueryOptions,
    phases: &mut QueryPhases,
) -> Result<(Vec<u64>, QueryStats)> {
    let mut stats = QueryStats {
        workers_used: 1,
        ..QueryStats::default()
    };
    let plan_timer = Stopwatch::start();
    let plan = planner::plan(view, range)?;
    phases.plan_nanos += plan_timer.elapsed_nanos();
    let bin_count = meta.spec.bin_count();
    let mut counts = vec![0u64; bin_count];
    let mut partial_chunks: Vec<u64> = Vec::new();
    let select_timer = Stopwatch::start();
    planner::for_each_relevant_summary(
        view,
        &plan,
        range,
        &mut stats.summaries_scanned,
        |summary, fully| {
            if !summary.has_source(meta.source.0) {
                return Ok(());
            }
            if fully {
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    for (bin, s) in bins {
                        counts[*bin as usize] += s.count;
                    }
                }
            } else {
                partial_chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;
    phases.select_nanos += select_timer.elapsed_nanos();
    view.obs.index.summary_probes(stats.summaries_scanned);
    view.obs.index.chunk_hits(partial_chunks.len() as u64);
    let mode = planner::decode_mode(meta, opts);
    let workers = view.workers(opts.parallelism, partial_chunks.len());
    stats.workers_used = stats.workers_used.max(workers as u64);
    if workers > 1 {
        view.obs.query.pool_tasks(partial_chunks.len() as u64);
    }
    let scan_timer = Stopwatch::start();
    let per_chunk = for_chunks(view, workers, &partial_chunks, &mut stats, |bufs, addr| {
        count_chunk_exact(view, meta, range, bin_count, mode, bufs, addr)
    })?;
    for chunk_counts in per_chunk {
        for (total, c) in counts.iter_mut().zip(chunk_counts) {
            *total += c;
        }
    }
    phases.chunk_scan_nanos += scan_timer.elapsed_nanos();
    if plan.region_relevant {
        let tail_timer = Stopwatch::start();
        count_region_exact(
            view,
            meta,
            range,
            plan.region_start,
            &mut counts,
            &mut stats,
        )?;
        phases.tail_scan_nanos += tail_timer.elapsed_nanos();
    }
    Ok((counts, stats))
}

/// Executes an indexed aggregate over `view`.
pub(crate) fn run(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    method: Aggregate,
    opts: QueryOptions,
    phases: &mut QueryPhases,
) -> Result<AggregateResult> {
    match method {
        Aggregate::Percentile(p) => {
            if !(0.0..=100.0).contains(&p) {
                return Err(LoomError::InvalidQuery(format!(
                    "percentile {p} outside [0, 100]"
                )));
            }
            percentile(view, meta, range, p, opts, phases)
        }
        _ => distributive(view, meta, range, method, opts, phases),
    }
}

/// Accumulator for distributive aggregates.
#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn fold_bin(&mut self, s: &BinStats) {
        self.count += s.count;
        self.sum += s.sum;
        self.min = self.min.min(s.min);
        self.max = self.max.max(s.max);
    }

    /// Folds another accumulator in (per-chunk partials merged in chunk
    /// order so float association is the same on every pool size).
    fn merge(&mut self, o: &Acc) {
        self.count += o.count;
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    fn finish(&self, method: Aggregate) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(match method {
            Aggregate::Count => self.count as f64,
            Aggregate::Sum => self.sum,
            Aggregate::Min => self.min,
            Aggregate::Max => self.max,
            Aggregate::Mean => self.sum / self.count as f64,
            Aggregate::Percentile(_) => unreachable!("handled separately"),
        })
    }
}

fn distributive(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    method: Aggregate,
    opts: QueryOptions,
    phases: &mut QueryPhases,
) -> Result<AggregateResult> {
    let mut stats = QueryStats {
        workers_used: 1,
        ..QueryStats::default()
    };
    let plan_timer = Stopwatch::start();
    let plan = planner::plan(view, range)?;
    phases.plan_nanos += plan_timer.elapsed_nanos();
    let mut acc = Acc::new();
    let mut partial_chunks: Vec<u64> = Vec::new();

    let select_timer = Stopwatch::start();
    planner::for_each_relevant_summary(
        view,
        &plan,
        range,
        &mut stats.summaries_scanned,
        |summary, fully| {
            if !summary.has_source(meta.source.0) {
                return Ok(());
            }
            if fully {
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    for s in bins.values() {
                        acc.fold_bin(s);
                    }
                }
            } else {
                partial_chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;

    phases.select_nanos += select_timer.elapsed_nanos();
    view.obs.index.summary_probes(stats.summaries_scanned);
    view.obs.index.chunk_hits(partial_chunks.len() as u64);

    // Exact aggregation for chunks only partially inside the time range:
    // one partial accumulator per chunk, merged in chunk order. The
    // columnar path feeds the selected values to the *same* accumulator
    // in the same chunk order, so float association is unchanged.
    let mode = planner::decode_mode(meta, opts);
    let workers = view.workers(opts.parallelism, partial_chunks.len());
    stats.workers_used = stats.workers_used.max(workers as u64);
    if workers > 1 {
        view.obs.query.pool_tasks(partial_chunks.len() as u64);
    }
    let scan_timer = Stopwatch::start();
    let per_chunk = for_chunks(view, workers, &partial_chunks, &mut stats, |bufs, addr| {
        let mut chunk_acc = Acc::new();
        match mode {
            DecodeMode::Columnar(desc) => {
                let out =
                    columnar::decode_chunk(view, addr, meta.source.0, desc, Some(range.end), bufs)?;
                let selected = bufs.cols.select_time(range);
                view.obs
                    .query
                    .columnar_batch(bufs.cols.len() as u64, selected);
                for v in bufs.cols.selected_values() {
                    chunk_acc.observe(v);
                }
                Ok((chunk_acc, out.scan))
            }
            DecodeMode::RecordAtATime => {
                let out = view.scan_chunk_with_buf(addr, &mut bufs.chunk, |rec| {
                    if rec.header.ts > range.end {
                        return ScanControl::Stop;
                    }
                    if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                        if let Some(v) = (meta.extractor)(rec.payload) {
                            chunk_acc.observe(v);
                        }
                    }
                    ScanControl::Continue
                })?;
                Ok((chunk_acc, out))
            }
        }
    })?;
    for chunk_acc in &per_chunk {
        acc.merge(chunk_acc);
    }
    phases.chunk_scan_nanos += scan_timer.elapsed_nanos();
    if plan.region_relevant {
        let tail_timer = Stopwatch::start();
        let mut region_acc = Acc::new();
        let out = view.scan_region(plan.region_start, view.rec.watermark(), |rec| {
            if rec.header.ts > range.end {
                return ScanControl::Stop;
            }
            if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                if let Some(v) = (meta.extractor)(rec.payload) {
                    region_acc.observe(v);
                }
            }
            ScanControl::Continue
        })?;
        out.fold_into(&mut stats);
        acc.merge(&region_acc);
        phases.tail_scan_nanos += tail_timer.elapsed_nanos();
    }

    Ok(AggregateResult {
        value: acc.finish(method),
        count: acc.count,
        stats,
    })
}

fn percentile(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    p: f64,
    opts: QueryOptions,
    phases: &mut QueryPhases,
) -> Result<AggregateResult> {
    let mut stats = QueryStats {
        workers_used: 1,
        ..QueryStats::default()
    };
    let plan_timer = Stopwatch::start();
    let plan = planner::plan(view, range)?;
    phases.plan_nanos += plan_timer.elapsed_nanos();
    let bin_count = meta.spec.bin_count();

    // Phase A: per-bin counts across the range (bins as a CDF).
    let mut counts = vec![0u64; bin_count];
    let mut partial_chunks: Vec<u64> = Vec::new();
    let select_timer = Stopwatch::start();
    planner::for_each_relevant_summary(
        view,
        &plan,
        range,
        &mut stats.summaries_scanned,
        |summary, fully| {
            if !summary.has_source(meta.source.0) {
                return Ok(());
            }
            if fully {
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    for (bin, s) in bins {
                        counts[*bin as usize] += s.count;
                    }
                }
            } else {
                partial_chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;
    phases.select_nanos += select_timer.elapsed_nanos();
    view.obs.index.summary_probes(stats.summaries_scanned);
    view.obs.index.chunk_hits(partial_chunks.len() as u64);
    let mode = planner::decode_mode(meta, opts);
    let workers = view.workers(opts.parallelism, partial_chunks.len());
    stats.workers_used = stats.workers_used.max(workers as u64);
    if workers > 1 {
        view.obs.query.pool_tasks(partial_chunks.len() as u64);
    }
    let scan_timer = Stopwatch::start();
    let per_chunk = for_chunks(view, workers, &partial_chunks, &mut stats, |bufs, addr| {
        count_chunk_exact(view, meta, range, bin_count, mode, bufs, addr)
    })?;
    for chunk_counts in per_chunk {
        for (total, c) in counts.iter_mut().zip(chunk_counts) {
            *total += c;
        }
    }
    phases.chunk_scan_nanos += scan_timer.elapsed_nanos();
    if plan.region_relevant {
        let tail_timer = Stopwatch::start();
        count_region_exact(
            view,
            meta,
            range,
            plan.region_start,
            &mut counts,
            &mut stats,
        )?;
        phases.tail_scan_nanos += tail_timer.elapsed_nanos();
    }

    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Ok(AggregateResult {
            value: None,
            count: 0,
            stats,
        });
    }

    // Nearest-rank percentile: the r-th smallest value, 1-based.
    let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    let mut target_bin = bin_count - 1;
    for (bin, c) in counts.iter().enumerate() {
        if cumulative + c >= rank {
            target_bin = bin;
            break;
        }
        cumulative += c;
    }
    let rank_in_bin = rank - cumulative; // 1-based within the target bin

    // Phase B: collect only the target bin's values and select the rank.
    // Memory is bounded by the number of values in one bin within the
    // range — small for tail percentiles by construction.
    //
    // Revisit summaries: scan only the fully-covered chunks that have
    // values in the target bin, plus the partial chunks (already filtered
    // by time above, re-filtered exactly here).
    let mut revisited = 0u64;
    let mut phase_b_chunks: Vec<u64> = Vec::new();
    let select_b_timer = Stopwatch::start();
    planner::for_each_relevant_summary(view, &plan, range, &mut revisited, |summary, fully| {
        if !fully {
            return Ok(()); // appended below, in partial-chunk order
        }
        if let Some(bins) = summary.index_bins(meta.id.0) {
            if bins.get(&(target_bin as u32)).is_some_and(|s| s.count > 0) {
                phase_b_chunks.push(summary.chunk_addr);
            }
        }
        Ok(())
    })?;
    phase_b_chunks.extend_from_slice(&partial_chunks);
    stats.summaries_scanned += revisited;
    phases.select_nanos += select_b_timer.elapsed_nanos();
    view.obs.index.summary_probes(revisited);
    view.obs.index.chunk_hits(phase_b_chunks.len() as u64);

    let workers = view.workers(opts.parallelism, phase_b_chunks.len());
    stats.workers_used = stats.workers_used.max(workers as u64);
    if workers > 1 {
        view.obs.query.pool_tasks(phase_b_chunks.len() as u64);
    }
    let scan_b_timer = Stopwatch::start();
    let per_chunk = for_chunks(view, workers, &phase_b_chunks, &mut stats, |bufs, addr| {
        let mut chunk_values: Vec<f64> = Vec::new();
        match mode {
            DecodeMode::Columnar(desc) => {
                // No early stop here: the record path scans phase-B chunks
                // in full, and decode must visit the same records for the
                // scan counters to stay identical.
                let out = columnar::decode_chunk(view, addr, meta.source.0, desc, None, bufs)?;
                let selected = bufs.cols.select_time(range);
                view.obs
                    .query
                    .columnar_batch(bufs.cols.len() as u64, selected);
                for v in bufs.cols.selected_values() {
                    if meta.spec.bin_of(v) == Some(target_bin) {
                        chunk_values.push(v);
                    }
                }
                Ok((chunk_values, out.scan))
            }
            DecodeMode::RecordAtATime => {
                let out = view.scan_chunk_with_buf(addr, &mut bufs.chunk, |rec| {
                    if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                        if let Some(v) = (meta.extractor)(rec.payload) {
                            if meta.spec.bin_of(v) == Some(target_bin) {
                                chunk_values.push(v);
                            }
                        }
                    }
                    ScanControl::Continue
                })?;
                Ok((chunk_values, out))
            }
        }
    })?;
    let mut values: Vec<f64> = per_chunk.into_iter().flatten().collect();
    phases.chunk_scan_nanos += scan_b_timer.elapsed_nanos();
    if plan.region_relevant {
        let tail_b_timer = Stopwatch::start();
        let out = view.scan_region(plan.region_start, view.rec.watermark(), |rec| {
            if rec.header.ts > range.end {
                return ScanControl::Stop;
            }
            if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                if let Some(v) = (meta.extractor)(rec.payload) {
                    if meta.spec.bin_of(v) == Some(target_bin) {
                        values.push(v);
                    }
                }
            }
            ScanControl::Continue
        })?;
        out.fold_into(&mut stats);
        phases.tail_scan_nanos += tail_b_timer.elapsed_nanos();
    }

    if values.len() < rank_in_bin as usize {
        return Err(LoomError::Corrupt(format!(
            "percentile phase B found {} values in bin {target_bin}, expected at least {rank_in_bin}",
            values.len()
        )));
    }
    let k = rank_in_bin as usize - 1;
    let (_, v, _) = values.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
    Ok(AggregateResult {
        value: Some(*v),
        count: total,
        stats,
    })
}
