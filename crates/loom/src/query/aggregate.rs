//! The indexed aggregate operator (§4.3).
//!
//! Distributive aggregates (count, sum, min, max, mean) are computed from
//! chunk-summary bins whenever a chunk's time range lies fully inside the
//! query range, falling back to exact chunk scans for partially covered
//! chunks and the unsummarized tail region.
//!
//! Holistic percentiles use the bins-as-CDF strategy: a first pass
//! accumulates per-bin counts to locate the bin containing the requested
//! rank; a second pass collects only that bin's values and selects the
//! rank within it. This avoids materializing or sorting the whole data
//! set.

use super::planner;
use super::view::{QueryView, ScanControl};
use super::{Aggregate, AggregateResult, IndexMeta, TimeRange};
use crate::error::{LoomError, Result};
use crate::stats::QueryStats;
use crate::summary::BinStats;

/// Computes the per-bin record counts for an index over a time range
/// (the CDF of §4.3, exposed for composition — e.g., the distributed
/// coordinator merges per-node bin counts before selecting a global
/// percentile bin).
pub(crate) fn bin_counts(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
) -> Result<(Vec<u64>, QueryStats)> {
    let mut stats = QueryStats::default();
    let plan = planner::plan(view, range)?;
    let mut counts = vec![0u64; meta.spec.bin_count()];
    let mut partial_chunks: Vec<u64> = Vec::new();
    planner::for_each_relevant_summary(
        view,
        &plan,
        range,
        &mut stats.summaries_scanned,
        |summary, fully| {
            if !summary.has_source(meta.source.0) {
                return Ok(());
            }
            if fully {
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    for (bin, s) in bins {
                        counts[*bin as usize] += s.count;
                    }
                }
            } else {
                partial_chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;
    let mut count_exact = |counts: &mut Vec<u64>, from: u64, to: u64| -> Result<()> {
        let out = view.scan_region(from, to, |rec| {
            if rec.header.ts > range.end {
                return ScanControl::Stop;
            }
            if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                if let Some(v) = (meta.extractor)(rec.payload) {
                    if let Some(bin) = meta.spec.bin_of(v) {
                        counts[bin] += 1;
                    }
                }
            }
            ScanControl::Continue
        })?;
        out.fold_into(&mut stats);
        Ok(())
    };
    for chunk_addr in &partial_chunks {
        count_exact(&mut counts, *chunk_addr, *chunk_addr + view.chunk_size)?;
    }
    if plan.region_relevant {
        count_exact(&mut counts, plan.region_start, view.rec.watermark())?;
    }
    Ok((counts, stats))
}

/// Executes an indexed aggregate over `view`.
pub(crate) fn run(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    method: Aggregate,
) -> Result<AggregateResult> {
    match method {
        Aggregate::Percentile(p) => {
            if !(0.0..=100.0).contains(&p) {
                return Err(LoomError::InvalidQuery(format!(
                    "percentile {p} outside [0, 100]"
                )));
            }
            percentile(view, meta, range, p)
        }
        _ => distributive(view, meta, range, method),
    }
}

/// Accumulator for distributive aggregates.
#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn fold_bin(&mut self, s: &BinStats) {
        self.count += s.count;
        self.sum += s.sum;
        self.min = self.min.min(s.min);
        self.max = self.max.max(s.max);
    }

    fn finish(&self, method: Aggregate) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(match method {
            Aggregate::Count => self.count as f64,
            Aggregate::Sum => self.sum,
            Aggregate::Min => self.min,
            Aggregate::Max => self.max,
            Aggregate::Mean => self.sum / self.count as f64,
            Aggregate::Percentile(_) => unreachable!("handled separately"),
        })
    }
}

fn distributive(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    method: Aggregate,
) -> Result<AggregateResult> {
    let mut stats = QueryStats::default();
    let plan = planner::plan(view, range)?;
    let mut acc = Acc::new();
    let mut partial_chunks: Vec<u64> = Vec::new();

    planner::for_each_relevant_summary(
        view,
        &plan,
        range,
        &mut stats.summaries_scanned,
        |summary, fully| {
            if !summary.has_source(meta.source.0) {
                return Ok(());
            }
            if fully {
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    for s in bins.values() {
                        acc.fold_bin(s);
                    }
                }
            } else {
                partial_chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;

    // Exact aggregation for chunks only partially inside the time range.
    let mut scan_exact = |acc: &mut Acc, from: u64, to: u64| -> Result<()> {
        let out = view.scan_region(from, to, |rec| {
            if rec.header.ts > range.end {
                return ScanControl::Stop;
            }
            if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                if let Some(v) = (meta.extractor)(rec.payload) {
                    acc.observe(v);
                }
            }
            ScanControl::Continue
        })?;
        out.fold_into(&mut stats);
        Ok(())
    };
    for chunk_addr in partial_chunks {
        scan_exact(&mut acc, chunk_addr, chunk_addr + view.chunk_size)?;
    }
    if plan.region_relevant {
        scan_exact(&mut acc, plan.region_start, view.rec.watermark())?;
    }

    Ok(AggregateResult {
        value: acc.finish(method),
        count: acc.count,
        stats,
    })
}

fn percentile(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    p: f64,
) -> Result<AggregateResult> {
    let mut stats = QueryStats::default();
    let plan = planner::plan(view, range)?;
    let bin_count = meta.spec.bin_count();

    // Phase A: per-bin counts across the range (bins as a CDF).
    let mut counts = vec![0u64; bin_count];
    let mut partial_chunks: Vec<u64> = Vec::new();
    planner::for_each_relevant_summary(
        view,
        &plan,
        range,
        &mut stats.summaries_scanned,
        |summary, fully| {
            if !summary.has_source(meta.source.0) {
                return Ok(());
            }
            if fully {
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    for (bin, s) in bins {
                        counts[*bin as usize] += s.count;
                    }
                }
            } else {
                partial_chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;
    let mut count_exact = |counts: &mut Vec<u64>, from: u64, to: u64| -> Result<()> {
        let out = view.scan_region(from, to, |rec| {
            if rec.header.ts > range.end {
                return ScanControl::Stop;
            }
            if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                if let Some(v) = (meta.extractor)(rec.payload) {
                    if let Some(bin) = meta.spec.bin_of(v) {
                        counts[bin] += 1;
                    }
                }
            }
            ScanControl::Continue
        })?;
        out.fold_into(&mut stats);
        Ok(())
    };
    for chunk_addr in &partial_chunks {
        count_exact(&mut counts, *chunk_addr, *chunk_addr + view.chunk_size)?;
    }
    if plan.region_relevant {
        count_exact(&mut counts, plan.region_start, view.rec.watermark())?;
    }

    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Ok(AggregateResult {
            value: None,
            count: 0,
            stats,
        });
    }

    // Nearest-rank percentile: the r-th smallest value, 1-based.
    let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    let mut target_bin = bin_count - 1;
    for (bin, c) in counts.iter().enumerate() {
        if cumulative + c >= rank {
            target_bin = bin;
            break;
        }
        cumulative += c;
    }
    let rank_in_bin = rank - cumulative; // 1-based within the target bin

    // Phase B: collect only the target bin's values and select the rank.
    // Memory is bounded by the number of values in one bin within the
    // range — small for tail percentiles by construction.
    let mut values: Vec<f64> = Vec::new();
    let mut revisited = 0u64;
    {
        let mut collect =
            |values: &mut Vec<f64>, from: u64, to: u64, ts_filter: bool| -> Result<()> {
                let out = view.scan_region(from, to, |rec| {
                    if ts_filter && rec.header.ts > range.end {
                        return ScanControl::Stop;
                    }
                    if rec.header.source == meta.source.0 && range.contains(rec.header.ts) {
                        if let Some(v) = (meta.extractor)(rec.payload) {
                            if meta.spec.bin_of(v) == Some(target_bin) {
                                values.push(v);
                            }
                        }
                    }
                    ScanControl::Continue
                })?;
                out.fold_into(&mut stats);
                Ok(())
            };

        // Revisit summaries: scan only chunks that have values in the
        // target bin.
        let mut target_chunks: Vec<u64> = Vec::new();
        planner::for_each_relevant_summary(
            view,
            &plan,
            range,
            &mut revisited,
            |summary, fully| {
                if !fully {
                    return Ok(()); // already in partial_chunks
                }
                if let Some(bins) = summary.index_bins(meta.id.0) {
                    if bins.get(&(target_bin as u32)).is_some_and(|s| s.count > 0) {
                        target_chunks.push(summary.chunk_addr);
                    }
                }
                Ok(())
            },
        )?;
        for chunk_addr in target_chunks {
            collect(&mut values, chunk_addr, chunk_addr + view.chunk_size, false)?;
        }
        for chunk_addr in &partial_chunks {
            collect(
                &mut values,
                *chunk_addr,
                *chunk_addr + view.chunk_size,
                false,
            )?;
        }
        if plan.region_relevant {
            collect(&mut values, plan.region_start, view.rec.watermark(), true)?;
        }
    }
    stats.summaries_scanned += revisited;

    if values.len() < rank_in_bin as usize {
        return Err(LoomError::Corrupt(format!(
            "percentile phase B found {} values in bin {target_bin}, expected at least {rank_in_bin}",
            values.len()
        )));
    }
    let k = rank_in_bin as usize - 1;
    let (_, v, _) = values.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
    Ok(AggregateResult {
        value: Some(*v),
        count: total,
        stats,
    })
}
