//! Point-in-time query views (§4.4, §5.5).
//!
//! A query captures snapshots of the three hybrid logs in the *reverse*
//! of the publication order (§5.4): timestamp index first, then chunk
//! index, then record log. Publication goes record → chunk → timestamp,
//! so everything reachable from a captured timestamp entry (chunk
//! summaries, records) is guaranteed to be inside the later-captured
//! snapshots. The view is the query's linearization point: data published
//! before the first snapshot is visible; later data is not (§4.5).

use std::num::NonZeroUsize;
use std::sync::Arc;

use super::columnar::BufferPool;
use crate::engine::Inner;
use crate::error::Result;
use crate::hybridlog::Snapshot;
use crate::obs::Obs;
use crate::record::{ChunkIter, ChunkRecord, RecordHeader, RECORD_HEADER_SIZE};
use crate::registry::{SourceId, SourceShared};
use crate::retention::ColdSnap;
use crate::stats::QueryStats;

/// A consistent, point-in-time view over the three logs.
pub(crate) struct QueryView<'a> {
    /// Snapshot of the timestamp index (captured first).
    pub ts: Snapshot<'a>,
    /// Snapshot of the chunk index (captured second).
    pub chunk: Snapshot<'a>,
    /// Snapshot of the record log (captured last).
    pub rec: Snapshot<'a>,
    /// The cold tier at capture time. Chunks this snapshot owns are read
    /// (and decompressed) from their segments instead of the record log;
    /// chunks below its prune floor read as empty. Pruned segments stay
    /// readable through the snapshot's open file handles even after
    /// retention unlinks them.
    pub cold: Arc<ColdSnap>,
    /// The queried source's last published record address at capture time
    /// (guaranteed inside `rec`), or `NIL_ADDR`.
    pub source_last: u64,
    /// Record-log chunk size.
    pub chunk_size: u64,
    /// Default worker-pool size for this view's queries
    /// (`Config::query_threads`).
    pub query_threads: usize,
    /// The engine's self-observability registry.
    pub obs: &'a Obs,
    /// The engine's pooled scan/decode buffers (grow-once reuse across
    /// chunks, workers, and queries).
    pub bufs: &'a BufferPool,
}

// The parallel executor shares one view (and its three snapshots) across
// scoped worker threads by reference. Everything inside is either immutable
// owned data or atomics/raw blocks that `hybridlog` explicitly declares
// thread-safe, so both types must remain `Send + Sync`; this assertion
// turns an accidental regression (e.g., adding a `Cell` field) into a
// compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot<'static>>();
    assert_send_sync::<QueryView<'static>>();
};

impl<'a> QueryView<'a> {
    /// Captures a view for a query over `source`.
    pub fn capture(inner: &'a Inner, source: SourceId) -> Result<Self> {
        let shared = std::sync::Arc::clone(&inner.registry.read().source(source)?.shared);
        Self::capture_from(inner, &shared)
    }

    /// Captures a view given the source's shared state, without touching
    /// the registry lock (callers that already resolved index metadata
    /// hold the source handle and skip a second lock acquisition).
    pub fn capture_from(inner: &'a Inner, source: &SourceShared) -> Result<Self> {
        let ts = inner.ts_log.snapshot()?;
        let chunk = inner.chunk_log.snapshot()?;
        // Load the source pointer *before* the record snapshot: the writer
        // publishes the record-log watermark before the pointer, so the
        // acquire load here guarantees the record snapshot (taken after)
        // covers the pointed-to record.
        let source_last = source
            .last_record
            .load(std::sync::atomic::Ordering::Acquire);
        let rec = inner.record_log.snapshot()?;
        // Captured after the record snapshot: the compactor installs a
        // chunk into the cold snapshot *before* punching its hot bytes,
        // so any chunk our record snapshot can no longer trust is owned
        // by this (or a later) snapshot. Terminal query stages hold the
        // shard's tier read-lock, which blocks punching entirely for
        // the query's duration.
        let cold = Arc::clone(&inner.cold.read());
        Ok(QueryView {
            ts,
            chunk,
            rec,
            cold,
            source_last,
            chunk_size: inner.config.chunk_size as u64,
            query_threads: inner.config.query_threads,
            obs: &inner.obs,
            bufs: &inner.scan_bufs,
        })
    }

    /// Resolves the worker-pool size for a stage with `tasks` independent
    /// chunk scans: an explicit per-query override beats the config
    /// default, and the pool never exceeds the task count.
    pub fn workers(&self, requested: Option<NonZeroUsize>, tasks: usize) -> usize {
        requested
            .map(|n| n.get())
            .unwrap_or(self.query_threads)
            .min(tasks)
            .max(1)
    }

    /// Reads a record header from whichever tier owns its chunk,
    /// returning the decoded header together with its raw bytes (needed
    /// to verify the entry checksum once the payload is available).
    pub fn read_header(
        &self,
        addr: u64,
        cache: &mut ColdChunkCache,
    ) -> Result<(RecordHeader, [u8; RECORD_HEADER_SIZE])> {
        let mut buf = [0u8; RECORD_HEADER_SIZE];
        self.read_at_tiered(addr, &mut buf, cache)?;
        Ok((RecordHeader::decode(&buf)?, buf))
    }

    /// Reads a record's payload into `buf` (resized to fit) and verifies
    /// the entry checksum against `header_buf`.
    pub fn read_payload(
        &self,
        addr: u64,
        header: &RecordHeader,
        header_buf: &[u8; RECORD_HEADER_SIZE],
        buf: &mut Vec<u8>,
        cache: &mut ColdChunkCache,
    ) -> Result<()> {
        buf.resize(header.len as usize, 0);
        self.read_at_tiered(addr + RECORD_HEADER_SIZE as u64, buf, cache)?;
        if !RecordHeader::verify(header_buf, buf) {
            return Err(crate::error::LoomError::CorruptLog {
                log: crate::durability::LogId::Records,
                addr,
                reason: "record checksum mismatch".into(),
            });
        }
        Ok(())
    }

    /// Reads `out.len()` bytes at `addr` from whichever tier owns the
    /// containing chunk (records never span chunks, so one chunk always
    /// does). Cold chunks decompress through `cache`, which holds the
    /// last chunk touched — the raw chain walk revisits the same chunk
    /// many times.
    fn read_at_tiered(&self, addr: u64, out: &mut [u8], cache: &mut ColdChunkCache) -> Result<()> {
        let base = addr - addr % self.chunk_size;
        if self.cold.owns(base) {
            if cache.addr != Some(base) {
                self.cold.read_chunk(base, &mut cache.bytes)?;
                self.obs.engine.cold_chunk_read();
                cache.addr = Some(base);
            }
            let off = (addr - base) as usize;
            let n = cache.bytes.len().saturating_sub(off).min(out.len());
            out[n..].fill(0);
            out[..n].copy_from_slice(&cache.bytes[off..off + n]);
            return Ok(());
        }
        if addr + out.len() as u64 <= self.cold.pruned_below() {
            // Dropped by retention: reads see zeros no matter what
            // bytes the hot log might still stage for the region.
            out.fill(0);
            return Ok(());
        }
        self.rec.read_at(addr, out)
    }

    /// Reads the `len`-byte chunk piece at chunk-aligned `pos` into
    /// `buf[..len]` from whichever tier owns it: cold chunks decompress
    /// from their segment frame, pruned chunks read as zeros, everything
    /// else reads from the record log.
    fn read_piece(&self, pos: u64, len: usize, buf: &mut Vec<u8>) -> Result<()> {
        if self.cold.read_chunk(pos, buf)? {
            self.obs.engine.cold_chunk_read();
            if buf.len() < len {
                buf.resize(len, 0);
            }
            return Ok(());
        }
        if buf.len() < len {
            buf.resize(len, 0);
        }
        if pos + len as u64 <= self.cold.pruned_below() {
            buf[..len].fill(0);
            return Ok(());
        }
        self.rec.read_at(pos, &mut buf[..len])
    }

    /// Scans the record-log region `[from, to)` chunk piece by chunk
    /// piece, invoking `f` for every record. `from` must be chunk-aligned;
    /// `to` is clamped to the view's watermark.
    ///
    /// Returns the scan's I/O and record counters; `stopped` is set if the
    /// callback requested an early stop.
    pub fn scan_region<F>(&self, from: u64, to: u64, f: F) -> Result<RegionScan>
    where
        F: FnMut(&ChunkRecord<'_>) -> ScanControl,
    {
        let mut buf = Vec::new();
        self.scan_region_with_buf(from, to, &mut buf, f)
    }

    /// [`Self::scan_region`] with a caller-owned chunk buffer.
    ///
    /// The buffer is grown (and zero-initialized) to the chunk size at
    /// most once and then reused for every piece, so repeated scans —
    /// the serial chunk loop as well as each pool worker — pay neither a
    /// per-piece allocation nor the redundant `resize` memset that
    /// `read_at` would immediately overwrite.
    pub fn scan_region_with_buf<F>(
        &self,
        from: u64,
        to: u64,
        buf: &mut Vec<u8>,
        mut f: F,
    ) -> Result<RegionScan>
    where
        F: FnMut(&ChunkRecord<'_>) -> ScanControl,
    {
        debug_assert_eq!(from % self.chunk_size, 0, "region start must be aligned");
        let to = to.min(self.rec.watermark());
        let mut out = RegionScan::default();
        let mut pos = from;
        while pos < to {
            let len = self.chunk_size.min(to - pos) as usize;
            self.read_piece(pos, len, buf)?;
            let piece = &buf[..len];
            out.chunks += 1;
            out.bytes += len as u64;
            for rec in ChunkIter::new(piece, pos) {
                let rec = rec?;
                out.records += 1;
                match f(&rec) {
                    ScanControl::Continue => {}
                    ScanControl::Stop => {
                        out.stopped = true;
                        return Ok(out);
                    }
                }
            }
            pos += len as u64;
        }
        Ok(out)
    }

    /// Reads the raw bytes of the chunk piece at `chunk_addr` (clamped
    /// to the watermark) into `buf`, returning the piece length — `0`
    /// when the address is at or past the watermark.
    ///
    /// This is the columnar decode path's read primitive: the length and
    /// clamping match exactly what [`Self::scan_chunk_with_buf`] (one
    /// piece of [`Self::scan_region_with_buf`]) would read, so callers
    /// can account `chunks`/`bytes` identically. Like the region scan,
    /// the buffer is grown (and zero-initialized) at most once.
    pub fn read_chunk_raw(&self, chunk_addr: u64, buf: &mut Vec<u8>) -> Result<usize> {
        debug_assert_eq!(
            chunk_addr % self.chunk_size,
            0,
            "chunk addr must be aligned"
        );
        let wm = self.rec.watermark();
        if chunk_addr >= wm {
            return Ok(0);
        }
        let len = self.chunk_size.min(wm - chunk_addr) as usize;
        self.read_piece(chunk_addr, len, buf)?;
        Ok(len)
    }

    /// Scans one chunk at `chunk_addr` (clamped to the watermark),
    /// invoking `f` for every record, with a caller-owned reusable buffer.
    pub fn scan_chunk_with_buf<F>(
        &self,
        chunk_addr: u64,
        buf: &mut Vec<u8>,
        f: F,
    ) -> Result<RegionScan>
    where
        F: FnMut(&ChunkRecord<'_>) -> ScanControl,
    {
        self.scan_region_with_buf(chunk_addr, chunk_addr + self.chunk_size, buf, f)
    }
}

/// One-chunk cache of decompressed cold bytes for record-at-a-time
/// reads: the raw chain walk touches the same chunk once per record,
/// and decompressing per read would be quadratic in records-per-chunk.
#[derive(Default)]
pub(crate) struct ColdChunkCache {
    /// Chunk address of the cached bytes, if any.
    addr: Option<u64>,
    /// The decompressed chunk.
    bytes: Vec<u8>,
}

/// Counters produced by a region scan.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RegionScan {
    /// Chunk pieces read.
    pub chunks: u64,
    /// Bytes read from the record log.
    pub bytes: u64,
    /// Records decoded.
    pub records: u64,
    /// Whether the callback stopped the scan early.
    pub stopped: bool,
    /// Chunk pieces decoded through the columnar batch path (zero on the
    /// record-at-a-time path).
    pub columnar_batches: u64,
    /// Rows of the queried source decoded into column batches.
    pub columnar_rows: u64,
}

impl RegionScan {
    /// Folds these counters into a query's statistics block.
    pub fn fold_into(&self, stats: &mut QueryStats) {
        stats.chunks_scanned += self.chunks;
        stats.bytes_read += self.bytes;
        stats.records_scanned += self.records;
        stats.columnar_batches += self.columnar_batches;
        stats.columnar_rows += self.columnar_rows;
    }
}

/// Flow control for region scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScanControl {
    /// Keep scanning.
    Continue,
    /// Stop the scan early (e.g., a record past the time range was seen).
    Stop,
}
