//! Shared query planning: mapping a time range onto chunk summaries and
//! the unsummarized tail region (§4.3).

use super::view::QueryView;
use super::{IndexMeta, QueryOptions, TimeRange};
use crate::chunk_index::SummaryCursor;
use crate::error::Result;
use crate::extract::ExtractorDesc;
use crate::summary::ChunkSummary;
use crate::ts_index::TsIndexView;

/// How an operator decodes the chunks it scans.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DecodeMode {
    /// Batch-decode whole chunk pieces into column vectors and run the
    /// selection/aggregation kernels of `query::columnar`.
    Columnar(ExtractorDesc),
    /// Walk records one at a time through `ChunkIter` callbacks.
    RecordAtATime,
}

/// Picks the decode path for a query: columnar needs a declarative
/// extractor (so the batch kernels can reproduce it exactly) and the
/// `use_columnar` option left on. Closure-defined indexes always fall
/// back — an opaque `Arc<dyn Fn>` cannot be vectorized.
pub(crate) fn decode_mode(meta: &IndexMeta, opts: QueryOptions) -> DecodeMode {
    match meta.desc {
        Some(desc) if opts.use_columnar => DecodeMode::Columnar(desc),
        _ => DecodeMode::RecordAtATime,
    }
}

/// The chunk-index positions a query must visit.
pub(crate) struct SummaryPlan {
    /// Chunk-index address of the first summary whose chunk may contain
    /// records in the time range, if any.
    pub start: Option<u64>,
    /// Chunk-index address of the last summary this view may use (the one
    /// referenced by the newest captured chunk-seal entry). Summaries past
    /// this address exist in the chunk snapshot but are covered by the
    /// tail region instead, avoiding double scanning.
    pub stop: Option<u64>,
    /// Record-log address where the unsummarized tail region begins
    /// (chunk-aligned).
    pub region_start: u64,
    /// Whether the tail region can contain records in the time range.
    pub region_relevant: bool,
}

/// Builds a [`SummaryPlan`] for `range` using the timestamp index.
pub(crate) fn plan(view: &QueryView<'_>, range: TimeRange) -> Result<SummaryPlan> {
    view.obs.index.ts_seek();
    let tsv = TsIndexView::new(&view.ts);
    let last_seal = tsv.last_seal_at_or_before(u64::MAX)?;
    let (region_start, region_relevant, stop) = match &last_seal {
        Some(seal) => {
            // Decode the seal's summary to learn where its chunk ends;
            // records after that boundary are the tail region. The record
            // that triggered the seal carries the seal's timestamp, so the
            // region is irrelevant when the range ends before it.
            let mut cursor = SummaryCursor::new(&view.chunk, seal.target);
            let summary = cursor.next()?.ok_or_else(|| {
                crate::error::LoomError::Corrupt(
                    "chunk-seal entry points past the chunk index".into(),
                )
            })?;
            (
                summary.chunk_addr + summary.chunk_len as u64,
                range.end >= seal.ts,
                Some(seal.target),
            )
        }
        None => (0, true, None),
    };
    let start = tsv
        .first_seal_at_or_after(range.start)?
        .map(|seal| seal.target)
        // A seal after the range start may exist only beyond this view's
        // usable summaries; the stop bound below handles that.
        .filter(|start| Some(*start) <= stop);
    Ok(SummaryPlan {
        start,
        stop,
        region_start,
        region_relevant,
    })
}

/// Builds a plan that visits *all* summaries (chunk-index-only ablation:
/// no timestamp index to seek with).
pub(crate) fn plan_full(view: &QueryView<'_>) -> Result<SummaryPlan> {
    // Without the timestamp index we conservatively iterate every summary
    // in the chunk snapshot; the tail region starts where summaries end.
    let mut cursor = SummaryCursor::new(&view.chunk, 0);
    let mut start = None;
    let mut stop = None;
    let mut region_start = 0;
    loop {
        let pos = cursor.pos();
        match cursor.next()? {
            Some(summary) => {
                if start.is_none() {
                    start = Some(pos);
                }
                stop = Some(pos);
                region_start = summary.chunk_addr + summary.chunk_len as u64;
            }
            None => break,
        }
    }
    Ok(SummaryPlan {
        start,
        stop,
        region_start,
        region_relevant: true,
    })
}

/// Invokes `f(summary, fully_covered_in_time)` for every summary in the
/// plan whose chunk overlaps `range`. Returns the per-call statistics via
/// the caller's counter.
pub(crate) fn for_each_relevant_summary<F>(
    view: &QueryView<'_>,
    plan: &SummaryPlan,
    range: TimeRange,
    summaries_scanned: &mut u64,
    mut f: F,
) -> Result<()>
where
    F: FnMut(&ChunkSummary, bool) -> Result<()>,
{
    let (Some(start), Some(stop)) = (plan.start, plan.stop) else {
        return Ok(());
    };
    let mut cursor = SummaryCursor::new(&view.chunk, start);
    loop {
        let pos = cursor.pos();
        if pos > stop {
            break;
        }
        if let Some(slice) = view.cold.slice_covering(pos) {
            // The slice super-summary answers for all its chunks at
            // once. Pruned slice: its chunks were dropped by retention —
            // count its summaries as visited and resume past its range,
            // so the distributive-aggregate path never folds bins of
            // dropped chunks. Live cold slice wholly before the range:
            // every per-chunk summary would be skipped individually, so
            // jump straight past it without decoding per-chunk metadata.
            // (Summaries themselves live in the chunk log and are never
            // punched — both skips are about relevance, not readability.
            // Slices *after* the range get no special case: the first
            // decoded summary's own arrival-order break handles them at
            // the cost of one decode, keeping the visited-summary
            // accounting identical to an unaged engine.)
            if slice.pruned || slice.ts_max < range.start {
                *summaries_scanned += slice.chunks;
                cursor = SummaryCursor::new(&view.chunk, slice.summary_end);
                continue;
            }
        }
        let Some(summary) = cursor.next()? else { break };
        *summaries_scanned += 1;
        if summary.record_count() == 0 {
            continue;
        }
        if summary.chunk_addr < view.cold.pruned_below() {
            // Belt and braces for prune floors the slice walk above
            // didn't cover (e.g., out-of-order prune commits).
            continue;
        }
        if summary.ts_min > range.end {
            // Chunks are sealed in arrival order, so later summaries only
            // contain later records.
            break;
        }
        if summary.ts_max < range.start {
            continue;
        }
        let fully = summary.ts_min >= range.start && summary.ts_max <= range.end;
        f(&summary, fully)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::config::Config;
    use crate::engine::Loom;
    use crate::extract;
    use crate::histogram::HistogramSpec;

    fn env(name: &str) -> (Loom, crate::engine::LoomWriter, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("loom-planner-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (l, w) = Loom::open_with_clock(Config::small(&dir), Clock::manual(0)).unwrap();
        (l, w, dir)
    }

    #[test]
    fn empty_log_plans_cover_only_the_region() {
        let (l, _w, dir) = env("empty");
        let s = l.define_source("s");
        let view = QueryView::capture(l.shard(s.0), s).unwrap();
        let plan = plan(&view, TimeRange::new(0, u64::MAX)).unwrap();
        assert_eq!(plan.start, None);
        assert_eq!(plan.stop, None);
        assert_eq!(plan.region_start, 0);
        assert!(plan.region_relevant);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn historical_ranges_skip_the_tail_region() {
        let (l, mut w, dir) = env("historical");
        let s = l.define_source("s");
        l.define_index(
            s,
            extract::u64_le_at(0),
            HistogramSpec::uniform(0.0, 100.0, 4).unwrap(),
        )
        .unwrap();
        // Fill several chunks, note the midpoint time, fill more.
        for i in 0..2_000u64 {
            l.clock().advance(10);
            w.push(s, &(i % 100).to_le_bytes()).unwrap();
        }
        let mid = l.now();
        for i in 0..2_000u64 {
            l.clock().advance(10);
            w.push(s, &(i % 100).to_le_bytes()).unwrap();
        }
        let view = QueryView::capture(l.shard(s.0), s).unwrap();
        // A range that ends before the last seal: the region is irrelevant.
        let plan_hist = plan(&view, TimeRange::new(0, mid / 2)).unwrap();
        assert!(
            !plan_hist.region_relevant,
            "historical query must skip the tail"
        );
        assert!(plan_hist.start.is_some());
        // A range extending to now: the region matters.
        let plan_now = plan(&view, TimeRange::new(mid, l.now())).unwrap();
        assert!(plan_now.region_relevant);
        // Region start is chunk-aligned and before the watermark.
        assert_eq!(plan_now.region_start % view.chunk_size, 0);
        assert!(plan_now.region_start <= view.rec.watermark());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_full_visits_every_summary() {
        let (l, mut w, dir) = env("full");
        let s = l.define_source("s");
        l.define_index(
            s,
            extract::u64_le_at(0),
            HistogramSpec::uniform(0.0, 100.0, 4).unwrap(),
        )
        .unwrap();
        for i in 0..3_000u64 {
            l.clock().advance(5);
            w.push(s, &(i % 100).to_le_bytes()).unwrap();
        }
        w.seal_active_chunk().unwrap();
        let sealed = l.ingest_stats().chunks_sealed();
        let view = QueryView::capture(l.shard(s.0), s).unwrap();
        let plan = plan_full(&view).unwrap();
        let mut seen = 0u64;
        for_each_relevant_summary(
            &view,
            &plan,
            TimeRange::new(0, u64::MAX),
            &mut seen,
            |_s, _fully| Ok(()),
        )
        .unwrap();
        assert_eq!(seen, sealed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_iteration_stops_after_the_range() {
        let (l, mut w, dir) = env("stop");
        let s = l.define_source("s");
        for i in 0..4_000u64 {
            l.clock().advance(10);
            w.push(s, &i.to_le_bytes()).unwrap();
        }
        w.seal_active_chunk().unwrap();
        let view = QueryView::capture(l.shard(s.0), s).unwrap();
        let p = plan(&view, TimeRange::new(0, l.now() / 10)).unwrap();
        let mut scanned = 0u64;
        let mut max_ts_seen = 0u64;
        for_each_relevant_summary(
            &view,
            &p,
            TimeRange::new(0, l.now() / 10),
            &mut scanned,
            |summary, _| {
                max_ts_seen = max_ts_seen.max(summary.ts_min);
                Ok(())
            },
        )
        .unwrap();
        let total = l.ingest_stats().chunks_sealed();
        assert!(
            scanned < total,
            "iteration should stop early ({scanned} of {total})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
