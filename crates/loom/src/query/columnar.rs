//! Columnar batch decode and selection kernels for sealed chunks.
//!
//! The record-at-a-time scan path walks a chunk with [`ChunkIter`],
//! calling a closure per record that re-decodes the header, dispatches
//! through an `Arc<dyn Fn>` extractor, and branches on every predicate.
//! For descriptor-defined indexes (fixed-offset binary fields, the
//! overwhelmingly common case) all of that work is data-independent, so
//! this module decodes a chunk **once** into struct-of-arrays column
//! buffers and evaluates predicates and aggregates as tight loops over
//! those columns:
//!
//! 1. [`ColumnBatch::decode`] parses the chunk's entries exactly like
//!    `ChunkIter` (same pad skipping, zeroed-tail termination, CRC
//!    verification, and corruption errors) and appends one row per record
//!    of the queried source: log address, timestamp, payload offset and
//!    length, and the extracted value (plus a validity byte for payloads
//!    too short for the field).
//! 2. [`ColumnBatch::select`] / [`ColumnBatch::select_time`] evaluate the
//!    time- and value-range predicates as a branch-free byte mask over
//!    the columns (integer compares only — no float arithmetic, so the
//!    mask is trivially autovectorizable).
//! 3. Emission and aggregation iterate the selected rows directly —
//!    [`ColumnBatch::emit`] for scans, [`ColumnBatch::selected_values`]
//!    for aggregate accumulators — with no per-record closure dispatch.
//!
//! Results are bit-identical to the record-at-a-time path: the decode
//! loop reproduces `ChunkIter`'s semantics (including which record an
//! early stop counts), extraction goes through the same shared
//! little-endian readers (`crate::extract::read_*_le`), and aggregate
//! callers feed `selected_values()` to the same accumulator in the same
//! order, so float association is unchanged.
//!
//! The module also owns the grow-once buffer pool ([`BufferPool`]): one
//! [`ScanBuffers`] (raw chunk bytes + column vectors) per worker, reused
//! across chunks within a query and across queries, plus recycled
//! [`RecordBatch`] arenas for the parallel delivery path.

use crate::sync::Mutex;

use super::executor::RecordBatch;
use super::view::{QueryView, RegionScan};
use super::{Record, TimeRange, ValueRange};
use crate::durability::LogId;
use crate::error::{LoomError, Result};
use crate::extract::{self, ExtractorDesc};
use crate::record::{RecordHeader, RECORD_HEADER_SIZE};
use crate::registry::SourceId;

/// Struct-of-arrays decode of one chunk piece, filtered to one source.
///
/// All vectors have one entry per retained row except `sel`, which is
/// (re)built by the `select*` kernels. Buffers keep their capacity across
/// [`ColumnBatch::decode`] calls (grow-once reuse).
#[derive(Debug, Default)]
pub(crate) struct ColumnBatch {
    /// Log address of each row's record header.
    addrs: Vec<u64>,
    /// Arrival timestamp of each row.
    ts: Vec<u64>,
    /// Extracted value per row (`0.0` when `valid` is 0).
    values: Vec<f64>,
    /// 1 when the row's payload was long enough for the extractor field.
    valid: Vec<u8>,
    /// Payload start offset of each row within the decoded chunk bytes.
    pay_off: Vec<u32>,
    /// Payload length of each row.
    pay_len: Vec<u32>,
    /// Selection mask from the last `select*` call (1 = row selected).
    sel: Vec<u8>,
}

/// Per-batch counters returned by [`ColumnBatch::decode`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BatchScan {
    /// Non-pad records decoded (all sources), matching the
    /// record-at-a-time `records_scanned` accounting.
    pub records: u64,
    /// Whether decode stopped early at a record past `stop_after`.
    pub stopped: bool,
    /// Maximum timestamp over every decoded record of any source (`0`
    /// when the piece held none) — the no-index backward scan uses this
    /// to detect when it has walked past the range.
    pub max_ts: u64,
}

impl ColumnBatch {
    /// Number of rows decoded for the queried source.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    fn clear(&mut self) {
        self.addrs.clear();
        self.ts.clear();
        self.values.clear();
        self.valid.clear();
        self.pay_off.clear();
        self.pay_len.clear();
        self.sel.clear();
    }

    /// Decodes one chunk piece into columns, retaining records of
    /// `source` and extracting values per `desc`.
    ///
    /// Entry walking is semantically identical to
    /// [`ChunkIter`](crate::record::ChunkIter): padding entries are
    /// verified and skipped without counting, a zeroed (source 0) header
    /// terminates the piece, and overruns or checksum mismatches yield
    /// [`LoomError::CorruptLog`] with the entry's log address. When
    /// `stop_after` is set, the first record with a later timestamp is
    /// counted in `records` (the callback path invokes the closure on it
    /// before honoring the `Stop`) but excluded from the columns, and
    /// `stopped` is reported.
    pub fn decode(
        &mut self,
        bytes: &[u8],
        base_addr: u64,
        source: u32,
        desc: ExtractorDesc,
        stop_after: Option<u64>,
    ) -> Result<BatchScan> {
        // Monomorphize the decode loop per descriptor variant so the
        // extraction — the same shared little-endian readers the
        // descriptor's closure would call — fuses into the single pass
        // over the chunk with no per-row dispatch.
        match desc {
            ExtractorDesc::CountAll => {
                self.decode_rows(bytes, base_addr, source, stop_after, |_| Some(1.0))
            }
            ExtractorDesc::U64Le(off) => {
                let off = off as usize;
                self.decode_rows(bytes, base_addr, source, stop_after, move |p| {
                    extract::read_u64_le(p, off).map(|v| v as f64)
                })
            }
            ExtractorDesc::U32Le(off) => {
                let off = off as usize;
                self.decode_rows(bytes, base_addr, source, stop_after, move |p| {
                    extract::read_u32_le(p, off).map(|v| v as f64)
                })
            }
            ExtractorDesc::U16Le(off) => {
                let off = off as usize;
                self.decode_rows(bytes, base_addr, source, stop_after, move |p| {
                    extract::read_u16_le(p, off).map(|v| v as f64)
                })
            }
            ExtractorDesc::F64Le(off) => {
                let off = off as usize;
                self.decode_rows(bytes, base_addr, source, stop_after, move |p| {
                    extract::read_f64_le(p, off)
                })
            }
        }
    }

    fn decode_rows<R>(
        &mut self,
        bytes: &[u8],
        base_addr: u64,
        source: u32,
        stop_after: Option<u64>,
        read: R,
    ) -> Result<BatchScan>
    where
        R: Fn(&[u8]) -> Option<f64>,
    {
        self.clear();
        let mut out = BatchScan::default();
        let mut pos = 0usize;
        while pos + RECORD_HEADER_SIZE <= bytes.len() {
            let header_buf = &bytes[pos..pos + RECORD_HEADER_SIZE];
            let header = RecordHeader::decode(header_buf)?;
            if header.source == 0 {
                break; // zeroed tail: end of valid data in this piece
            }
            let payload_start = pos + RECORD_HEADER_SIZE;
            let payload_end = payload_start + header.len as usize;
            if payload_end > bytes.len() {
                return Err(LoomError::CorruptLog {
                    log: LogId::Records,
                    addr: base_addr + pos as u64,
                    reason: format!("entry overruns chunk ({} > {})", payload_end, bytes.len()),
                });
            }
            let payload = &bytes[payload_start..payload_end];
            if !RecordHeader::verify(header_buf, payload) {
                return Err(LoomError::CorruptLog {
                    log: LogId::Records,
                    addr: base_addr + pos as u64,
                    reason: "record checksum mismatch".into(),
                });
            }
            let addr = base_addr + pos as u64;
            pos = payload_end;
            if header.is_pad() {
                continue;
            }
            out.records += 1;
            out.max_ts = out.max_ts.max(header.ts);
            if stop_after.is_some_and(|t| header.ts > t) {
                out.stopped = true;
                break;
            }
            if header.source == source {
                self.addrs.push(addr);
                self.ts.push(header.ts);
                self.pay_off.push(payload_start as u32);
                self.pay_len.push(header.len);
                match read(payload) {
                    Some(v) => {
                        self.values.push(v);
                        self.valid.push(1);
                    }
                    None => {
                        self.values.push(0.0);
                        self.valid.push(0);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Builds the selection mask `valid ∧ ts ∈ range ∧ value ∈ values`
    /// and returns the number of selected rows.
    ///
    /// Branch-free: each term is a compare lowered to a 0/1 byte and the
    /// mask is their bitwise AND, so the loop has no data-dependent
    /// branches. `NaN` values fail both value compares, matching
    /// `ValueRange::contains`.
    pub fn select(&mut self, range: TimeRange, values: &ValueRange) -> u64 {
        self.sel.clear();
        self.sel.reserve(self.ts.len());
        let mut selected = 0u64;
        for i in 0..self.ts.len() {
            let t = self.ts[i];
            let v = self.values[i];
            let in_time = (t >= range.start) as u8 & (t <= range.end) as u8;
            let in_value = (v >= values.lo) as u8 & (v <= values.hi) as u8;
            let m = self.valid[i] & in_time & in_value;
            self.sel.push(m);
            selected += u64::from(m);
        }
        selected
    }

    /// [`ColumnBatch::select`] without a value predicate (aggregates
    /// filter on source, time, and extractability only).
    pub fn select_time(&mut self, range: TimeRange) -> u64 {
        self.sel.clear();
        self.sel.reserve(self.ts.len());
        let mut selected = 0u64;
        for i in 0..self.ts.len() {
            let t = self.ts[i];
            let in_time = (t >= range.start) as u8 & (t <= range.end) as u8;
            let m = self.valid[i] & in_time;
            self.sel.push(m);
            selected += u64::from(m);
        }
        selected
    }

    /// The extracted values of the selected rows, in chunk order —
    /// aggregate callers feed these to the same accumulator the
    /// record-at-a-time path uses, preserving float association exactly.
    pub fn selected_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.sel
            .iter()
            .zip(self.values.iter())
            .filter_map(|(&m, &v)| (m != 0).then_some(v))
    }

    /// Delivers the selected rows to the user callback in chunk order.
    /// `bytes` must be the buffer `decode` ran over.
    pub fn emit<F>(&self, bytes: &[u8], source: SourceId, f: &mut F)
    where
        F: FnMut(Record<'_>),
    {
        for i in 0..self.sel.len() {
            if self.sel[i] == 0 {
                continue;
            }
            let ps = self.pay_off[i] as usize;
            let pl = self.pay_len[i] as usize;
            f(Record {
                addr: self.addrs[i],
                source,
                ts: self.ts[i],
                payload: &bytes[ps..ps + pl],
            });
        }
    }

    /// Copies the selected rows into a [`RecordBatch`] for in-order
    /// delivery from the parallel path.
    pub fn emit_to_batch(&self, bytes: &[u8], batch: &mut RecordBatch) {
        for i in 0..self.sel.len() {
            if self.sel[i] == 0 {
                continue;
            }
            let ps = self.pay_off[i] as usize;
            let pl = self.pay_len[i] as usize;
            batch.push(self.addrs[i], self.ts[i], &bytes[ps..ps + pl]);
        }
    }
}

/// Result of [`decode_chunk`]: the scan counters to fold into
/// [`QueryStats`](crate::QueryStats) plus the batch's max timestamp.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DecodeOut {
    /// Counters identical to what `scan_chunk_with_buf` would report for
    /// the same piece, with the columnar accounting fields set.
    pub scan: RegionScan,
    /// See [`BatchScan::max_ts`].
    pub max_ts: u64,
}

/// Reads the chunk piece at `chunk_addr` (clamped to the view's
/// watermark) into `bufs.chunk` and decodes it into `bufs.cols`.
///
/// The returned counters match the record-at-a-time equivalent exactly:
/// an empty piece (at or past the watermark) counts no chunk, and the
/// stop/record accounting follows [`ColumnBatch::decode`]. Callers
/// report batch observability (rows, selectivity) after running a
/// `select*` kernel.
pub(crate) fn decode_chunk(
    view: &QueryView<'_>,
    chunk_addr: u64,
    source: u32,
    desc: ExtractorDesc,
    stop_after: Option<u64>,
    bufs: &mut ScanBuffers,
) -> Result<DecodeOut> {
    let len = view.read_chunk_raw(chunk_addr, &mut bufs.chunk)?;
    if len == 0 {
        bufs.cols.clear();
        return Ok(DecodeOut::default());
    }
    let batch = bufs
        .cols
        .decode(&bufs.chunk[..len], chunk_addr, source, desc, stop_after)?;
    Ok(DecodeOut {
        scan: RegionScan {
            chunks: 1,
            bytes: len as u64,
            records: batch.records,
            stopped: batch.stopped,
            columnar_batches: 1,
            columnar_rows: bufs.cols.len() as u64,
        },
        max_ts: batch.max_ts,
    })
}

/// One worker's reusable scan scratch: the raw chunk buffer plus the
/// column vectors decoded from it. Grown once to the working-set size
/// and then recycled through the [`BufferPool`].
#[derive(Debug, Default)]
pub(crate) struct ScanBuffers {
    /// Raw chunk bytes (grow-once, shared with the record-at-a-time
    /// fallback which uses it as its chunk buffer).
    pub chunk: Vec<u8>,
    /// Columns decoded from `chunk`.
    pub cols: ColumnBatch,
}

/// Number of [`ScanBuffers`] / [`RecordBatch`] slots retained across
/// queries. Matches the executor's worker-count ceiling; extra releases
/// beyond this simply drop their buffers.
const POOL_SLOTS: usize = 16;

/// A small engine-wide pool of scan scratch buffers, shared by every
/// query and worker thread (PR 1's grow-once scan buffer, extended
/// across queries).
///
/// `acquire`/`release` take one uncontended mutex lock per *chunk batch
/// lifetime* (not per record or per chunk), so pooling is never on the
/// hot path. Buffers lost to early error returns are simply not
/// recycled — the pool is a cache, not an accounting structure.
pub(crate) struct BufferPool {
    bufs: Mutex<Vec<ScanBuffers>>,
    batches: Mutex<Vec<RecordBatch>>,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool {
            bufs: Mutex::named("loom.scan_bufs", Vec::new()),
            batches: Mutex::named("loom.scan_batches", Vec::new()),
        }
    }
}

impl BufferPool {
    /// Takes a scratch buffer from the pool (or a fresh one).
    pub fn acquire(&self) -> ScanBuffers {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool, keeping its capacity.
    pub fn release(&self, bufs: ScanBuffers) {
        let mut slots = self.bufs.lock();
        if slots.len() < POOL_SLOTS {
            slots.push(bufs);
        }
    }

    /// Takes an empty (cleared, capacity-preserving) record batch.
    pub fn acquire_batch(&self) -> RecordBatch {
        self.batches.lock().pop().unwrap_or_default()
    }

    /// Recycles a delivered record batch.
    pub fn release_batch(&self, mut batch: RecordBatch) {
        batch.clear();
        let mut slots = self.batches.lock();
        if slots.len() < POOL_SLOTS {
            slots.push(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ChunkIter, NIL_ADDR, SOURCE_PAD};

    fn mk(source: u32, payload: &[u8], ts: u64) -> Vec<u8> {
        let h = RecordHeader {
            source,
            len: payload.len() as u32,
            prev: NIL_ADDR,
            ts,
        };
        let mut v = h.encode(payload).to_vec();
        v.extend_from_slice(payload);
        v
    }

    fn sample_chunk() -> Vec<u8> {
        let mut chunk = Vec::new();
        chunk.extend(mk(1, &10u64.to_le_bytes(), 100));
        chunk.extend(mk(2, &99u64.to_le_bytes(), 101)); // other source
        chunk.extend(mk(SOURCE_PAD, &[0u8; 6], 0)); // padding
        chunk.extend(mk(1, b"abc", 102)); // too short for u64 extractor
        chunk.extend(mk(1, &30u64.to_le_bytes(), 103));
        chunk.extend(std::iter::repeat_n(0u8, 50)); // zeroed tail
        chunk
    }

    #[test]
    fn decode_matches_chunk_iter_rows_and_counters() {
        let chunk = sample_chunk();
        let mut cols = ColumnBatch::default();
        let out = cols
            .decode(&chunk, 4096, 1, ExtractorDesc::U64Le(0), None)
            .unwrap();

        let iter_records: Vec<_> = ChunkIter::new(&chunk, 4096)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(out.records, iter_records.len() as u64);
        assert_eq!(out.max_ts, 103);
        assert!(!out.stopped);

        let expected: Vec<_> = iter_records
            .iter()
            .filter(|r| r.header.source == 1)
            .collect();
        assert_eq!(cols.len(), expected.len());
        assert_eq!(
            cols.addrs,
            expected.iter().map(|r| r.addr).collect::<Vec<_>>()
        );
        assert_eq!(
            cols.ts,
            expected.iter().map(|r| r.header.ts).collect::<Vec<_>>()
        );
        assert_eq!(cols.valid, vec![1, 0, 1], "short payload row is invalid");
        assert_eq!(cols.values[0], 10.0);
        assert_eq!(cols.values[2], 30.0);
    }

    #[test]
    fn decode_stop_after_counts_the_stopping_record() {
        let chunk = sample_chunk();
        let mut cols = ColumnBatch::default();
        let out = cols
            .decode(&chunk, 0, 1, ExtractorDesc::U64Le(0), Some(101))
            .unwrap();
        // Records at ts 100 and 101 pass; ts 102 is the stopping record:
        // counted in `records` (the callback path invokes the closure on
        // it) but not retained as a row.
        assert!(out.stopped);
        assert_eq!(out.records, 3);
        assert_eq!(cols.len(), 1);
        assert_eq!(cols.ts, vec![100]);
    }

    #[test]
    fn decode_reports_corruption_like_chunk_iter() {
        let mut chunk = mk(1, b"payload!", 7);
        chunk[RECORD_HEADER_SIZE + 1] ^= 0x10;
        let mut cols = ColumnBatch::default();
        let err = cols
            .decode(&chunk, 512, 1, ExtractorDesc::CountAll, None)
            .unwrap_err();
        match err {
            LoomError::CorruptLog { log, addr, reason } => {
                assert_eq!(log, LogId::Records);
                assert_eq!(addr, 512);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptLog, got {other:?}"),
        }
    }

    #[test]
    fn select_masks_time_value_and_validity() {
        let chunk = sample_chunk();
        let mut cols = ColumnBatch::default();
        cols.decode(&chunk, 0, 1, ExtractorDesc::U64Le(0), None)
            .unwrap();
        // Rows: (ts 100, v 10, valid), (ts 102, invalid), (ts 103, v 30, valid).
        assert_eq!(cols.select(TimeRange::new(0, 200), &ValueRange::all()), 2);
        assert_eq!(cols.sel, vec![1, 0, 1]);
        assert_eq!(
            cols.select(TimeRange::new(0, 200), &ValueRange::new(20.0, 40.0)),
            1
        );
        assert_eq!(cols.select(TimeRange::new(103, 200), &ValueRange::all()), 1);
        assert_eq!(cols.select_time(TimeRange::new(100, 102)), 1);
        assert_eq!(
            cols.selected_values().collect::<Vec<_>>(),
            vec![10.0],
            "select_time keeps only the valid in-range row"
        );
    }

    #[test]
    fn emit_and_batch_agree() {
        let chunk = sample_chunk();
        let mut cols = ColumnBatch::default();
        cols.decode(&chunk, 0, 1, ExtractorDesc::U64Le(0), None)
            .unwrap();
        cols.select(TimeRange::new(0, 200), &ValueRange::all());
        let mut direct = Vec::new();
        cols.emit(&chunk, SourceId(1), &mut |r: Record<'_>| {
            direct.push((r.addr, r.ts, r.payload.to_vec()))
        });
        let mut batch = RecordBatch::default();
        cols.emit_to_batch(&chunk, &mut batch);
        let mut via_batch = Vec::new();
        batch.for_each(|addr, ts, payload| via_batch.push((addr, ts, payload.to_vec())));
        assert_eq!(direct, via_batch);
        assert_eq!(direct.len(), 2);
    }

    #[test]
    fn pool_recycles_capacity() {
        let pool = BufferPool::default();
        let mut b = pool.acquire();
        b.chunk.resize(1 << 16, 0);
        let cap = b.chunk.capacity();
        pool.release(b);
        let b2 = pool.acquire();
        assert!(b2.chunk.capacity() >= cap, "capacity survives the pool");
        let mut batch = pool.acquire_batch();
        batch.push(0, 1, b"xyz");
        pool.release_batch(batch);
        let batch2 = pool.acquire_batch();
        assert_eq!(batch2.len(), 0, "recycled batches come back empty");
    }
}
