//! The fluent query builder: one entry point for every operator.
//!
//! [`Loom::query`] replaces the old `indexed_scan`/`indexed_scan_opt`,
//! `indexed_aggregate`/`indexed_aggregate_opt`, and
//! `bin_counts`/`bin_counts_opt` pairs with a single builder:
//!
//! ```no_run
//! # use loom::{Aggregate, Config, Loom, TimeRange, ValueRange};
//! # let (loom, _w) = Loom::open(Config::small("/tmp/doc")).unwrap();
//! # let source = loom.define_source("s");
//! # let index = loom.define_index(source, loom::extract::u64_le_at(0),
//! #     loom::HistogramSpec::uniform(0.0, 100.0, 4).unwrap()).unwrap();
//! let p99 = loom
//!     .query(source)
//!     .index(index)
//!     .range(TimeRange::new(0, loom.now()))
//!     .aggregate(Aggregate::Percentile(99.0))
//!     .unwrap();
//! ```
//!
//! Chainers configure the query; the terminal methods [`Query::scan`],
//! [`Query::aggregate`], and [`Query::bin_counts`] execute it. Terminals
//! are also the self-observability boundary: each one times the whole
//! query, records it in the engine's metrics registry, and captures a
//! slow-query trace when it crosses
//! [`Config::slow_query_nanos`](crate::Config::slow_query_nanos).

use super::view::QueryView;
use super::{
    aggregate, indexed_scan, raw_scan, Aggregate, AggregateResult, QueryOptions, Record, TimeRange,
    ValueRange,
};
use crate::engine::Loom;
use crate::error::{LoomError, Result};
use crate::obs::{QueryKind, QueryObservation, QueryPhases, Stopwatch};
use crate::registry::{IndexId, SourceId};
use crate::stats::QueryStats;

/// A configured-but-not-yet-executed query over one source.
///
/// Built by [`Loom::query`]; executed by one of the terminal methods.
#[must_use = "a Query does nothing until a terminal method (scan / aggregate / bin_counts) runs it"]
pub struct Query<'a> {
    loom: &'a Loom,
    source: SourceId,
    index: Option<IndexId>,
    range: TimeRange,
    values: Option<ValueRange>,
    opts: QueryOptions,
}

impl Loom {
    /// Starts building a query over `source`.
    ///
    /// With no further configuration the query covers all time, all
    /// values, and (without an [`index`](Query::index)) scans raw
    /// records. See [`Query`] for the chainers and terminals.
    pub fn query(&self, source: SourceId) -> Query<'_> {
        Query {
            loom: self,
            source,
            index: None,
            range: TimeRange::new(0, u64::MAX),
            values: None,
            opts: QueryOptions::default(),
        }
    }
}

impl<'a> Query<'a> {
    /// Uses `index` for value filtering, chunk skipping, and aggregation.
    ///
    /// Required by [`aggregate`](Self::aggregate),
    /// [`bin_counts`](Self::bin_counts), and
    /// [`value_range`](Self::value_range); optional for
    /// [`scan`](Self::scan) (which walks the raw record chain without
    /// one).
    pub fn index(mut self, index: IndexId) -> Self {
        self.index = Some(index);
        self
    }

    /// Restricts the query to arrival times in `range` (default: all
    /// time).
    pub fn range(mut self, range: TimeRange) -> Self {
        self.range = range;
        self
    }

    /// Restricts [`scan`](Self::scan) to records whose indexed value lies
    /// in `values`. Requires [`index`](Self::index).
    pub fn value_range(mut self, values: ValueRange) -> Self {
        self.values = Some(values);
        self
    }

    /// Sets the execution options (index ablation switches and
    /// parallelism) wholesale.
    pub fn options(mut self, opts: QueryOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets only the worker-pool size; `0` restores the config default.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.opts = self.opts.with_parallelism(workers);
        self
    }

    /// Executes the query, delivering matching records to `f`.
    ///
    /// With an [`index`](Self::index) this is the indexed range scan of
    /// Figure 9 (records in log order, chunks pruned via summaries);
    /// without one it is `raw_scan` (newest to oldest along the source's
    /// record chain), and setting a [`value_range`](Self::value_range) is
    /// an [`InvalidQuery`](LoomError::InvalidQuery) error.
    ///
    /// # Errors
    ///
    /// [`LoomError::InvalidQuery`] for a value range without an index,
    /// [`LoomError::UnknownIndex`] / [`LoomError::UnknownSource`] when
    /// the named index or source does not exist, and
    /// [`LoomError::CorruptLog`] if a chunk fails validation mid-scan.
    pub fn scan<F>(self, mut f: F) -> Result<QueryStats>
    where
        F: FnMut(Record<'_>),
    {
        let timer = Stopwatch::start();
        let mut phases = QueryPhases::default();
        match self.index {
            Some(index) => {
                let values = self.values.unwrap_or_else(ValueRange::all);
                let meta = self.loom.index_meta(self.source, index)?;
                let shard = self.loom.shard(self.source.0);
                // Blocks the compactor from punching hot chunk bytes for
                // the query's lifetime: the captured cold snapshot plus
                // unpunched hot bytes together cover every chunk.
                let _tier = shard.tier_lock.read();
                let view = QueryView::capture_from(shard, &meta.source_shared)?;
                let mut stats = indexed_scan::run(
                    &view,
                    &meta,
                    self.range,
                    values,
                    self.opts,
                    &mut phases,
                    &mut f,
                )?;
                stats.shards_fanned_out = 1;
                self.observe(QueryKind::IndexedScan, Some(index), &stats, phases, &timer);
                Ok(stats)
            }
            None => {
                if self.values.is_some() {
                    return Err(LoomError::InvalidQuery(
                        "value_range requires an index; add .index(...) to the query".into(),
                    ));
                }
                let shard = self.loom.shard(self.source.0);
                let _tier = shard.tier_lock.read();
                let view = QueryView::capture(shard, self.source)?;
                let mut stats = raw_scan::run(&view, self.source, self.range, f)?;
                stats.shards_fanned_out = 1;
                self.observe(QueryKind::RawScan, None, &stats, phases, &timer);
                Ok(stats)
            }
        }
    }

    /// Executes the query as an aggregate over the indexed values
    /// (Figure 9: `indexed_aggregate`). Requires [`index`](Self::index);
    /// a [`value_range`](Self::value_range) is not supported here and
    /// errors.
    ///
    /// # Errors
    ///
    /// [`LoomError::InvalidQuery`] without an index or with a value
    /// range, [`LoomError::UnknownIndex`] /
    /// [`LoomError::UnknownSource`] for unknown names, and
    /// [`LoomError::CorruptLog`] on a chunk that fails validation.
    pub fn aggregate(self, method: Aggregate) -> Result<AggregateResult> {
        let timer = Stopwatch::start();
        let mut phases = QueryPhases::default();
        let index = self.require_index("aggregate")?;
        self.reject_value_range("aggregate")?;
        let meta = self.loom.index_meta(self.source, index)?;
        let shard = self.loom.shard(self.source.0);
        let _tier = shard.tier_lock.read();
        let view = QueryView::capture_from(shard, &meta.source_shared)?;
        let mut result = aggregate::run(&view, &meta, self.range, method, self.opts, &mut phases)?;
        result.stats.shards_fanned_out = 1;
        self.observe(
            QueryKind::Aggregate,
            Some(index),
            &result.stats,
            phases,
            &timer,
        );
        Ok(result)
    }

    /// Executes the query as a per-bin record count — the
    /// histogram-as-CDF of §4.3, the composition primitive behind
    /// distributed holistic aggregates (see
    /// [`coordinator`](crate::coordinator)). Requires
    /// [`index`](Self::index); a [`value_range`](Self::value_range) is
    /// not supported here and errors.
    ///
    /// # Errors
    ///
    /// [`LoomError::InvalidQuery`] without an index or with a value
    /// range, [`LoomError::UnknownIndex`] /
    /// [`LoomError::UnknownSource`] for unknown names, and
    /// [`LoomError::CorruptLog`] on a chunk that fails validation.
    pub fn bin_counts(self) -> Result<(Vec<u64>, QueryStats)> {
        let timer = Stopwatch::start();
        let mut phases = QueryPhases::default();
        let index = self.require_index("bin_counts")?;
        self.reject_value_range("bin_counts")?;
        let meta = self.loom.index_meta(self.source, index)?;
        let shard = self.loom.shard(self.source.0);
        let _tier = shard.tier_lock.read();
        let view = QueryView::capture_from(shard, &meta.source_shared)?;
        let (counts, mut stats) =
            aggregate::bin_counts(&view, &meta, self.range, self.opts, &mut phases)?;
        stats.shards_fanned_out = 1;
        self.observe(QueryKind::BinCounts, Some(index), &stats, phases, &timer);
        Ok((counts, stats))
    }

    fn require_index(&self, terminal: &str) -> Result<IndexId> {
        self.index.ok_or_else(|| {
            LoomError::InvalidQuery(format!(
                "{terminal} requires an index; add .index(...) to the query"
            ))
        })
    }

    fn reject_value_range(&self, terminal: &str) -> Result<()> {
        if self.values.is_some() {
            return Err(LoomError::InvalidQuery(format!(
                "value_range is not supported for {terminal}"
            )));
        }
        Ok(())
    }

    fn observe(
        &self,
        kind: QueryKind,
        index: Option<IndexId>,
        stats: &QueryStats,
        phases: QueryPhases,
        timer: &Stopwatch,
    ) {
        // Observed into the home shard's registry: a single-source query
        // runs entirely on one shard, so its metrics land there (the
        // slow-query ring behind it is engine-global).
        self.loom
            .shard(self.source.0)
            .obs
            .observe_query(QueryObservation {
                kind,
                source: self.source.0,
                index: index.map(|i| i.0),
                used_ts_index: self.opts.use_ts_index && index.is_some(),
                used_chunk_index: self.opts.use_chunk_index && index.is_some(),
                stats: *stats,
                phases,
                total_nanos: timer.elapsed_nanos(),
            });
    }
}
