//! Chunk-parallel query execution (the worker pool behind §4.3's
//! operators).
//!
//! The planner selects a query's candidate chunks up front; sealed chunks
//! are immutable and every worker reads them through the same point-in-time
//! [`QueryView`](super::view::QueryView) snapshots, so chunk scans are
//! embarrassingly parallel. This module fans those scans out over a pool
//! of scoped threads and hands the per-chunk results back to the caller
//! **in submission order**, which is log order — callers deliver records
//! and merge partial aggregates exactly as the serial path would, so query
//! output is bit-identical for every pool size.
//!
//! Mechanics:
//! - workers pull chunk indexes from a shared atomic counter (work
//!   stealing, no per-chunk queue allocation);
//! - each worker owns one reusable chunk buffer and produces private
//!   per-chunk outputs (scan counters, record batches, partial
//!   aggregates) — no shared mutable state, no locks on the hot path;
//! - outputs are tagged with their chunk index and re-assembled into
//!   submission order after the pool joins;
//! - a worker panic propagates to the caller; errors surface as the
//!   failing task with the smallest chunk index, so error reporting is
//!   deterministic too.
//!
//! Callers keep `pool size == 1` on the plain serial code path (no
//! spawning, no batching) — this module is only entered for 2+ workers.

use crate::sync::atomic::{AtomicUsize, Ordering};

use super::columnar::{BufferPool, ScanBuffers};
use crate::error::Result;

/// Runs `task(worker_bufs, chunk_addr)` for every chunk address across
/// `workers` scoped threads and returns the outputs in input order.
///
/// `task` must be safe to call concurrently from multiple threads
/// (`Sync`); the [`ScanBuffers`] it receives is the calling worker's
/// private scan scratch, checked out of `pool` for the pool's lifetime
/// and recycled afterwards so buffer capacity survives across queries.
pub(crate) fn map_chunks<T, F>(
    pool: &BufferPool,
    workers: usize,
    chunks: &[u64],
    task: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut ScanBuffers, u64) -> Result<T> + Sync,
{
    debug_assert!(
        workers >= 2,
        "serial execution must stay on the caller's direct path"
    );
    let next = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, Result<T>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(chunks.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut bufs = pool.acquire();
                    let mut local: Vec<(usize, Result<T>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= chunks.len() {
                            break;
                        }
                        let result = task(&mut bufs, chunks[i]);
                        let failed = result.is_err();
                        local.push((i, result));
                        if failed {
                            // Other workers keep draining; the merge step
                            // below picks the lowest failing index.
                            break;
                        }
                    }
                    pool.release(bufs);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outputs) => outputs,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(chunks.len());
    slots.resize_with(chunks.len(), || None);
    let mut first_err: Option<(usize, crate::error::LoomError)> = None;
    for (i, result) in worker_outputs.into_iter().flatten() {
        match result {
            Ok(value) => slots[i] = Some(value),
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every chunk index is claimed exactly once"))
        .collect())
}

/// A batch of matching records collected by one worker from one chunk,
/// ready for in-order delivery to the user callback.
///
/// Payload bytes are appended to a single arena per batch instead of one
/// allocation per record.
#[derive(Default)]
pub(crate) struct RecordBatch {
    /// `(addr, ts, payload_len)` per matching record, in chunk order.
    recs: Vec<(u64, u64, u32)>,
    /// Concatenated payloads, in the same order.
    bytes: Vec<u8>,
}

impl RecordBatch {
    /// Appends a matching record to the batch.
    pub fn push(&mut self, addr: u64, ts: u64, payload: &[u8]) {
        self.recs.push((addr, ts, payload.len() as u32));
        self.bytes.extend_from_slice(payload);
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Removes all records, keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.recs.clear();
        self.bytes.clear();
    }

    /// Invokes `f(addr, ts, payload)` for every record in batch order.
    pub fn for_each<F>(&self, mut f: F)
    where
        F: FnMut(u64, u64, &[u8]),
    {
        let mut offset = 0usize;
        for &(addr, ts, len) in &self.recs {
            let payload = &self.bytes[offset..offset + len as usize];
            offset += len as usize;
            f(addr, ts, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::LoomError;

    #[test]
    fn map_chunks_preserves_input_order() {
        let pool = BufferPool::default();
        let chunks: Vec<u64> = (0..257).collect();
        let out = map_chunks(&pool, 4, &chunks, |_bufs, addr| Ok(addr * 3)).unwrap();
        assert_eq!(out.len(), chunks.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn map_chunks_reports_the_lowest_failing_chunk() {
        let pool = BufferPool::default();
        let chunks: Vec<u64> = (0..64).collect();
        let err = map_chunks(&pool, 4, &chunks, |_bufs, addr| {
            if addr >= 10 {
                Err(LoomError::InvalidQuery(format!("chunk {addr}")))
            } else {
                Ok(addr)
            }
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("chunk 10"),
            "expected deterministic lowest-index error, got: {err}"
        );
    }

    #[test]
    fn worker_buffers_are_private_and_reused() {
        // Each task writes a marker and checks it never sees another
        // chunk's marker mid-write (buffers are per-worker, not shared).
        let pool = BufferPool::default();
        let chunks: Vec<u64> = (0..128).collect();
        let out = map_chunks(&pool, 3, &chunks, |bufs, addr| {
            bufs.chunk.clear();
            bufs.chunk.extend_from_slice(&addr.to_le_bytes());
            crate::sync::thread::yield_now();
            let read = u64::from_le_bytes(bufs.chunk[..8].try_into().unwrap());
            Ok(read == addr)
        })
        .unwrap();
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn record_batch_round_trips() {
        let mut b = RecordBatch::default();
        b.push(0, 100, b"abc");
        b.push(64, 200, b"");
        b.push(128, 300, b"xyzzy");
        assert_eq!(b.len(), 3);
        let mut seen = Vec::new();
        b.for_each(|addr, ts, payload| seen.push((addr, ts, payload.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, 100, b"abc".to_vec()),
                (64, 200, Vec::new()),
                (128, 300, b"xyzzy".to_vec()),
            ]
        );
    }
}
