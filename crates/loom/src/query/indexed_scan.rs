//! The indexed range scan operator (§4.3).
//!
//! Retrieves records of a source within a time range *and* a value range,
//! using the timestamp index to find the relevant chunk summaries and the
//! summaries' histogram bins to skip chunks that cannot contain matching
//! values. Chunks that match are scanned and records re-filtered exactly;
//! the active (unsummarized) tail region is scanned raw.
//!
//! The module also implements the paper's index-ablation modes (§6.4):
//! timestamp-index-only, chunk-index-only, and no-index execution.

use super::columnar;
use super::executor::{self, RecordBatch};
use super::planner::{self, DecodeMode, SummaryPlan};
use super::view::{QueryView, ScanControl};
use super::{IndexMeta, QueryOptions, Record, TimeRange, ValueRange};
use crate::error::Result;
use crate::obs::{QueryPhases, Stopwatch};
use crate::record::ChunkRecord;
use crate::stats::QueryStats;
use crate::summary::ChunkSummary;
use crate::ts_index::{TsIndexView, TsKind};

/// Executes an indexed scan over `view`, filling `phases` with per-stage
/// wall-clock durations.
pub(crate) fn run<F>(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    values: ValueRange,
    opts: QueryOptions,
    phases: &mut QueryPhases,
    mut f: F,
) -> Result<QueryStats>
where
    F: FnMut(Record<'_>),
{
    let mut stats = QueryStats {
        workers_used: 1,
        ..QueryStats::default()
    };
    match (opts.use_ts_index, opts.use_chunk_index) {
        (true, true) => {
            let timer = Stopwatch::start();
            let plan = planner::plan(view, range)?;
            phases.plan_nanos += timer.elapsed_nanos();
            scan_with_summaries(
                view, meta, range, values, &plan, opts, &mut stats, phases, &mut f,
            )?;
        }
        (false, true) => {
            let timer = Stopwatch::start();
            let plan = planner::plan_full(view)?;
            phases.plan_nanos += timer.elapsed_nanos();
            scan_with_summaries(
                view, meta, range, values, &plan, opts, &mut stats, phases, &mut f,
            )?;
        }
        (true, false) => {
            // A single forward region scan with early stop: sequential by
            // construction, so the pool is never used here.
            scan_ts_only(view, meta, range, values, opts, &mut stats, phases, &mut f)?;
        }
        (false, false) => {
            scan_none(view, meta, range, values, opts, &mut stats, phases, &mut f)?;
        }
    }
    Ok(stats)
}

/// Whether a summary's bins for this index can contain values in range.
fn bins_may_match(meta: &IndexMeta, summary: &ChunkSummary, values: &ValueRange) -> bool {
    let Some(bins) = summary.index_bins(meta.id.0) else {
        // No indexed data in this chunk (e.g., the index was defined after
        // the chunk sealed, §5.3): nothing for this index to return.
        return false;
    };
    bins.iter().any(|(bin, stats)| {
        let (lo, hi) = meta.spec.bin_range(*bin as usize);
        // The bin overlaps the query range and its observed min/max do too.
        lo <= values.hi && hi > values.lo && stats.min <= values.hi && stats.max >= values.lo
    })
}

/// Whether a chunk record passes the source/time/value filters.
fn record_matches(
    meta: &IndexMeta,
    range: TimeRange,
    values: &ValueRange,
    rec: &ChunkRecord<'_>,
) -> bool {
    if rec.header.source != meta.source.0 || !range.contains(rec.header.ts) {
        return false;
    }
    let Some(v) = (meta.extractor)(rec.payload) else {
        return false;
    };
    values.contains(v)
}

/// Emits a chunk record if it passes the source/time/value filters;
/// returns whether it matched.
fn filter_emit<F>(
    meta: &IndexMeta,
    range: TimeRange,
    values: &ValueRange,
    rec: &ChunkRecord<'_>,
    f: &mut F,
) -> bool
where
    F: FnMut(Record<'_>),
{
    if !record_matches(meta, range, values, rec) {
        return false;
    }
    f(Record {
        addr: rec.addr,
        source: meta.source,
        ts: rec.header.ts,
        payload: rec.payload,
    });
    true
}

/// Delivers a worker-collected batch to the user callback, in log order.
fn deliver_batch<F>(meta: &IndexMeta, batch: &RecordBatch, f: &mut F)
where
    F: FnMut(Record<'_>),
{
    batch.for_each(|addr, ts, payload| {
        f(Record {
            addr,
            source: meta.source,
            ts,
            payload,
        })
    });
}

/// Default path: summaries select chunks; the tail region is scanned raw.
///
/// The selected chunks are scanned serially (one worker) or fanned across
/// the worker pool; either way records are delivered in log order. The
/// unsummarized tail region always stays serial — it is at most one chunk
/// ahead of the last seal and its early-stop scan is inherently ordered.
#[allow(clippy::too_many_arguments)]
fn scan_with_summaries<F>(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    values: ValueRange,
    plan: &SummaryPlan,
    opts: QueryOptions,
    stats: &mut QueryStats,
    phases: &mut QueryPhases,
    f: &mut F,
) -> Result<()>
where
    F: FnMut(Record<'_>),
{
    let select_timer = Stopwatch::start();
    let probes_before = stats.summaries_scanned;
    let mut chunks: Vec<u64> = Vec::new();
    planner::for_each_relevant_summary(
        view,
        plan,
        range,
        &mut stats.summaries_scanned,
        |summary, _fully| {
            if summary.has_source(meta.source.0) && bins_may_match(meta, summary, &values) {
                chunks.push(summary.chunk_addr);
            }
            Ok(())
        },
    )?;
    phases.select_nanos += select_timer.elapsed_nanos();
    view.obs
        .index
        .summary_probes(stats.summaries_scanned - probes_before);
    view.obs.index.chunk_hits(chunks.len() as u64);
    let mode = planner::decode_mode(meta, opts);
    let workers = view.workers(opts.parallelism, chunks.len());
    stats.workers_used = stats.workers_used.max(workers as u64);
    let mut matched = 0u64;
    let scan_timer = Stopwatch::start();
    if workers <= 1 {
        let mut bufs = view.bufs.acquire();
        for chunk_addr in chunks {
            let matched_before = matched;
            match mode {
                DecodeMode::Columnar(desc) => {
                    let out = columnar::decode_chunk(
                        view,
                        chunk_addr,
                        meta.source.0,
                        desc,
                        None,
                        &mut bufs,
                    )?;
                    let selected = bufs.cols.select(range, &values);
                    view.obs
                        .query
                        .columnar_batch(bufs.cols.len() as u64, selected);
                    bufs.cols.emit(&bufs.chunk, meta.source, f);
                    matched += selected;
                    out.scan.fold_into(stats);
                }
                DecodeMode::RecordAtATime => {
                    let out = view.scan_chunk_with_buf(chunk_addr, &mut bufs.chunk, |rec| {
                        if filter_emit(meta, range, &values, rec, f) {
                            matched += 1;
                        }
                        ScanControl::Continue
                    })?;
                    out.fold_into(stats);
                }
            }
            if matched == matched_before {
                view.obs.index.false_positive_chunk();
            }
        }
        view.bufs.release(bufs);
    } else {
        view.obs.query.pool_tasks(chunks.len() as u64);
        let batches = executor::map_chunks(view.bufs, workers, &chunks, |bufs, chunk_addr| {
            let mut batch = view.bufs.acquire_batch();
            match mode {
                DecodeMode::Columnar(desc) => {
                    let out =
                        columnar::decode_chunk(view, chunk_addr, meta.source.0, desc, None, bufs)?;
                    let selected = bufs.cols.select(range, &values);
                    view.obs
                        .query
                        .columnar_batch(bufs.cols.len() as u64, selected);
                    bufs.cols.emit_to_batch(&bufs.chunk, &mut batch);
                    Ok((out.scan, batch))
                }
                DecodeMode::RecordAtATime => {
                    let out = view.scan_chunk_with_buf(chunk_addr, &mut bufs.chunk, |rec| {
                        if record_matches(meta, range, &values, rec) {
                            batch.push(rec.addr, rec.header.ts, rec.payload);
                        }
                        ScanControl::Continue
                    })?;
                    Ok((out, batch))
                }
            }
        })?;
        for (out, batch) in batches {
            out.fold_into(stats);
            matched += batch.len() as u64;
            if batch.is_empty() {
                view.obs.index.false_positive_chunk();
            }
            deliver_batch(meta, &batch, f);
            view.bufs.release_batch(batch);
        }
    }
    phases.chunk_scan_nanos += scan_timer.elapsed_nanos();

    if plan.region_relevant {
        let tail_timer = Stopwatch::start();
        let out = view.scan_region(plan.region_start, view.rec.watermark(), |rec| {
            if rec.header.ts > range.end {
                return ScanControl::Stop;
            }
            if filter_emit(meta, range, &values, rec, f) {
                matched += 1;
            }
            ScanControl::Continue
        })?;
        out.fold_into(stats);
        phases.tail_scan_nanos += tail_timer.elapsed_nanos();
    }
    stats.records_matched += matched;
    Ok(())
}

/// Timestamp-index-only ablation: seek to the range start by time, then
/// scan forward without chunk skipping.
#[allow(clippy::too_many_arguments)]
fn scan_ts_only<F>(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    values: ValueRange,
    opts: QueryOptions,
    stats: &mut QueryStats,
    phases: &mut QueryPhases,
    f: &mut F,
) -> Result<()>
where
    F: FnMut(Record<'_>),
{
    view.obs.index.ts_seek();
    let plan_timer = Stopwatch::start();
    let tsv = TsIndexView::new(&view.ts);
    // Seek: the newest timestamp entry at or before the range start gives
    // a record-log position from which scanning forward covers the range.
    let pos = tsv.partition_by_ts(range.start.saturating_sub(1))?;
    let start_addr = tsv
        .find_backward(pos, |e| e.kind == TsKind::RecordMark)?
        .map(|(_, e)| e.target - e.target % view.chunk_size)
        .unwrap_or(0);
    phases.plan_nanos += plan_timer.elapsed_nanos();
    let mut matched = 0u64;
    let scan_timer = Stopwatch::start();
    match planner::decode_mode(meta, opts) {
        DecodeMode::Columnar(desc) => {
            // Forward piece-by-piece decode with the same early stop the
            // record path takes: a record past `range.end` ends the scan.
            let mut bufs = view.bufs.acquire();
            let wm = view.rec.watermark();
            let mut pos = start_addr;
            while pos < wm {
                let out = columnar::decode_chunk(
                    view,
                    pos,
                    meta.source.0,
                    desc,
                    Some(range.end),
                    &mut bufs,
                )?;
                let selected = bufs.cols.select(range, &values);
                view.obs
                    .query
                    .columnar_batch(bufs.cols.len() as u64, selected);
                bufs.cols.emit(&bufs.chunk, meta.source, f);
                matched += selected;
                out.scan.fold_into(stats);
                if out.scan.stopped {
                    break;
                }
                pos += view.chunk_size;
            }
            view.bufs.release(bufs);
        }
        DecodeMode::RecordAtATime => {
            let out = view.scan_region(start_addr, view.rec.watermark(), |rec| {
                if rec.header.ts > range.end {
                    return ScanControl::Stop;
                }
                if filter_emit(meta, range, &values, rec, f) {
                    matched += 1;
                }
                ScanControl::Continue
            })?;
            out.fold_into(stats);
        }
    }
    phases.chunk_scan_nanos += scan_timer.elapsed_nanos();
    stats.records_matched += matched;
    Ok(())
}

/// No-index ablation: scan the record log backward from the tail, chunk
/// piece by chunk piece, until reaching data older than the range. This is
/// what a raw-file scan does and makes latency grow with lookback
/// distance (§6.4, Figure 16).
///
/// With 2+ workers, descending batches of pieces are scanned in parallel
/// and delivered newest-first; pieces scanned past the terminating one
/// (speculative over-read) are discarded without folding their counters,
/// so statistics match the serial path exactly.
#[allow(clippy::too_many_arguments)]
fn scan_none<F>(
    view: &QueryView<'_>,
    meta: &IndexMeta,
    range: TimeRange,
    values: ValueRange,
    opts: QueryOptions,
    stats: &mut QueryStats,
    phases: &mut QueryPhases,
    f: &mut F,
) -> Result<()>
where
    F: FnMut(Record<'_>),
{
    let wm = view.rec.watermark();
    if wm == 0 {
        return Ok(());
    }
    let newest_piece = (wm - 1) / view.chunk_size;
    let total_pieces = newest_piece as usize + 1;
    let mode = planner::decode_mode(meta, opts);
    let workers = view.workers(opts.parallelism, total_pieces);
    stats.workers_used = stats.workers_used.max(workers as u64);
    let mut matched = 0u64;
    let scan_timer = Stopwatch::start();
    if workers <= 1 {
        let mut bufs = view.bufs.acquire();
        let mut piece = newest_piece;
        loop {
            let addr = piece * view.chunk_size;
            let piece_max_ts;
            match mode {
                DecodeMode::Columnar(desc) => {
                    let out =
                        columnar::decode_chunk(view, addr, meta.source.0, desc, None, &mut bufs)?;
                    let selected = bufs.cols.select(range, &values);
                    view.obs
                        .query
                        .columnar_batch(bufs.cols.len() as u64, selected);
                    bufs.cols.emit(&bufs.chunk, meta.source, f);
                    matched += selected;
                    out.scan.fold_into(stats);
                    piece_max_ts = out.max_ts;
                }
                DecodeMode::RecordAtATime => {
                    let mut max_ts = 0u64;
                    let out = view.scan_region_with_buf(
                        addr,
                        (addr + view.chunk_size).min(wm),
                        &mut bufs.chunk,
                        |rec| {
                            max_ts = max_ts.max(rec.header.ts);
                            if filter_emit(meta, range, &values, rec, f) {
                                matched += 1;
                            }
                            ScanControl::Continue
                        },
                    )?;
                    out.fold_into(stats);
                    piece_max_ts = max_ts;
                }
            }
            // All earlier pieces hold only older records.
            if piece_max_ts != 0 && piece_max_ts < range.start {
                break;
            }
            if piece == 0 {
                break;
            }
            piece -= 1;
        }
        view.bufs.release(bufs);
    } else {
        let mut next_piece = newest_piece;
        'outer: loop {
            // Pieces for this round, newest first.
            let batch_len = ((workers * 2) as u64).min(next_piece + 1);
            let pieces: Vec<u64> = (0..batch_len).map(|i| next_piece - i).collect();
            view.obs.query.pool_tasks(pieces.len() as u64);
            let outputs = executor::map_chunks(view.bufs, workers, &pieces, |bufs, piece| {
                let addr = piece * view.chunk_size;
                let mut batch = view.bufs.acquire_batch();
                match mode {
                    DecodeMode::Columnar(desc) => {
                        let out =
                            columnar::decode_chunk(view, addr, meta.source.0, desc, None, bufs)?;
                        let selected = bufs.cols.select(range, &values);
                        view.obs
                            .query
                            .columnar_batch(bufs.cols.len() as u64, selected);
                        bufs.cols.emit_to_batch(&bufs.chunk, &mut batch);
                        Ok((out.scan, batch, out.max_ts))
                    }
                    DecodeMode::RecordAtATime => {
                        let mut piece_max_ts = 0u64;
                        let out = view.scan_region_with_buf(
                            addr,
                            (addr + view.chunk_size).min(wm),
                            &mut bufs.chunk,
                            |rec| {
                                piece_max_ts = piece_max_ts.max(rec.header.ts);
                                if record_matches(meta, range, &values, rec) {
                                    batch.push(rec.addr, rec.header.ts, rec.payload);
                                }
                                ScanControl::Continue
                            },
                        )?;
                        Ok((out, batch, piece_max_ts))
                    }
                }
            })?;
            for (out, batch, piece_max_ts) in outputs {
                out.fold_into(stats);
                matched += batch.len() as u64;
                deliver_batch(meta, &batch, f);
                let past_range = piece_max_ts != 0 && piece_max_ts < range.start;
                view.bufs.release_batch(batch);
                if past_range {
                    break 'outer;
                }
            }
            if next_piece + 1 == batch_len {
                break;
            }
            next_piece -= batch_len;
        }
    }
    phases.chunk_scan_nanos += scan_timer.elapsed_nanos();
    stats.records_matched += matched;
    Ok(())
}
