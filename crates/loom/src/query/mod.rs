//! Query operators: raw scan, indexed range scan, indexed aggregate (§4.3).
//!
//! All operators follow the same access pattern: use the timestamp index
//! to locate relevant positions in the chunk index and record log, use
//! chunk summaries to skip or pre-aggregate chunks, and scan only the
//! chunks that can contain matching records (plus the active, not-yet-
//! summarized tail region).
//!
//! Candidate chunks are immutable once summarized and selected up front,
//! so operators can fan chunk scans across a scoped worker pool (the
//! private `executor` module): `QueryOptions::parallelism` (or the
//! `Config::query_threads` default) picks the pool size, and per-chunk
//! results are merged back in log order so output is identical for every
//! pool size. With one worker (the default) operators run entirely on the
//! calling thread with a bounded memory footprint (a snapshot of the
//! in-memory log tails plus one chunk buffer); with N workers the
//! footprint adds one chunk buffer and the in-flight result batches per
//! worker.

mod aggregate;
mod builder;
pub(crate) mod columnar;
mod executor;
mod indexed_scan;
mod planner;
mod raw_scan;
mod view;

pub use builder::Query;

use std::num::NonZeroUsize;
use std::sync::Arc;

use crate::engine::Loom;
use crate::error::{LoomError, Result};
use crate::registry::{IndexId, SourceId, SourceShared};
use crate::stats::QueryStats;

/// An inclusive time range on Loom's internal (arrival) timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// Inclusive start, in nanoseconds.
    pub start: u64,
    /// Inclusive end, in nanoseconds.
    pub end: u64,
}

impl TimeRange {
    /// Creates a time range; `start` must not exceed `end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "time range start {start} exceeds end {end}");
        TimeRange { start, end }
    }

    /// The last `duration` nanoseconds before `now`.
    pub fn last(now: u64, duration: u64) -> Self {
        TimeRange {
            start: now.saturating_sub(duration),
            end: now,
        }
    }

    /// Whether `ts` falls inside the range.
    pub fn contains(&self, ts: u64) -> bool {
        ts >= self.start && ts <= self.end
    }
}

/// An inclusive value range for indexed scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl ValueRange {
    /// Creates a value range; `lo` must not exceed `hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "value range lo {lo} exceeds hi {hi}");
        ValueRange { lo, hi }
    }

    /// All values at or above `lo`.
    pub fn at_least(lo: f64) -> Self {
        ValueRange {
            lo,
            hi: f64::INFINITY,
        }
    }

    /// All values at or below `hi`.
    pub fn at_most(hi: f64) -> Self {
        ValueRange {
            lo: f64::NEG_INFINITY,
            hi,
        }
    }

    /// The full value range (no value filtering).
    pub fn all() -> Self {
        ValueRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Whether `v` falls inside the range.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// A record delivered to a scan callback.
#[derive(Debug, Clone, Copy)]
pub struct Record<'a> {
    /// The record's log address.
    pub addr: u64,
    /// The source it belongs to.
    pub source: SourceId,
    /// Internal (arrival) timestamp in nanoseconds.
    pub ts: u64,
    /// The raw payload.
    pub payload: &'a [u8],
}

/// Aggregation methods for `indexed_aggregate` (Figure 9).
///
/// `Count`, `Sum`, `Min`, `Max`, and `Mean` are distributive and largely
/// computed from chunk summaries; `Percentile` is holistic and uses the
/// bins-as-CDF strategy of §4.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregate {
    /// Number of records with an extractable indexed value.
    Count,
    /// Sum of indexed values.
    Sum,
    /// Minimum indexed value.
    Min,
    /// Maximum indexed value.
    Max,
    /// Arithmetic mean of indexed values.
    Mean,
    /// Nearest-rank percentile (0–100) of indexed values.
    Percentile(f64),
}

/// Result of an `indexed_aggregate` query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateResult {
    /// The aggregate value; `None` when no record matched.
    pub value: Option<f64>,
    /// Number of values that contributed.
    pub count: u64,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Per-query execution options: the paper's index-ablation switches
/// (§6.4, Figure 16) plus the worker-pool size.
///
/// Production use keeps both indexes on (the default); the switches exist
/// to reproduce the paper's index ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Use the timestamp index to seek by time.
    pub use_ts_index: bool,
    /// Use chunk summaries to skip and pre-aggregate chunks.
    pub use_chunk_index: bool,
    /// Decode sealed chunks through the columnar batch kernels
    /// (`query::columnar`) when the index was defined through an
    /// [`ExtractorDesc`](crate::extract::ExtractorDesc). Off forces the
    /// record-at-a-time path everywhere; results are bit-identical
    /// either way (this switch exists for benchmarking and equivalence
    /// testing, like the index ablations). Closure-defined indexes and
    /// the unsummarized tail of summary-planned queries always run
    /// record-at-a-time regardless.
    pub use_columnar: bool,
    /// Worker threads for chunk-parallel stages; `None` (the default)
    /// uses [`Config::query_threads`](crate::Config::query_threads).
    ///
    /// Results are merged deterministically in log order, so a query
    /// returns identical output for every setting; `1` runs the original
    /// serial code path.
    pub parallelism: Option<NonZeroUsize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            use_ts_index: true,
            use_chunk_index: true,
            use_columnar: true,
            parallelism: None,
        }
    }
}

impl QueryOptions {
    /// Sets the worker-pool size; `0` restores the config default.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = NonZeroUsize::new(workers);
        self
    }

    /// Enables or disables the columnar batch-decode path
    /// ([`QueryOptions::use_columnar`]).
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.use_columnar = on;
        self
    }
}

impl Loom {
    /// Scans all records of `source` in `range`, newest to oldest
    /// (Figure 9: `raw_scan`).
    ///
    /// Equivalent to [`Loom::query`] with a [`TimeRange`] and no index;
    /// kept as a named entry point because raw scans are a figure-9 API.
    pub fn raw_scan<F>(&self, source: SourceId, range: TimeRange, f: F) -> Result<QueryStats>
    where
        F: FnMut(Record<'_>),
    {
        self.query(source).range(range).scan(f)
    }

    /// Returns the histogram specification of an index (validating that
    /// it covers `source`).
    pub fn index_spec(
        &self,
        source: SourceId,
        index: IndexId,
    ) -> Result<crate::histogram::HistogramSpec> {
        Ok(self.index_meta(source, index)?.spec.as_ref().clone())
    }

    /// Applies an index's value-extraction function to raw payload bytes
    /// (validating that the index covers `source`).
    ///
    /// Useful for post-processing scan results with the exact semantics
    /// the index used (e.g., the distributed coordinator re-extracts
    /// values from fetched records).
    pub fn extract_value(
        &self,
        source: SourceId,
        index: IndexId,
        payload: &[u8],
    ) -> Result<Option<f64>> {
        let meta = self.index_meta(source, index)?;
        Ok((meta.extractor)(payload))
    }

    /// Resolves and validates the (source, index) pair.
    ///
    /// Takes the registry read lock exactly once per query: the histogram
    /// spec is `Arc`-shared rather than deep-cloned, and the source's
    /// shared handle is captured so the subsequent view capture does not
    /// re-lock the registry.
    fn index_meta(&self, source: SourceId, index: IndexId) -> Result<IndexMeta> {
        let registry = self.inner.registry.read();
        let entry = registry.index(index)?;
        if entry.source != source {
            return Err(LoomError::IndexSourceMismatch {
                index: index.0,
                expected_source: entry.source.0,
                got_source: source.0,
            });
        }
        let source_shared = Arc::clone(&registry.source(source)?.shared);
        Ok(IndexMeta {
            id: index,
            source,
            source_shared,
            extractor: Arc::clone(&entry.extractor),
            spec: Arc::clone(&entry.spec),
            desc: entry.desc,
        })
    }
}

/// Resolved index metadata captured at query start.
pub(crate) struct IndexMeta {
    pub(crate) id: IndexId,
    pub(crate) source: SourceId,
    pub(crate) source_shared: Arc<SourceShared>,
    pub(crate) extractor: crate::registry::ValueFn,
    pub(crate) spec: Arc<crate::histogram::HistogramSpec>,
    /// The declarative extractor, when the index was defined through one
    /// — the precondition for the columnar decode path (`desc.to_fn()`
    /// and `extractor` are the same function by construction).
    pub(crate) desc: Option<crate::extract::ExtractorDesc>,
}
