//! Durable on-disk format and crash recovery.
//!
//! This layer makes a Loom data directory self-describing and reopenable:
//!
//! - [`mod@format`] — the versioned superblock, CRC32 checksums, and the
//!   length+checksum framing shared by the manifest and summary log.
//! - [`manifest`] — the append-only schema/lifecycle journal: source and
//!   index definitions, reopen markers, and clean-shutdown records.
//! - [`shutdown`] — the [`CleanShutdown`] state written by a graceful
//!   close, enabling the scan-free fast reopen path.
//! - [`recovery`] — the dirty-reopen scan: truncates torn log tails at
//!   the first bad checksum and reconciles the three logs against each
//!   other so queries over flushed data behave exactly as before the
//!   crash.

pub mod format;
pub mod manifest;
pub mod recovery;
pub mod shutdown;

pub use format::{
    crc32, crc32_pair, read_frame, write_frame, Crc32, LogId, Superblock, FORMAT_VERSION,
    FRAME_HEADER_SIZE, MANIFEST_FILE, MAX_FRAME_LEN, SUPERBLOCK_FILE,
};
pub use manifest::{AgedChunk, Manifest, ManifestRecord};
pub use recovery::{
    recover_dirty, recover_dirty_with_cold, RecoveredState, RecoveryReport, SourceState,
    TailTruncation,
};
pub use shutdown::{CleanShutdown, SourceTail};
