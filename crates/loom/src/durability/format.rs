//! On-disk format primitives shared by every durable structure: the
//! CRC32 checksum, log identifiers for corruption reports, the framed
//! record layout used by the manifest and the chunk index, and the
//! versioned superblock that makes a Loom data directory self-describing.
//!
//! Every entry Loom persists — record-log entries, timestamp-index
//! entries, chunk summaries, manifest records — carries a CRC32 over its
//! contents, so a torn tail or a flipped bit is *detected* during
//! recovery or reads instead of being mis-parsed as data.

use std::io::Read;
use std::path::Path;

use crate::config::Config;
use crate::error::{LoomError, Result};

/// On-disk format version stamped into the superblock. Bumped whenever
/// any persisted encoding changes incompatibly.
///
/// Version 2 added the shard count to the superblock fingerprint.
pub const FORMAT_VERSION: u32 = 2;

/// Magic bytes opening the superblock file.
pub const SUPERBLOCK_MAGIC: &[u8; 8] = b"LOOMSUP\x01";

/// File name of the superblock inside a data directory.
pub const SUPERBLOCK_FILE: &str = "loom.super";

/// File name of the manifest log inside a data directory.
pub const MANIFEST_FILE: &str = "manifest.log";

/// Identifies which durable structure an error or report refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogId {
    /// The record log (`records.log`).
    Records,
    /// The chunk index (`chunks.log`).
    Chunks,
    /// The timestamp index (`ts.log`).
    Ts,
    /// The schema/lifecycle manifest (`manifest.log`).
    Manifest,
    /// The superblock (`loom.super`).
    Superblock,
    /// A compressed cold-tier segment (`cold/<slice>/seg-N.seg`).
    ColdSegment,
}

impl LogId {
    /// The file name this log uses inside the data directory.
    pub fn file_name(&self) -> &'static str {
        match self {
            LogId::Records => "records.log",
            LogId::Chunks => "chunks.log",
            LogId::Ts => "ts.log",
            LogId::Manifest => MANIFEST_FILE,
            LogId::Superblock => SUPERBLOCK_FILE,
            LogId::ColdSegment => "cold segment",
        }
    }
}

impl std::fmt::Display for LogId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.file_name())
    }
}

/// CRC32 (IEEE 802.3, reflected) slice-by-8 lookup tables, built at
/// compile time.
///
/// `CRC32_TABLES[0]` is the classic byte-at-a-time table; table `k`
/// maps a byte to its CRC contribution from `k` positions further back,
/// so eight table lookups retire eight input bytes per iteration. Every
/// table is derived from the same polynomial, so the computed function —
/// and therefore every checksum already on disk — is unchanged.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC32 (IEEE) hasher, for checksums spanning several
/// buffers (e.g., a record header plus its separately stored payload).
///
/// Uses slice-by-8: eight bytes are folded per loop iteration through
/// eight parallel lookup tables, which is 4–6× faster than the classic
/// byte-at-a-time loop on record-sized inputs. Per-record verification
/// is the single largest cost of a chunk scan, so this directly bounds
/// query throughput (see `results/scan_kernels.md`).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(mut self, bytes: &[u8]) -> Self {
        let t = &CRC32_TABLES;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("len 8"));
            let lo = self.state ^ (word as u32);
            let hi = (word >> 32) as u32;
            self.state = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            self.state = (self.state >> 8) ^ t[0][((self.state ^ b as u32) & 0xFF) as usize];
        }
        self
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC32 of one contiguous buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

/// CRC32 of two logically contiguous buffers (header ++ payload).
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    Crc32::new().update(a).update(b).finish()
}

/// The superblock: a tiny fixed-size file written once when a data
/// directory is created. It records the format version and the
/// configuration fingerprint — every parameter that shapes the on-disk
/// layout — so a reopen can refuse a mismatched [`Config`] instead of
/// mis-parsing the logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// On-disk format version ([`FORMAT_VERSION`] for new directories).
    pub format_version: u32,
    /// Record-log staging-block size.
    pub block_size: u64,
    /// Chunk-index staging-block size.
    pub index_block_size: u64,
    /// Timestamp-index staging-block size.
    pub ts_block_size: u64,
    /// Record-log chunk size (the unit of sparse indexing).
    pub chunk_size: u64,
    /// Timestamp-mark period.
    pub ts_mark_period: u64,
    /// Number of engine shards this directory is partitioned into
    /// (`1` = the flat single-funnel layout, all logs directly in the
    /// directory; `N > 1` = `shard-0 .. shard-N-1` subdirectories).
    pub shards: u64,
}

/// Encoded size: magic (8) + version (4) + six u64 fields + crc (4).
const SUPERBLOCK_SIZE: usize = 8 + 4 + 6 * 8 + 4;

impl Superblock {
    /// The superblock a fresh directory created with `config` gets.
    pub fn of(config: &Config) -> Self {
        Superblock {
            format_version: FORMAT_VERSION,
            block_size: config.block_size as u64,
            index_block_size: config.index_block_size as u64,
            ts_block_size: config.ts_block_size as u64,
            chunk_size: config.chunk_size as u64,
            ts_mark_period: config.ts_mark_period,
            shards: config.shards as u64,
        }
    }

    /// Encodes the superblock into its fixed-size on-disk form.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(SUPERBLOCK_SIZE);
        buf.extend_from_slice(SUPERBLOCK_MAGIC);
        buf.extend_from_slice(&self.format_version.to_le_bytes());
        buf.extend_from_slice(&self.block_size.to_le_bytes());
        buf.extend_from_slice(&self.index_block_size.to_le_bytes());
        buf.extend_from_slice(&self.ts_block_size.to_le_bytes());
        buf.extend_from_slice(&self.chunk_size.to_le_bytes());
        buf.extend_from_slice(&self.ts_mark_period.to_le_bytes());
        buf.extend_from_slice(&self.shards.to_le_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and verifies a superblock.
    pub fn decode(bytes: &[u8]) -> Result<Superblock> {
        let corrupt = |reason: &str| LoomError::CorruptLog {
            log: LogId::Superblock,
            addr: 0,
            reason: reason.to_string(),
        };
        if bytes.len() < SUPERBLOCK_SIZE {
            return Err(corrupt(&format!(
                "superblock truncated: {} of {} bytes",
                bytes.len(),
                SUPERBLOCK_SIZE
            )));
        }
        if &bytes[0..8] != SUPERBLOCK_MAGIC {
            return Err(corrupt("bad superblock magic"));
        }
        let body = &bytes[..SUPERBLOCK_SIZE - 4];
        let stored = u32::from_le_bytes(
            bytes[SUPERBLOCK_SIZE - 4..SUPERBLOCK_SIZE]
                .try_into()
                .expect("len 4"),
        );
        if crc32(body) != stored {
            return Err(corrupt("superblock checksum mismatch"));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("len 4"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("len 8"));
        let sb = Superblock {
            format_version: u32_at(8),
            block_size: u64_at(12),
            index_block_size: u64_at(20),
            ts_block_size: u64_at(28),
            chunk_size: u64_at(36),
            ts_mark_period: u64_at(44),
            shards: u64_at(52),
        };
        if sb.format_version != FORMAT_VERSION {
            return Err(corrupt(&format!(
                "unsupported format version {} (this build reads {})",
                sb.format_version, FORMAT_VERSION
            )));
        }
        Ok(sb)
    }

    /// Writes the superblock to `dir/loom.super` and syncs it.
    pub fn write_to(&self, dir: &Path) -> Result<()> {
        let path = dir.join(SUPERBLOCK_FILE);
        let bytes = self.encode();
        if let Some(k) = crate::fault::check(crate::fault::SUPERBLOCK_WRITE, "") {
            return Err(crate::error::LoomError::Io(k.to_io_error()));
        }
        let mut f = std::fs::File::create(&path)?;
        std::io::Write::write_all(&mut f, &bytes)?;
        f.sync_all()?;
        Ok(())
    }

    /// Reads and verifies the superblock from `dir/loom.super`.
    pub fn read_from(dir: &Path) -> Result<Superblock> {
        let mut f = std::fs::File::open(dir.join(SUPERBLOCK_FILE))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    /// Validates that `config` matches the layout this directory was
    /// created with. A mismatch (e.g., a different chunk size) would make
    /// every address computation wrong, so reopen refuses it.
    pub fn check_config(&self, config: &Config) -> Result<()> {
        let mismatch = |field: &str, disk: u64, cfg: u64| {
            Err(LoomError::InvalidConfig(format!(
                "config does not match existing data directory: \
                 {field} is {cfg} but the directory was created with {disk}"
            )))
        };
        if self.block_size != config.block_size as u64 {
            return mismatch("block_size", self.block_size, config.block_size as u64);
        }
        if self.index_block_size != config.index_block_size as u64 {
            return mismatch(
                "index_block_size",
                self.index_block_size,
                config.index_block_size as u64,
            );
        }
        if self.ts_block_size != config.ts_block_size as u64 {
            return mismatch(
                "ts_block_size",
                self.ts_block_size,
                config.ts_block_size as u64,
            );
        }
        if self.chunk_size != config.chunk_size as u64 {
            return mismatch("chunk_size", self.chunk_size, config.chunk_size as u64);
        }
        if self.ts_mark_period != config.ts_mark_period {
            return mismatch("ts_mark_period", self.ts_mark_period, config.ts_mark_period);
        }
        if self.shards != config.shards as u64 {
            // A dedicated typed error: unlike the layout parameters above
            // this is the mismatch an operator is most likely to hit (a
            // resharding attempt on an existing directory), and callers
            // want to distinguish it.
            return Err(LoomError::ShardMismatch {
                on_disk: self.shards,
                requested: config.shards as u64,
            });
        }
        Ok(())
    }
}

/// Appends one `[len][crc][body]` frame to `out` (the layout used by the
/// manifest and, with the same header shape, the chunk index).
pub fn write_frame(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Size of a frame header: a u32 length plus a u32 CRC.
pub const FRAME_HEADER_SIZE: usize = 8;

/// Upper bound on a single frame body. Anything larger is treated as a
/// corrupt length prefix rather than attempted as an allocation.
pub const MAX_FRAME_LEN: u64 = 1 << 24;

/// Reads the frame starting at `pos` in `bytes`, verifying its checksum.
///
/// Returns `Ok(None)` when fewer than a whole frame remains (a torn
/// tail), and an error when the frame is present but invalid.
pub fn read_frame(bytes: &[u8], pos: usize, log: LogId) -> Result<Option<(&[u8], usize)>> {
    if pos + FRAME_HEADER_SIZE > bytes.len() {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as u64;
    if len > MAX_FRAME_LEN {
        return Err(LoomError::CorruptLog {
            log,
            addr: pos as u64,
            reason: format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}"),
        });
    }
    let body_start = pos + FRAME_HEADER_SIZE;
    let body_end = body_start + len as usize;
    if body_end > bytes.len() {
        return Ok(None);
    }
    let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
    let body = &bytes[body_start..body_end];
    if crc32(body) != stored {
        return Err(LoomError::CorruptLog {
            log,
            addr: pos as u64,
            reason: "frame checksum mismatch".into(),
        });
    }
    Ok(Some((body, body_end)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_pair_equals_concatenation() {
        let a = b"hello ";
        let b = b"world";
        assert_eq!(crc32_pair(a, b), crc32(b"hello world"));
    }

    /// The slice-by-8 fast path must compute the identical function as
    /// the classic byte-at-a-time loop, for every input length (word
    /// remainders) and every split point across an incremental `update`
    /// boundary (carried state enters the 8-byte path mid-stream).
    #[test]
    fn crc32_slice_by_8_matches_bytewise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut state = !0u32;
            for &b in bytes {
                state = (state >> 8) ^ CRC32_TABLES[0][((state ^ b as u32) & 0xFF) as usize];
            }
            !state
        }
        let data: Vec<u8> = (0..193u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
        for split in 0..data.len() {
            assert_eq!(
                crc32_pair(&data[..split], &data[split..]),
                reference(&data),
                "split {split}"
            );
        }
    }

    #[test]
    fn superblock_round_trips() {
        let cfg = Config::small("/tmp/unused");
        let sb = Superblock::of(&cfg);
        let decoded = Superblock::decode(&sb.encode()).unwrap();
        assert_eq!(decoded, sb);
        assert!(decoded.check_config(&cfg).is_ok());
    }

    #[test]
    fn superblock_rejects_corruption_and_mismatch() {
        let cfg = Config::small("/tmp/unused");
        let sb = Superblock::of(&cfg);
        let mut bytes = sb.encode();
        bytes[10] ^= 0xFF;
        assert!(matches!(
            Superblock::decode(&bytes),
            Err(LoomError::CorruptLog {
                log: LogId::Superblock,
                ..
            })
        ));
        assert!(Superblock::decode(&bytes[..10]).is_err());

        let mut other = cfg.clone();
        other.chunk_size *= 2;
        assert!(matches!(
            sb.check_config(&other),
            Err(LoomError::InvalidConfig(_))
        ));

        let mut resharded = cfg.clone();
        resharded.shards = cfg.shards + 3;
        assert!(matches!(
            sb.check_config(&resharded),
            Err(LoomError::ShardMismatch { .. })
        ));
    }

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"second record");
        let (body, next) = read_frame(&buf, 0, LogId::Manifest).unwrap().unwrap();
        assert_eq!(body, b"first");
        let (body2, next2) = read_frame(&buf, next, LogId::Manifest).unwrap().unwrap();
        assert_eq!(body2, b"second record");
        assert_eq!(next2, buf.len());
        // Torn tail: a partial frame reads as None.
        assert!(read_frame(&buf[..next + 3], next, LogId::Manifest)
            .unwrap()
            .is_none());
        // Flipped body byte: checksum error.
        let mut bad = buf.clone();
        bad[FRAME_HEADER_SIZE + 1] ^= 0x01;
        assert!(matches!(
            read_frame(&bad, 0, LogId::Manifest),
            Err(LoomError::CorruptLog { .. })
        ));
        // Nonsense length prefix: rejected before any allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0u8; 12]);
        assert!(matches!(
            read_frame(&huge, 0, LogId::Manifest),
            Err(LoomError::CorruptLog { .. })
        ));
    }
}
