//! Dirty-reopen recovery: tail scans and cross-log reconciliation.
//!
//! After a crash, the three log files hold whatever their independent
//! flushers managed to write. Recovery makes the directory consistent
//! again without losing any durable record:
//!
//! 1. **Record log** — every entry's CRC32 is verified in chunk order;
//!    the log is logically truncated at the first bad entry (torn tail,
//!    bit flip, or an entry overrunning its chunk).
//! 2. **Chunk index** — summary frames are replayed; the index is
//!    truncated at the first torn or corrupt frame, and at the first
//!    summary describing record bytes past the recovered record tail
//!    (its chunk data never made it to disk).
//! 3. **Timestamp index** — fixed-size entries are replayed; the index is
//!    truncated at the first bad checksum, at a record mark pointing past
//!    the record tail, or at a chunk seal pointing at a truncated summary.
//! 4. **Reconciliation** — because the flushers are independent, the
//!    record log can be *ahead* of its indexes: complete chunks may lack
//!    summaries, and surviving summaries may lack their seal entries. The
//!    recovered state lists both so the engine can resummarize and
//!    re-seal, restoring the invariant that queries over flushed data
//!    behave exactly as before the crash.
//!
//! This module only *computes* the recovered tails and the reconciliation
//! plan; the engine applies it (the hybrid logs truncate their files when
//! reopened at the recovered tails).

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::config::Config;
use crate::durability::format::{read_frame, LogId};
use crate::error::Result;
use crate::record::{RecordHeader, NIL_ADDR, RECORD_HEADER_SIZE};
use crate::retention::ColdSnap;
use crate::summary::ChunkSummary;
use crate::ts_index::{TsEntry, TsKind, TS_ENTRY_SIZE};

/// One tail truncation decided during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailTruncation {
    /// Which log was truncated.
    pub log: LogId,
    /// File length before recovery.
    pub durable_len: u64,
    /// Recovered tail; bytes at and past this address are discarded.
    pub new_tail: u64,
    /// Why the tail was cut here.
    pub reason: String,
}

impl TailTruncation {
    /// Number of bytes discarded.
    pub fn bytes_truncated(&self) -> u64 {
        self.durable_len - self.new_tail
    }
}

/// What recovery did, for operators and tests.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// `true` when the directory was reopened via the clean-shutdown fast
    /// path (no scans); `false` after a dirty scan.
    pub clean: bool,
    /// Records whose checksums were verified during the scan.
    pub records_scanned: u64,
    /// Tails cut back, with reasons; empty on a clean reopen or when every
    /// log ended exactly at a valid entry boundary.
    pub truncations: Vec<TailTruncation>,
    /// Chunk summaries rebuilt by rescanning complete-but-unsummarized
    /// chunks.
    pub summaries_rebuilt: u64,
    /// Chunk-seal timestamp entries re-appended for surviving summaries
    /// whose seals were lost.
    pub seals_appended: u64,
    /// Wall-clock duration of recovery in nanoseconds.
    pub duration_nanos: u64,
}

impl RecoveryReport {
    /// Total bytes discarded across all logs.
    pub fn bytes_truncated(&self) -> u64 {
        self.truncations.iter().map(|t| t.bytes_truncated()).sum()
    }
}

/// Per-source writer state reconstructed from the logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceState {
    /// Address of the source's last surviving record, or [`NIL_ADDR`].
    pub prev: u64,
    /// Number of surviving records.
    pub count: u64,
    /// Timestamp-log address of the source's last surviving record mark,
    /// or [`NIL_ADDR`].
    pub last_mark: u64,
}

/// A surviving summary whose chunk-seal timestamp entry was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsealedSummary {
    /// Record-log address of the summarized chunk.
    pub chunk_addr: u64,
    /// Chunk-index address of the summary frame.
    pub summary_addr: u64,
    /// The summary's `ts_max` (0 for an empty chunk).
    pub ts_max: u64,
}

/// Everything the engine needs to reopen a dirty directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// Recovered record-log tail.
    pub record_tail: u64,
    /// Recovered chunk-index tail.
    pub chunk_tail: u64,
    /// Recovered timestamp-index tail.
    pub ts_tail: u64,
    /// Timestamp-log address of the last surviving chunk-seal entry, or
    /// [`NIL_ADDR`].
    pub last_seal: u64,
    /// Timestamp of the last surviving timestamp-index entry (0 if none);
    /// re-appended seals must not go below this.
    pub last_ts: u64,
    /// Per-source writer state.
    pub sources: HashMap<u32, SourceState>,
    /// Chunk addresses that are complete in the record log but have no
    /// surviving summary; the engine rescans and resummarizes them.
    pub resummarize: Vec<u64>,
    /// Surviving summaries with no surviving seal entry, in chunk order;
    /// the engine re-appends their [`TsKind::ChunkSeal`] entries.
    pub unsealed_summaries: Vec<UnsealedSummary>,
    /// What the scans found.
    pub report: RecoveryReport,
}

/// Scans a dirty data directory and computes its recovered state.
///
/// Pure with respect to the directory: no file is modified (the engine
/// truncates each log when it reopens it at the recovered tail).
pub fn recover_dirty(dir: &Path, config: &Config) -> Result<RecoveredState> {
    recover_dirty_with_cold(dir, config, &ColdSnap::default())
}

/// [`recover_dirty`] for a directory with a cold tier: chunks the
/// manifest committed to cold segments are scanned from their
/// decompressed bytes (the hot copies may already be punched to zeros),
/// and chunks below the retention prune watermark are skipped — their
/// data is legitimately gone, not torn.
pub fn recover_dirty_with_cold(
    dir: &Path,
    config: &Config,
    cold: &ColdSnap,
) -> Result<RecoveredState> {
    let started = std::time::Instant::now();
    let mut state = RecoveredState {
        last_seal: NIL_ADDR,
        ..RecoveredState::default()
    };

    scan_record_log(dir, config, cold, &mut state)?;
    let kept_summaries = scan_chunk_log(dir, &mut state)?;
    let sealed = scan_ts_log(dir, &mut state, &kept_summaries)?;
    reconcile(config, &mut state, &kept_summaries, &sealed);

    state.report.duration_nanos = started.elapsed().as_nanos() as u64;
    Ok(state)
}

/// Verifies the record log entry by entry, chunk by chunk, fixing the
/// recovered record tail at the first invalid entry.
fn scan_record_log(
    dir: &Path,
    config: &Config,
    cold: &ColdSnap,
    state: &mut RecoveredState,
) -> Result<()> {
    let file = File::open(dir.join(LogId::Records.file_name()))?;
    let file_len = file.metadata()?.len();
    let chunk_size = config.chunk_size;
    let mut buf = vec![0u8; chunk_size];
    let mut cold_buf = Vec::new();

    let mut tail = file_len;
    let cut = |state: &mut RecoveredState, tail: &mut u64, addr: u64, reason: String| {
        *tail = addr;
        state.report.truncations.push(TailTruncation {
            log: LogId::Records,
            durable_len: file_len,
            new_tail: addr,
            reason,
        });
    };

    let mut chunk_start = 0u64;
    'chunks: while chunk_start < file_len {
        let avail = ((file_len - chunk_start) as usize).min(chunk_size);
        if cold.owns(chunk_start) {
            // The cold tier owns this chunk: scan its decompressed bytes
            // (the hot copy may be punched). Cold chunks are whole by
            // construction, so `avail` is a full chunk here.
            cold.read_chunk(chunk_start, &mut cold_buf)?;
            buf[..avail].copy_from_slice(&cold_buf);
        } else if chunk_start + chunk_size as u64 <= cold.pruned_below() {
            // Dropped by retention: not torn, just gone. Skip it without
            // reading — the bytes are punched zeros (or a stale copy if
            // the crash beat the punch, which must not be re-counted).
            chunk_start += chunk_size as u64;
            continue;
        } else {
            file.read_exact_at(&mut buf[..avail], chunk_start)?;
        }
        let complete = avail == chunk_size;
        let mut pos = 0usize;
        while pos + RECORD_HEADER_SIZE <= avail {
            let addr = chunk_start + pos as u64;
            let header_buf = &buf[pos..pos + RECORD_HEADER_SIZE];
            let header = RecordHeader::decode(header_buf).expect("length checked");
            if header.source == 0 {
                if complete {
                    // Short pad: fewer than a header's worth of bytes
                    // remained, written as raw zeros. Skip to next chunk.
                    break;
                }
                cut(
                    state,
                    &mut tail,
                    addr,
                    "zeroed header in partial tail chunk".into(),
                );
                break 'chunks;
            }
            let entry_end = pos + header.entry_size();
            if entry_end > chunk_size {
                cut(
                    state,
                    &mut tail,
                    addr,
                    format!(
                        "entry overruns chunk boundary ({} > {})",
                        entry_end, chunk_size
                    ),
                );
                break 'chunks;
            }
            if entry_end > avail {
                cut(state, &mut tail, addr, "torn record entry".into());
                break 'chunks;
            }
            let payload = &buf[pos + RECORD_HEADER_SIZE..entry_end];
            if !RecordHeader::verify(header_buf, payload) {
                cut(state, &mut tail, addr, "record checksum mismatch".into());
                break 'chunks;
            }
            if !header.is_pad() {
                state.report.records_scanned += 1;
                let s = state.sources.entry(header.source).or_insert(SourceState {
                    prev: NIL_ADDR,
                    count: 0,
                    last_mark: NIL_ADDR,
                });
                s.prev = addr;
                s.count += 1;
            }
            pos = entry_end;
        }
        if pos < avail && pos + RECORD_HEADER_SIZE > avail && !complete {
            // A partial tail chunk must end exactly at an entry boundary;
            // a sub-header remainder is a torn write.
            cut(
                state,
                &mut tail,
                chunk_start + pos as u64,
                "trailing partial header".into(),
            );
            break;
        }
        chunk_start += chunk_size as u64;
    }
    state.record_tail = tail;
    Ok(())
}

/// Replays chunk-index frames, truncating at the first invalid one, and
/// returns the surviving summaries as `(summary_addr, chunk_addr,
/// chunk_end, ts_max)` in log order.
fn scan_chunk_log(dir: &Path, state: &mut RecoveredState) -> Result<Vec<(u64, u64, u64, u64)>> {
    let bytes = std::fs::read(dir.join(LogId::Chunks.file_name()))?;
    let file_len = bytes.len() as u64;
    let mut kept = Vec::new();
    let mut pos = 0usize;
    let mut prev_chunk_end = 0u64;
    let mut truncation: Option<String> = None;

    loop {
        match read_frame(&bytes, pos, LogId::Chunks) {
            Ok(None) => break, // torn tail or clean end
            Err(e) => {
                truncation = Some(e.to_string());
                break;
            }
            Ok(Some((_, next))) => {
                let (summary, _) = match ChunkSummary::decode(&bytes[pos..]) {
                    Ok(v) => v,
                    Err(e) => {
                        truncation = Some(e.to_string());
                        break;
                    }
                };
                let chunk_end = summary.chunk_addr + summary.chunk_len as u64;
                if chunk_end > state.record_tail {
                    truncation = Some(format!(
                        "summary for chunk at {} refers past the record tail {}",
                        summary.chunk_addr, state.record_tail
                    ));
                    break;
                }
                if summary.chunk_addr < prev_chunk_end {
                    truncation = Some(format!(
                        "summary for chunk at {} is out of order",
                        summary.chunk_addr
                    ));
                    break;
                }
                prev_chunk_end = chunk_end;
                kept.push((pos as u64, summary.chunk_addr, chunk_end, summary.ts_max));
                pos = next;
            }
        }
    }

    state.chunk_tail = pos as u64;
    if state.chunk_tail < file_len {
        state.report.truncations.push(TailTruncation {
            log: LogId::Chunks,
            durable_len: file_len,
            new_tail: state.chunk_tail,
            reason: truncation.unwrap_or_else(|| "torn summary frame".into()),
        });
    }
    Ok(kept)
}

/// Replays timestamp-index entries, truncating at the first invalid or
/// dangling one, and records per-source marks plus the seal chain tail.
fn scan_ts_log(
    dir: &Path,
    state: &mut RecoveredState,
    kept_summaries: &[(u64, u64, u64, u64)],
) -> Result<HashSet<u64>> {
    let bytes = std::fs::read(dir.join(LogId::Ts.file_name()))?;
    let file_len = bytes.len() as u64;
    let summary_addrs: HashSet<u64> = kept_summaries.iter().map(|k| k.0).collect();
    let mut sealed = HashSet::new();
    let entries = bytes.len() / TS_ENTRY_SIZE;
    let mut tail = (entries * TS_ENTRY_SIZE) as u64;
    let mut truncation: Option<String> = if tail < file_len {
        Some("partial trailing entry".into())
    } else {
        None
    };

    for i in 0..entries {
        let addr = (i * TS_ENTRY_SIZE) as u64;
        let entry = match TsEntry::decode(&bytes[i * TS_ENTRY_SIZE..(i + 1) * TS_ENTRY_SIZE]) {
            Ok(e) => e,
            Err(e) => {
                tail = addr;
                truncation = Some(e.to_string());
                break;
            }
        };
        match entry.kind {
            TsKind::RecordMark => {
                if entry.target >= state.record_tail {
                    tail = addr;
                    truncation = Some(format!(
                        "record mark refers past the record tail ({} >= {})",
                        entry.target, state.record_tail
                    ));
                    break;
                }
                state
                    .sources
                    .entry(entry.source)
                    .or_insert(SourceState {
                        prev: NIL_ADDR,
                        count: 0,
                        last_mark: NIL_ADDR,
                    })
                    .last_mark = addr;
            }
            TsKind::ChunkSeal => {
                if !summary_addrs.contains(&entry.target) {
                    tail = addr;
                    truncation = Some(format!(
                        "chunk seal refers to a truncated summary at {}",
                        entry.target
                    ));
                    break;
                }
                state.last_seal = addr;
                sealed.insert(entry.target);
            }
        }
        state.last_ts = state.last_ts.max(entry.ts);
    }

    state.ts_tail = tail;
    if state.ts_tail < file_len {
        state.report.truncations.push(TailTruncation {
            log: LogId::Ts,
            durable_len: file_len,
            new_tail: state.ts_tail,
            reason: truncation.unwrap_or_else(|| "torn timestamp entry".into()),
        });
    }
    Ok(sealed)
}

/// Computes the reconciliation plan: complete chunks missing summaries and
/// surviving summaries missing seal entries.
fn reconcile(
    config: &Config,
    state: &mut RecoveredState,
    kept_summaries: &[(u64, u64, u64, u64)],
    sealed: &HashSet<u64>,
) {
    for &(summary_addr, chunk_addr, _, ts_max) in kept_summaries {
        if !sealed.contains(&summary_addr) {
            state.unsealed_summaries.push(UnsealedSummary {
                chunk_addr,
                summary_addr,
                ts_max,
            });
        }
    }

    let chunk_size = config.chunk_size as u64;
    let summarized_upto = kept_summaries.last().map(|k| k.2).unwrap_or(0);
    // Complete chunks start at the first chunk boundary at or after the
    // summarized prefix and end at the last chunk boundary within the
    // record tail; everything in between lost its summary to the crash.
    let complete_upto = state.record_tail - state.record_tail % chunk_size;
    let mut addr = summarized_upto.div_ceil(chunk_size) * chunk_size;
    while addr < complete_upto {
        state.resummarize.push(addr);
        addr += chunk_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SOURCE_PAD;

    const CHUNK: usize = 256;

    fn test_config(dir: &Path) -> Config {
        let mut c = Config::small(dir);
        c.chunk_size = CHUNK;
        c.block_size = 1024;
        c
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("loom-recovery-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Builds record-log bytes the way the engine does, including chunk
    /// padding, and tracks the resulting addresses.
    struct RecBuilder {
        bytes: Vec<u8>,
        prev: HashMap<u32, u64>,
    }

    impl RecBuilder {
        fn new() -> Self {
            RecBuilder {
                bytes: Vec::new(),
                prev: HashMap::new(),
            }
        }

        fn push(&mut self, source: u32, payload: &[u8], ts: u64) -> u64 {
            let rem = CHUNK - self.bytes.len() % CHUNK;
            if RECORD_HEADER_SIZE + payload.len() > rem {
                if rem >= RECORD_HEADER_SIZE {
                    let pad_payload = vec![0u8; rem - RECORD_HEADER_SIZE];
                    let pad = RecordHeader {
                        source: SOURCE_PAD,
                        len: pad_payload.len() as u32,
                        prev: NIL_ADDR,
                        ts: 0,
                    };
                    self.bytes.extend_from_slice(&pad.encode(&pad_payload));
                    self.bytes.extend_from_slice(&pad_payload);
                } else {
                    self.bytes.extend(std::iter::repeat_n(0u8, rem));
                }
            }
            let addr = self.bytes.len() as u64;
            let header = RecordHeader {
                source,
                len: payload.len() as u32,
                prev: *self.prev.get(&source).unwrap_or(&NIL_ADDR),
                ts,
            };
            self.bytes.extend_from_slice(&header.encode(payload));
            self.bytes.extend_from_slice(payload);
            self.prev.insert(source, addr);
            addr
        }
    }

    fn summary_for(chunk_addr: u64, ts_min: u64, ts_max: u64, count: u64) -> ChunkSummary {
        let mut s = ChunkSummary::new(chunk_addr / CHUNK as u64, chunk_addr, CHUNK as u32);
        for i in 0..count {
            s.observe_record(1, ts_min + i * (ts_max - ts_min).max(1) / count.max(1));
        }
        s.ts_min = ts_min;
        s.ts_max = ts_max;
        s
    }

    /// Lays down a 5-record, 2.5-chunk directory: chunk 0 summarized and
    /// sealed, chunk 1 complete but unsummarized, chunk 2 partial.
    fn build_dir(name: &str) -> (std::path::PathBuf, Config) {
        let dir = tmpdir(name);
        let config = test_config(&dir);
        let mut rb = RecBuilder::new();
        for i in 0..5u64 {
            // 100-byte payloads: 128-byte entries, two per 256-byte chunk.
            rb.push(1, &[i as u8; 100], 1000 + i * 10);
        }
        assert_eq!(rb.bytes.len(), 640);
        std::fs::write(dir.join(LogId::Records.file_name()), &rb.bytes).unwrap();

        let mut chunk_bytes = Vec::new();
        summary_for(0, 1000, 1010, 2).encode(&mut chunk_bytes);
        std::fs::write(dir.join(LogId::Chunks.file_name()), &chunk_bytes).unwrap();

        let mut ts_bytes = Vec::new();
        ts_bytes.extend_from_slice(
            &TsEntry {
                kind: TsKind::RecordMark,
                source: 1,
                ts: 1000,
                target: 0,
                prev: NIL_ADDR,
            }
            .encode(),
        );
        ts_bytes.extend_from_slice(
            &TsEntry {
                kind: TsKind::ChunkSeal,
                source: 0,
                ts: 1010,
                target: 0, // summary frame at chunk-log address 0
                prev: NIL_ADDR,
            }
            .encode(),
        );
        std::fs::write(dir.join(LogId::Ts.file_name()), &ts_bytes).unwrap();
        (dir, config)
    }

    #[test]
    fn reconstructs_consistent_state() {
        let (dir, config) = build_dir("consistent");
        let state = recover_dirty(&dir, &config).unwrap();
        assert_eq!(state.record_tail, 640);
        assert_eq!(state.ts_tail, 80);
        assert!(state.report.truncations.is_empty());
        assert_eq!(state.report.records_scanned, 5);
        let s = &state.sources[&1];
        assert_eq!(s.prev, 512);
        assert_eq!(s.count, 5);
        assert_eq!(s.last_mark, 0);
        assert_eq!(state.last_seal, 40);
        assert_eq!(state.last_ts, 1010);
        // Chunk 1 (at 256) is complete but unsummarized; chunk 2 is the
        // partial active chunk and is not resummarized.
        assert_eq!(state.resummarize, vec![256]);
        assert!(state.unsealed_summaries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_record_byte_truncates_and_cascades() {
        let (dir, config) = build_dir("flip");
        // Add a summary + seal for chunk 1 so the cascade is visible.
        let rec_path = dir.join(LogId::Records.file_name());
        let chunk_path = dir.join(LogId::Chunks.file_name());
        let ts_path = dir.join(LogId::Ts.file_name());
        let mut chunk_bytes = std::fs::read(&chunk_path).unwrap();
        let summary0_len = chunk_bytes.len() as u64;
        summary_for(256, 1020, 1030, 2).encode(&mut chunk_bytes);
        std::fs::write(&chunk_path, &chunk_bytes).unwrap();
        let mut ts_bytes = std::fs::read(&ts_path).unwrap();
        ts_bytes.extend_from_slice(
            &TsEntry {
                kind: TsKind::ChunkSeal,
                source: 0,
                ts: 1030,
                target: summary0_len,
                prev: 40,
            }
            .encode(),
        );
        std::fs::write(&ts_path, &ts_bytes).unwrap();

        // Sanity: with intact records everything is kept.
        let state = recover_dirty(&dir, &config).unwrap();
        assert!(state.report.truncations.is_empty());
        assert_eq!(state.last_seal, 80);

        // Flip one payload byte of the record at 256 (start of chunk 1).
        let mut rec_bytes = std::fs::read(&rec_path).unwrap();
        rec_bytes[256 + RECORD_HEADER_SIZE + 3] ^= 0x01;
        std::fs::write(&rec_path, &rec_bytes).unwrap();

        let state = recover_dirty(&dir, &config).unwrap();
        assert_eq!(state.record_tail, 256);
        assert_eq!(state.report.records_scanned, 2);
        // Chunk 1's summary now refers past the record tail.
        assert_eq!(state.chunk_tail, summary0_len);
        // And its seal entry dangles.
        assert_eq!(state.ts_tail, 80);
        assert_eq!(state.last_seal, 40);
        assert_eq!(state.sources[&1].count, 2);
        assert_eq!(state.sources[&1].prev, 128);
        assert!(state.resummarize.is_empty());
        let reasons: Vec<_> = state
            .report
            .truncations
            .iter()
            .map(|t| (t.log, t.reason.clone()))
            .collect();
        assert_eq!(state.report.truncations.len(), 3, "{reasons:?}");
        assert!(reasons[0].1.contains("checksum"), "{reasons:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_are_cut_in_every_log() {
        let (dir, config) = build_dir("torn");
        for log in [LogId::Records, LogId::Chunks, LogId::Ts] {
            let path = dir.join(log.file_name());
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.extend_from_slice(&[0xAA; 13]);
            std::fs::write(&path, &bytes).unwrap();
        }
        let state = recover_dirty(&dir, &config).unwrap();
        assert_eq!(state.record_tail, 640);
        assert_eq!(state.ts_tail, 80);
        assert_eq!(state.report.truncations.len(), 3);
        assert_eq!(state.report.bytes_truncated(), 39);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dangling_mark_truncates_ts_log() {
        let (dir, config) = build_dir("dangling-mark");
        let ts_path = dir.join(LogId::Ts.file_name());
        let mut ts_bytes = std::fs::read(&ts_path).unwrap();
        ts_bytes.extend_from_slice(
            &TsEntry {
                kind: TsKind::RecordMark,
                source: 1,
                ts: 1040,
                target: 100_000, // far past the record tail
                prev: 0,
            }
            .encode(),
        );
        std::fs::write(&ts_path, &ts_bytes).unwrap();
        let state = recover_dirty(&dir, &config).unwrap();
        assert_eq!(state.ts_tail, 80);
        assert_eq!(state.report.truncations.len(), 1);
        assert!(state.report.truncations[0]
            .reason
            .contains("past the record tail"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_seal_is_scheduled_for_reappend() {
        let (dir, config) = build_dir("lost-seal");
        // Drop the seal entry (keep only the first 40-byte mark).
        let ts_path = dir.join(LogId::Ts.file_name());
        let ts_bytes = std::fs::read(&ts_path).unwrap();
        std::fs::write(&ts_path, &ts_bytes[..40]).unwrap();
        let state = recover_dirty(&dir, &config).unwrap();
        assert_eq!(state.last_seal, NIL_ADDR);
        assert_eq!(
            state.unsealed_summaries,
            vec![UnsealedSummary {
                chunk_addr: 0,
                summary_addr: 0,
                ts_max: 1010,
            }]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
