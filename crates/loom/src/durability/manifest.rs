//! The manifest: an append-only journal of schema and lifecycle events.
//!
//! The manifest is a plain file of [framed](crate::durability::format)
//! records. It is the durable home of everything that is *not* telemetry
//! data: source and index definitions (so the registry can be rebuilt on
//! reopen), reopen markers, and the [`CleanShutdown`] record a graceful
//! close writes last.
//!
//! Every append is followed by `fdatasync`, so the manifest is the most
//! strongly durable file in the directory; it is also tiny (schema churn
//! is rare next to telemetry volume). A torn tail — a partially written
//! final frame — is truncated on open; corruption *before* the tail is an
//! error, since schema records cannot be reconstructed from anywhere else.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;

use crate::durability::format::{read_frame, write_frame, LogId, MANIFEST_FILE};
use crate::durability::shutdown::CleanShutdown;
use crate::error::{LoomError, Result};
use crate::extract::{ExtractorDesc, EXTRACTOR_DESC_SIZE};
use crate::histogram::HistogramSpec;
use crate::registry::SourceId;

const TAG_SOURCE_DEF: u8 = 1;
const TAG_SOURCE_CLOSED: u8 = 2;
const TAG_INDEX_DEF: u8 = 3;
const TAG_INDEX_CLOSED: u8 = 4;
const TAG_REOPENED: u8 = 5;
const TAG_CLEAN_SHUTDOWN: u8 = 6;
const TAG_CHUNKS_AGED: u8 = 7;
const TAG_SLICE_PRUNED: u8 = 8;

/// Size of one encoded [`AgedChunk`] entry.
const AGED_CHUNK_SIZE: usize = 8 + 8 + 4 + 4 + 8 + 4 + 8 + 8 + 8;

/// One chunk moved to the cold tier, as journaled in a
/// [`ManifestRecord::ChunksAged`] commit record.
///
/// The manifest entry carries both the *location* of the compressed
/// chunk (segment offset) and the chunk's *summary statistics*
/// (timestamp bounds, record count, summary frame address), so per-slice
/// super-summaries can be rebuilt from the manifest alone on reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgedChunk {
    /// Record-log address of the chunk that was aged.
    pub chunk_addr: u64,
    /// Byte offset of the chunk's frame inside its segment file.
    pub offset: u64,
    /// Uncompressed chunk length in bytes.
    pub raw_len: u32,
    /// Compressed frame-body length in bytes.
    pub comp_len: u32,
    /// Address of the chunk's summary frame in the chunk log.
    pub summary_addr: u64,
    /// Total byte length of that summary frame (header included).
    pub summary_len: u32,
    /// Smallest record timestamp in the chunk (0 when empty).
    pub ts_min: u64,
    /// Largest record timestamp in the chunk (0 when empty).
    pub ts_max: u64,
    /// Number of data records in the chunk.
    pub records: u64,
}

impl AgedChunk {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.chunk_addr.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
        out.extend_from_slice(&self.comp_len.to_le_bytes());
        out.extend_from_slice(&self.summary_addr.to_le_bytes());
        out.extend_from_slice(&self.summary_len.to_le_bytes());
        out.extend_from_slice(&self.ts_min.to_le_bytes());
        out.extend_from_slice(&self.ts_max.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
    }

    fn decode(b: &[u8]) -> Option<AgedChunk> {
        if b.len() < AGED_CHUNK_SIZE {
            return None;
        }
        let u64_at = |off: usize| u64::from_le_bytes(b[off..off + 8].try_into().expect("8"));
        let u32_at = |off: usize| u32::from_le_bytes(b[off..off + 4].try_into().expect("4"));
        Some(AgedChunk {
            chunk_addr: u64_at(0),
            offset: u64_at(8),
            raw_len: u32_at(16),
            comp_len: u32_at(20),
            summary_addr: u64_at(24),
            summary_len: u32_at(32),
            ts_min: u64_at(36),
            ts_max: u64_at(44),
            records: u64_at(52),
        })
    }
}

/// One journal entry in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestRecord {
    /// A source was defined.
    SourceDef {
        /// Registry-assigned source ID.
        id: u32,
        /// Human-readable source name.
        name: String,
    },
    /// A source was closed to further pushes.
    SourceClosed {
        /// The closed source's ID.
        id: u32,
    },
    /// An index was defined.
    IndexDef {
        /// Registry-assigned index ID.
        id: u32,
        /// The indexed source.
        source: SourceId,
        /// Histogram bin boundaries of the index's [`HistogramSpec`].
        bounds: Vec<f64>,
        /// Declarative extractor, if the index was defined through one;
        /// `None` for closure-based indexes, which cannot be rebuilt and
        /// are restored closed.
        desc: Option<ExtractorDesc>,
    },
    /// An index was closed.
    IndexClosed {
        /// The closed index's ID.
        id: u32,
    },
    /// The directory was reopened; invalidates a preceding
    /// [`ManifestRecord::CleanShutdown`] marker.
    Reopened,
    /// Graceful shutdown: the durable tails and writer state.
    CleanShutdown(CleanShutdown),
    /// A batch of sealed chunks moved to the cold tier. This append is
    /// the *commit point* of a compaction round: before it, the chunks
    /// are hot (an orphan segment file is deleted on reopen); after it,
    /// the cold segment owns them.
    ChunksAged {
        /// Time-slice index the chunks belong to.
        slice: u64,
        /// Segment file number within the slice directory.
        segment: u32,
        /// The chunks, in ascending chunk-address order.
        entries: Vec<AgedChunk>,
    },
    /// A whole cold time slice was dropped by retention. Journaled
    /// *before* the slice directory is unlinked, so a crash between the
    /// two leaves a leftover directory that reopen deletes.
    SlicePruned {
        /// The pruned slice index.
        slice: u64,
        /// Record-log address one past the last chunk of the slice;
        /// addresses below this read as punched zeros.
        pruned_below: u64,
    },
}

impl ManifestRecord {
    /// Short variant name, used as the failpoint tag so fault schedules
    /// can target e.g. only the `CleanShutdown` append.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ManifestRecord::SourceDef { .. } => "SourceDef",
            ManifestRecord::SourceClosed { .. } => "SourceClosed",
            ManifestRecord::IndexDef { .. } => "IndexDef",
            ManifestRecord::IndexClosed { .. } => "IndexClosed",
            ManifestRecord::Reopened => "Reopened",
            ManifestRecord::CleanShutdown(_) => "CleanShutdown",
            ManifestRecord::ChunksAged { .. } => "ChunksAged",
            ManifestRecord::SlicePruned { .. } => "SlicePruned",
        }
    }

    /// Serializes the record body (tag byte plus fields) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ManifestRecord::SourceDef { id, name } => {
                out.push(TAG_SOURCE_DEF);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
            }
            ManifestRecord::SourceClosed { id } => {
                out.push(TAG_SOURCE_CLOSED);
                out.extend_from_slice(&id.to_le_bytes());
            }
            ManifestRecord::IndexDef {
                id,
                source,
                bounds,
                desc,
            } => {
                out.push(TAG_INDEX_DEF);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&source.0.to_le_bytes());
                out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
                for b in bounds {
                    out.extend_from_slice(&b.to_le_bytes());
                }
                match desc {
                    Some(d) => {
                        out.push(1);
                        d.encode(out);
                    }
                    None => out.push(0),
                }
            }
            ManifestRecord::IndexClosed { id } => {
                out.push(TAG_INDEX_CLOSED);
                out.extend_from_slice(&id.to_le_bytes());
            }
            ManifestRecord::Reopened => out.push(TAG_REOPENED),
            ManifestRecord::CleanShutdown(state) => {
                out.push(TAG_CLEAN_SHUTDOWN);
                state.encode(out);
            }
            ManifestRecord::ChunksAged {
                slice,
                segment,
                entries,
            } => {
                out.push(TAG_CHUNKS_AGED);
                out.extend_from_slice(&slice.to_le_bytes());
                out.extend_from_slice(&segment.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    e.encode(out);
                }
            }
            ManifestRecord::SlicePruned {
                slice,
                pruned_below,
            } => {
                out.push(TAG_SLICE_PRUNED);
                out.extend_from_slice(&slice.to_le_bytes());
                out.extend_from_slice(&pruned_below.to_le_bytes());
            }
        }
    }

    /// Deserializes a record from a frame body.
    pub fn decode(body: &[u8]) -> Result<ManifestRecord> {
        let corrupt = |what: &str| LoomError::Corrupt(format!("manifest {what} record truncated"));
        let tag = *body.first().ok_or_else(|| corrupt("empty"))?;
        let rest = &body[1..];
        let u32_at = |b: &[u8], off: usize, what: &str| -> Result<u32> {
            b.get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4")))
                .ok_or_else(|| corrupt(what))
        };
        Ok(match tag {
            TAG_SOURCE_DEF => {
                let id = u32_at(rest, 0, "source-def")?;
                let len = u32_at(rest, 4, "source-def")? as usize;
                let bytes = rest.get(8..8 + len).ok_or_else(|| corrupt("source-def"))?;
                let name = std::str::from_utf8(bytes)
                    .map_err(|_| LoomError::Corrupt("manifest source name is not UTF-8".into()))?
                    .to_string();
                ManifestRecord::SourceDef { id, name }
            }
            TAG_SOURCE_CLOSED => ManifestRecord::SourceClosed {
                id: u32_at(rest, 0, "source-closed")?,
            },
            TAG_INDEX_DEF => {
                let id = u32_at(rest, 0, "index-def")?;
                let source = SourceId(u32_at(rest, 4, "index-def")?);
                let n = u32_at(rest, 8, "index-def")? as usize;
                let mut bounds = Vec::with_capacity(n);
                for i in 0..n {
                    let off = 12 + i * 8;
                    let bytes = rest.get(off..off + 8).ok_or_else(|| corrupt("index-def"))?;
                    bounds.push(f64::from_le_bytes(bytes.try_into().expect("8")));
                }
                let flag_off = 12 + n * 8;
                let flag = *rest.get(flag_off).ok_or_else(|| corrupt("index-def"))?;
                let desc = match flag {
                    0 => None,
                    1 => {
                        let bytes = rest
                            .get(flag_off + 1..flag_off + 1 + EXTRACTOR_DESC_SIZE)
                            .ok_or_else(|| corrupt("index-def"))?;
                        Some(ExtractorDesc::decode(bytes)?)
                    }
                    f => {
                        return Err(LoomError::Corrupt(format!(
                            "manifest index-def has bad extractor flag {f}"
                        )))
                    }
                };
                ManifestRecord::IndexDef {
                    id,
                    source,
                    bounds,
                    desc,
                }
            }
            TAG_INDEX_CLOSED => ManifestRecord::IndexClosed {
                id: u32_at(rest, 0, "index-closed")?,
            },
            TAG_REOPENED => ManifestRecord::Reopened,
            TAG_CLEAN_SHUTDOWN => {
                let (state, _) = CleanShutdown::decode(rest)?;
                ManifestRecord::CleanShutdown(state)
            }
            TAG_CHUNKS_AGED => {
                let u64_at = |off: usize, what: &str| -> Result<u64> {
                    rest.get(off..off + 8)
                        .map(|s| u64::from_le_bytes(s.try_into().expect("8")))
                        .ok_or_else(|| corrupt(what))
                };
                let slice = u64_at(0, "chunks-aged")?;
                let segment = u32_at(rest, 8, "chunks-aged")?;
                let n = u32_at(rest, 12, "chunks-aged")? as usize;
                let mut entries = Vec::with_capacity(n);
                for i in 0..n {
                    let off = 16 + i * AGED_CHUNK_SIZE;
                    let bytes = rest.get(off..).ok_or_else(|| corrupt("chunks-aged"))?;
                    entries.push(AgedChunk::decode(bytes).ok_or_else(|| corrupt("chunks-aged"))?);
                }
                ManifestRecord::ChunksAged {
                    slice,
                    segment,
                    entries,
                }
            }
            TAG_SLICE_PRUNED => {
                let u64_at = |off: usize| -> Result<u64> {
                    rest.get(off..off + 8)
                        .map(|s| u64::from_le_bytes(s.try_into().expect("8")))
                        .ok_or_else(|| corrupt("slice-pruned"))
                };
                ManifestRecord::SlicePruned {
                    slice: u64_at(0)?,
                    pruned_below: u64_at(8)?,
                }
            }
            t => {
                return Err(LoomError::Corrupt(format!(
                    "unknown manifest record tag {t}"
                )))
            }
        })
    }

    /// The histogram spec an [`ManifestRecord::IndexDef`]'s bounds encode.
    pub fn spec_from_bounds(bounds: &[f64]) -> Result<HistogramSpec> {
        HistogramSpec::from_bounds(bounds.to_vec())
    }
}

/// An open manifest file with its replayed records.
pub struct Manifest {
    file: File,
    /// All records currently in the journal, in append order.
    records: Vec<ManifestRecord>,
}

impl Manifest {
    /// Creates a new, empty manifest in `dir`. Fails if one already exists.
    pub fn create(dir: &Path) -> Result<Manifest> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(dir.join(MANIFEST_FILE))?;
        Ok(Manifest {
            file,
            records: Vec::new(),
        })
    }

    /// Opens an existing manifest, replaying all records.
    ///
    /// A torn final frame (partial write from a crash mid-append) is
    /// truncated away. A checksum failure or undecodable record *before*
    /// the final frame is a hard [`LoomError::CorruptLog`] — unlike
    /// telemetry, schema records have no redundant copy to fall back on.
    pub fn open(dir: &Path) -> Result<Manifest> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(MANIFEST_FILE))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut pos = 0usize;
        while let Some((body, next)) = read_frame(&bytes, pos, LogId::Manifest)? {
            records.push(ManifestRecord::decode(body)?);
            pos = next;
        }
        if (pos as u64) < bytes.len() as u64 {
            // Torn tail from a crash mid-append: drop it.
            file.set_len(pos as u64)?;
            file.sync_all()?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Manifest { file, records })
    }

    /// The replayed records, in append order.
    pub fn records(&self) -> &[ManifestRecord] {
        &self.records
    }

    /// Returns the clean-shutdown state iff the journal's *last* record is
    /// a [`ManifestRecord::CleanShutdown`] (any later record — notably
    /// [`ManifestRecord::Reopened`] — invalidates it).
    pub fn clean_shutdown(&self) -> Option<&CleanShutdown> {
        match self.records.last() {
            Some(ManifestRecord::CleanShutdown(state)) => Some(state),
            _ => None,
        }
    }

    /// Appends a record and syncs it to storage before returning.
    pub fn append(&mut self, record: ManifestRecord) -> Result<()> {
        let mut frame = Vec::new();
        record.encode(&mut frame);
        let mut out = Vec::with_capacity(frame.len() + 8);
        write_frame(&mut out, &frame);
        if let Some(k) = crate::fault::check(crate::fault::MANIFEST_APPEND, record.kind_name()) {
            return Err(LoomError::Io(k.to_io_error()));
        }
        self.file.write_all(&out)?;
        if let Some(k) = crate::fault::check(crate::fault::MANIFEST_SYNC, record.kind_name()) {
            return Err(LoomError::Io(k.to_io_error()));
        }
        self.file.sync_data()?;
        self.records.push(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::shutdown::SourceTail;
    use crate::record::NIL_ADDR;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("loom-manifest-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_records() -> Vec<ManifestRecord> {
        vec![
            ManifestRecord::SourceDef {
                id: 1,
                name: "cpu".into(),
            },
            ManifestRecord::IndexDef {
                id: 1,
                source: SourceId(1),
                bounds: vec![0.0, 10.0, 100.0],
                desc: Some(ExtractorDesc::U64Le(8)),
            },
            ManifestRecord::IndexDef {
                id: 2,
                source: SourceId(1),
                bounds: vec![1.5],
                desc: None,
            },
            ManifestRecord::SourceClosed { id: 1 },
            ManifestRecord::IndexClosed { id: 2 },
            ManifestRecord::ChunksAged {
                slice: 3,
                segment: 0,
                entries: vec![
                    AgedChunk {
                        chunk_addr: 0,
                        offset: 24,
                        raw_len: 4096,
                        comp_len: 512,
                        summary_addr: 0,
                        summary_len: 96,
                        ts_min: 100,
                        ts_max: 900,
                        records: 120,
                    },
                    AgedChunk {
                        chunk_addr: 4096,
                        offset: 544,
                        raw_len: 4096,
                        comp_len: 4100,
                        summary_addr: 96,
                        summary_len: 96,
                        ts_min: 901,
                        ts_max: 1800,
                        records: 119,
                    },
                ],
            },
            ManifestRecord::SlicePruned {
                slice: 2,
                pruned_below: 8192,
            },
            ManifestRecord::Reopened,
            ManifestRecord::CleanShutdown(CleanShutdown {
                record_tail: 4096,
                chunk_tail: 77,
                ts_tail: 80,
                last_seal: 40,
                sources: vec![SourceTail {
                    id: 1,
                    prev: 128,
                    count: 9,
                    last_mark: NIL_ADDR,
                }],
            }),
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let mut body = Vec::new();
            rec.encode(&mut body);
            assert_eq!(ManifestRecord::decode(&body).unwrap(), rec);
        }
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let dir = tmpdir("replay");
        let mut m = Manifest::create(&dir).unwrap();
        for rec in sample_records() {
            m.append(rec).unwrap();
        }
        assert!(m.clean_shutdown().is_some());
        drop(m);

        let m = Manifest::open(&dir).unwrap();
        assert_eq!(m.records(), &sample_records()[..]);
        assert_eq!(m.clean_shutdown().unwrap().record_tail, 4096);
    }

    #[test]
    fn reopened_marker_invalidates_clean_shutdown() {
        let dir = tmpdir("invalidate");
        let mut m = Manifest::create(&dir).unwrap();
        m.append(ManifestRecord::CleanShutdown(CleanShutdown::default()))
            .unwrap();
        assert!(m.clean_shutdown().is_some());
        m.append(ManifestRecord::Reopened).unwrap();
        assert!(m.clean_shutdown().is_none());
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let mut m = Manifest::create(&dir).unwrap();
        m.append(ManifestRecord::SourceDef {
            id: 1,
            name: "a".into(),
        })
        .unwrap();
        m.append(ManifestRecord::SourceDef {
            id: 2,
            name: "b".into(),
        })
        .unwrap();
        drop(m);

        // Simulate a crash mid-append: chop 3 bytes off the last frame.
        let path = dir.join(MANIFEST_FILE);
        let good_len;
        {
            let bytes = std::fs::read(&path).unwrap();
            good_len = {
                // First frame: header + body.
                let body_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
                8 + body_len
            };
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(bytes.len() as u64 - 3).unwrap();
        }

        let m = Manifest::open(&dir).unwrap();
        assert_eq!(m.records().len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len as u64);

        // And appending after truncation lands where the good data ended.
        drop(m);
        let mut m = Manifest::open(&dir).unwrap();
        m.append(ManifestRecord::SourceDef {
            id: 3,
            name: "c".into(),
        })
        .unwrap();
        drop(m);
        let m = Manifest::open(&dir).unwrap();
        assert_eq!(m.records().len(), 2);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmpdir("midfile");
        let mut m = Manifest::create(&dir).unwrap();
        m.append(ManifestRecord::SourceDef {
            id: 1,
            name: "a".into(),
        })
        .unwrap();
        m.append(ManifestRecord::SourceDef {
            id: 2,
            name: "b".into(),
        })
        .unwrap();
        drop(m);

        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // inside the first frame's body
        std::fs::write(&path, &bytes).unwrap();
        match Manifest::open(&dir).map(|m| m.records().len()) {
            Err(LoomError::CorruptLog { log, .. }) => assert_eq!(log, LogId::Manifest),
            other => panic!("expected CorruptLog, got {other:?}"),
        }
    }

    #[test]
    fn create_refuses_existing_manifest() {
        let dir = tmpdir("exists");
        let _m = Manifest::create(&dir).unwrap();
        assert!(Manifest::create(&dir).is_err());
    }
}
