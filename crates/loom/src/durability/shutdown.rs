//! Clean-shutdown bookkeeping.
//!
//! A graceful [`LoomWriter::close`](crate::LoomWriter::close) flushes all three logs
//! and appends a [`CleanShutdown`] record — the durable tails plus the
//! writer state needed to resume — to the manifest. A reopen that finds
//! this record as the manifest's *last* entry takes the fast path: it
//! trusts the recorded tails (after sanity-checking them against the
//! files) and skips the log tail scans entirely.

use std::path::Path;

use crate::config::Config;
use crate::durability::format::LogId;
use crate::error::{LoomError, Result};
use crate::ts_index::TS_ENTRY_SIZE;

/// Per-source writer state captured at clean shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceTail {
    /// Source ID.
    pub id: u32,
    /// Address of the source's last record, or [`crate::record::NIL_ADDR`].
    pub prev: u64,
    /// Total records the source has pushed (drives the mark cadence).
    pub count: u64,
    /// Timestamp-log address of the source's last record mark, or
    /// [`crate::record::NIL_ADDR`].
    pub last_mark: u64,
}

/// The durable tails and writer state written at graceful shutdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CleanShutdown {
    /// Record-log tail; always a chunk boundary (close seals the active
    /// chunk).
    pub record_tail: u64,
    /// Chunk-index tail.
    pub chunk_tail: u64,
    /// Timestamp-index tail.
    pub ts_tail: u64,
    /// Timestamp-log address of the last chunk-seal entry, or
    /// [`crate::record::NIL_ADDR`] if no chunk ever sealed.
    pub last_seal: u64,
    /// Per-source writer state.
    pub sources: Vec<SourceTail>,
}

impl CleanShutdown {
    /// Serializes the state into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.record_tail.to_le_bytes());
        out.extend_from_slice(&self.chunk_tail.to_le_bytes());
        out.extend_from_slice(&self.ts_tail.to_le_bytes());
        out.extend_from_slice(&self.last_seal.to_le_bytes());
        out.extend_from_slice(&(self.sources.len() as u32).to_le_bytes());
        for s in &self.sources {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&s.prev.to_le_bytes());
            out.extend_from_slice(&s.count.to_le_bytes());
            out.extend_from_slice(&s.last_mark.to_le_bytes());
        }
    }

    /// Deserializes the state from `bytes`, returning it and the number of
    /// bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(CleanShutdown, usize)> {
        let need = |n: usize| -> Result<()> {
            if bytes.len() < n {
                Err(LoomError::Corrupt("clean-shutdown record truncated".into()))
            } else {
                Ok(())
            }
        };
        need(36)?;
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let record_tail = u64_at(0);
        let chunk_tail = u64_at(8);
        let ts_tail = u64_at(16);
        let last_seal = u64_at(24);
        let n = u32::from_le_bytes(bytes[32..36].try_into().expect("4")) as usize;
        need(36 + n * 28)?;
        let mut sources = Vec::with_capacity(n);
        for i in 0..n {
            let off = 36 + i * 28;
            sources.push(SourceTail {
                id: u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4")),
                prev: u64_at(off + 4),
                count: u64_at(off + 12),
                last_mark: u64_at(off + 20),
            });
        }
        Ok((
            CleanShutdown {
                record_tail,
                chunk_tail,
                ts_tail,
                last_seal,
                sources,
            },
            36 + n * 28,
        ))
    }

    /// Sanity-checks the recorded tails against the configuration and the
    /// actual log files; any violation disqualifies the fast path (the
    /// caller falls back to a full recovery scan).
    pub fn validate(&self, dir: &Path, config: &Config) -> Result<()> {
        if !self.record_tail.is_multiple_of(config.chunk_size as u64) {
            return Err(LoomError::Corrupt(format!(
                "clean-shutdown record tail {} is not a chunk boundary",
                self.record_tail
            )));
        }
        if !self.ts_tail.is_multiple_of(TS_ENTRY_SIZE as u64) {
            return Err(LoomError::Corrupt(format!(
                "clean-shutdown ts tail {} is not entry-aligned",
                self.ts_tail
            )));
        }
        for (log, tail) in [
            (LogId::Records, self.record_tail),
            (LogId::Chunks, self.chunk_tail),
            (LogId::Ts, self.ts_tail),
        ] {
            let len = std::fs::metadata(dir.join(log.file_name()))?.len();
            if len < tail {
                return Err(LoomError::Corrupt(format!(
                    "{log} is {len} bytes, shorter than its clean-shutdown tail {tail}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NIL_ADDR;

    fn sample() -> CleanShutdown {
        CleanShutdown {
            record_tail: 8192,
            chunk_tail: 300,
            ts_tail: 120,
            last_seal: 80,
            sources: vec![
                SourceTail {
                    id: 1,
                    prev: 4096,
                    count: 57,
                    last_mark: 40,
                },
                SourceTail {
                    id: 2,
                    prev: NIL_ADDR,
                    count: 0,
                    last_mark: NIL_ADDR,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let (decoded, n) = CleanShutdown::decode(&buf).unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(decoded, s);
    }

    #[test]
    fn truncated_decode_fails() {
        let s = sample();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert!(CleanShutdown::decode(&buf[..buf.len() - 1]).is_err());
        assert!(CleanShutdown::decode(&buf[..10]).is_err());
    }

    #[test]
    fn validate_rejects_short_files_and_misalignment() {
        let dir = std::env::temp_dir().join(format!("loom-shutdown-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = Config::small(&dir);
        for log in [LogId::Records, LogId::Chunks, LogId::Ts] {
            std::fs::write(dir.join(log.file_name()), vec![0u8; 8192]).unwrap();
        }
        let mut s = CleanShutdown {
            record_tail: 8192,
            chunk_tail: 300,
            ts_tail: 120,
            last_seal: NIL_ADDR,
            sources: vec![],
        };
        assert!(s.validate(&dir, &config).is_ok());
        s.record_tail = 100; // not a chunk boundary
        assert!(s.validate(&dir, &config).is_err());
        s.record_tail = 16384; // beyond the file
        assert!(s.validate(&dir, &config).is_err());
        s.record_tail = 8192;
        s.ts_tail = 41; // misaligned
        assert!(s.validate(&dir, &config).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
