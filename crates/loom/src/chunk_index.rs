//! Read-side access to the chunk index (§4.2).
//!
//! The chunk index is a hybrid log of serialized, length-prefixed
//! [`ChunkSummary`] entries, appended in chunk order when chunks seal.
//! Because the writer publishes the chunk-index watermark only after
//! appending a complete summary, every view of the chunk index ends at a
//! summary boundary and can be scanned sequentially.

use crate::error::Result;
use crate::hybridlog::LogRead;
use crate::summary::ChunkSummary;

/// Sequential cursor over chunk summaries stored in a hybrid-log view.
pub struct SummaryCursor<'a, R: LogRead> {
    log: &'a R,
    pos: u64,
    scratch: Vec<u8>,
}

impl<'a, R: LogRead> SummaryCursor<'a, R> {
    /// Creates a cursor starting at chunk-index address `start`.
    ///
    /// `start` must be a summary boundary (0, or an address obtained from a
    /// chunk-seal entry in the timestamp index).
    pub fn new(log: &'a R, start: u64) -> Self {
        SummaryCursor {
            log,
            pos: start,
            scratch: Vec::new(),
        }
    }

    /// The address of the next summary this cursor would read.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Reads the next summary, advancing the cursor.
    ///
    /// Returns `Ok(None)` at the end of the view.
    // Not `Iterator::next`: this is fallible and borrows internal scratch.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<ChunkSummary>> {
        let limit = self.log.limit();
        if self.pos + 4 > limit {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        self.log.read_at(self.pos, &mut len_buf)?;
        let body_len = u32::from_le_bytes(len_buf) as u64;
        if self.pos + 4 + body_len > limit {
            // A summary is published atomically with its length prefix, so
            // running past the limit means the caller's view simply ends
            // here (e.g., a snapshot taken mid-append of the *next* batch).
            return Ok(None);
        }
        self.scratch.resize(4 + body_len as usize, 0);
        self.log.read_at(self.pos, &mut self.scratch)?;
        let (summary, consumed) = ChunkSummary::decode(&self.scratch)?;
        self.pos += consumed as u64;
        Ok(Some(summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::LoomError;

    struct MemLog(Vec<u8>);

    impl LogRead for MemLog {
        fn read_at(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
            let a = addr as usize;
            if a + dst.len() > self.0.len() {
                return Err(LoomError::AddressOutOfBounds {
                    addr: addr + dst.len() as u64,
                    tail: self.0.len() as u64,
                });
            }
            dst.copy_from_slice(&self.0[a..a + dst.len()]);
            Ok(())
        }

        fn limit(&self) -> u64 {
            self.0.len() as u64
        }
    }

    fn summaries(n: u64) -> (MemLog, Vec<ChunkSummary>) {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        for i in 0..n {
            let mut s = ChunkSummary::new(i, i * 4096, 4096);
            s.observe_record(1, i * 100 + 1);
            s.observe_record(2, i * 100 + 50);
            s.observe_value(1, (i % 4) as u32, i as f64, i * 100 + 1);
            s.encode(&mut buf);
            out.push(s);
        }
        (MemLog(buf), out)
    }

    #[test]
    fn cursor_walks_all_summaries() {
        let (log, expected) = summaries(10);
        let mut cur = SummaryCursor::new(&log, 0);
        let mut got = Vec::new();
        while let Some(s) = cur.next().unwrap() {
            got.push(s);
        }
        assert_eq!(got, expected);
        assert_eq!(cur.pos(), log.limit());
    }

    #[test]
    fn cursor_starting_mid_log_reads_suffix() {
        let (log, expected) = summaries(5);
        // Find the address of the third summary by replaying lengths.
        let mut pos = 0u64;
        for _ in 0..2 {
            let mut len_buf = [0u8; 4];
            log.read_at(pos, &mut len_buf).unwrap();
            pos += 4 + u32::from_le_bytes(len_buf) as u64;
        }
        let mut cur = SummaryCursor::new(&log, pos);
        let mut got = Vec::new();
        while let Some(s) = cur.next().unwrap() {
            got.push(s);
        }
        assert_eq!(got, expected[2..]);
    }

    #[test]
    fn truncated_view_stops_cleanly() {
        let (log, expected) = summaries(3);
        // Chop the last summary in half: cursor must stop after two.
        let cut = log.0.len() - 10;
        let log = MemLog(log.0[..cut].to_vec());
        let mut cur = SummaryCursor::new(&log, 0);
        let mut got = Vec::new();
        while let Some(s) = cur.next().unwrap() {
            got.push(s);
        }
        assert_eq!(got, expected[..2]);
    }

    #[test]
    fn empty_log_yields_nothing() {
        let log = MemLog(Vec::new());
        let mut cur = SummaryCursor::new(&log, 0);
        assert!(cur.next().unwrap().is_none());
    }
}
