//! Read-side access to the chunk index (§4.2).
//!
//! The chunk index is a hybrid log of serialized, checksum-framed
//! [`ChunkSummary`] entries, appended in chunk order when chunks seal.
//! Because the writer publishes the chunk-index watermark only after
//! appending a complete summary, every view of the chunk index ends at a
//! summary boundary and can be scanned sequentially.

use crate::durability::{LogId, FRAME_HEADER_SIZE, MAX_FRAME_LEN};
use crate::error::{LoomError, Result};
use crate::hybridlog::LogRead;
use crate::summary::ChunkSummary;

/// Sequential cursor over chunk summaries stored in a hybrid-log view.
pub struct SummaryCursor<'a, R: LogRead> {
    log: &'a R,
    pos: u64,
    scratch: Vec<u8>,
}

impl<'a, R: LogRead> SummaryCursor<'a, R> {
    /// Creates a cursor starting at chunk-index address `start`.
    ///
    /// `start` must be a summary boundary (0, or an address obtained from a
    /// chunk-seal entry in the timestamp index).
    pub fn new(log: &'a R, start: u64) -> Self {
        SummaryCursor {
            log,
            pos: start,
            scratch: Vec::new(),
        }
    }

    /// The address of the next summary this cursor would read.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Reads the next summary, advancing the cursor.
    ///
    /// Returns `Ok(None)` at the end of the view. A nonsense length prefix
    /// (larger than any encodable summary) or a checksum mismatch is
    /// reported as [`LoomError::CorruptLog`] *before* any oversized
    /// allocation is attempted.
    // Not `Iterator::next`: this is fallible and borrows internal scratch.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<ChunkSummary>> {
        let limit = self.log.limit();
        if self.pos + FRAME_HEADER_SIZE as u64 > limit {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        self.log.read_at(self.pos, &mut len_buf)?;
        let body_len = u32::from_le_bytes(len_buf) as u64;
        if body_len > MAX_FRAME_LEN {
            // Validate the length prefix before sizing the scratch buffer:
            // a corrupt prefix must not trigger a huge allocation.
            return Err(LoomError::CorruptLog {
                log: LogId::Chunks,
                addr: self.pos,
                reason: format!("summary length prefix {body_len} exceeds {MAX_FRAME_LEN}"),
            });
        }
        if self.pos + FRAME_HEADER_SIZE as u64 + body_len > limit {
            // A summary is published atomically with its frame header, so
            // running past the limit means the caller's view simply ends
            // here (e.g., a snapshot taken mid-append of the *next* batch).
            return Ok(None);
        }
        self.scratch
            .resize(FRAME_HEADER_SIZE + body_len as usize, 0);
        self.log.read_at(self.pos, &mut self.scratch)?;
        let (summary, consumed) = ChunkSummary::decode(&self.scratch).map_err(|e| match e {
            LoomError::Corrupt(reason) => LoomError::CorruptLog {
                log: LogId::Chunks,
                addr: self.pos,
                reason,
            },
            other => other,
        })?;
        self.pos += consumed as u64;
        Ok(Some(summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MemLog(Vec<u8>);

    impl LogRead for MemLog {
        fn read_at(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
            let a = addr as usize;
            if a + dst.len() > self.0.len() {
                return Err(LoomError::AddressOutOfBounds {
                    addr: addr + dst.len() as u64,
                    tail: self.0.len() as u64,
                });
            }
            dst.copy_from_slice(&self.0[a..a + dst.len()]);
            Ok(())
        }

        fn limit(&self) -> u64 {
            self.0.len() as u64
        }
    }

    fn summaries(n: u64) -> (MemLog, Vec<ChunkSummary>) {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        for i in 0..n {
            let mut s = ChunkSummary::new(i, i * 4096, 4096);
            s.observe_record(1, i * 100 + 1);
            s.observe_record(2, i * 100 + 50);
            s.observe_value(1, (i % 4) as u32, i as f64, i * 100 + 1);
            s.encode(&mut buf);
            out.push(s);
        }
        (MemLog(buf), out)
    }

    #[test]
    fn cursor_walks_all_summaries() {
        let (log, expected) = summaries(10);
        let mut cur = SummaryCursor::new(&log, 0);
        let mut got = Vec::new();
        while let Some(s) = cur.next().unwrap() {
            got.push(s);
        }
        assert_eq!(got, expected);
        assert_eq!(cur.pos(), log.limit());
    }

    #[test]
    fn cursor_starting_mid_log_reads_suffix() {
        let (log, expected) = summaries(5);
        // Find the address of the third summary by replaying frame lengths.
        let mut pos = 0u64;
        for _ in 0..2 {
            let mut len_buf = [0u8; 4];
            log.read_at(pos, &mut len_buf).unwrap();
            pos += FRAME_HEADER_SIZE as u64 + u32::from_le_bytes(len_buf) as u64;
        }
        let mut cur = SummaryCursor::new(&log, pos);
        let mut got = Vec::new();
        while let Some(s) = cur.next().unwrap() {
            got.push(s);
        }
        assert_eq!(got, expected[2..]);
    }

    #[test]
    fn truncated_view_stops_cleanly() {
        let (log, expected) = summaries(3);
        // Chop the last summary in half: cursor must stop after two.
        let cut = log.0.len() - 10;
        let log = MemLog(log.0[..cut].to_vec());
        let mut cur = SummaryCursor::new(&log, 0);
        let mut got = Vec::new();
        while let Some(s) = cur.next().unwrap() {
            got.push(s);
        }
        assert_eq!(got, expected[..2]);
    }

    #[test]
    fn nonsense_length_prefix_is_corrupt_not_an_allocation() {
        let (log, _) = summaries(2);
        let mut bytes = log.0;
        // Stamp an absurd length into the first frame's prefix.
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let log = MemLog(bytes);
        let mut cur = SummaryCursor::new(&log, 0);
        match cur.next() {
            Err(LoomError::CorruptLog { log, addr, reason }) => {
                assert_eq!(log, LogId::Chunks);
                assert_eq!(addr, 0);
                assert!(reason.contains("length prefix"), "{reason}");
            }
            other => panic!("expected CorruptLog, got {other:?}"),
        }
    }

    #[test]
    fn flipped_byte_is_reported_with_address() {
        let (log, _) = summaries(3);
        let mut bytes = log.0;
        // Locate the second frame and corrupt a body byte.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second = FRAME_HEADER_SIZE + first_len;
        bytes[second + FRAME_HEADER_SIZE + 3] ^= 0x20;
        let log = MemLog(bytes);
        let mut cur = SummaryCursor::new(&log, 0);
        assert!(cur.next().unwrap().is_some());
        match cur.next() {
            Err(LoomError::CorruptLog { log, addr, reason }) => {
                assert_eq!(log, LogId::Chunks);
                assert_eq!(addr, second as u64);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptLog, got {other:?}"),
        }
    }

    #[test]
    fn empty_log_yields_nothing() {
        let log = MemLog(Vec::new());
        let mut cur = SummaryCursor::new(&log, 0);
        assert!(cur.next().unwrap().is_none());
    }
}
