//! Histogram bin specifications for Loom's chunk index (§4.2).
//!
//! An index over a source is defined by a histogram: a set of bins for
//! different value ranges. The user (typically a monitoring daemon) defines
//! the interior bins; Loom always adds two *outlier* bins below and above
//! the user's range, because observability queries usually care about
//! outliers. Histograms serve value-range queries, aggregates, percentiles
//! (by treating bin counts as a CDF), and — with a single bin — exact-match
//! queries.

// Boundary validation deliberately uses negated comparisons: `!(a < b)`
// is true when either side is NaN, so NaN boundaries are rejected; the
// "simpler" `a >= b` would silently accept them.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::{LoomError, Result};

/// A histogram bin specification.
///
/// `bounds` holds `n + 1` strictly increasing boundaries defining `n` user
/// bins `[bounds[i], bounds[i+1])`, plus implicit outlier bins
/// `(-inf, bounds[0])` and `[bounds[n], +inf)`. Bin indices run from `0`
/// (the low outlier bin) to `n + 1` (the high outlier bin).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSpec {
    bounds: Vec<f64>,
}

impl HistogramSpec {
    /// Creates a histogram from explicit boundaries.
    ///
    /// Boundaries must be finite, strictly increasing, and at least two.
    pub fn from_bounds(bounds: Vec<f64>) -> Result<Self> {
        if bounds.len() < 2 {
            return Err(LoomError::InvalidHistogram(
                "need at least two boundaries (one user bin)".into(),
            ));
        }
        for w in bounds.windows(2) {
            if !(w[0] < w[1]) {
                return Err(LoomError::InvalidHistogram(format!(
                    "boundaries must be strictly increasing: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        if bounds.iter().any(|b| !b.is_finite()) {
            return Err(LoomError::InvalidHistogram(
                "boundaries must be finite".into(),
            ));
        }
        Ok(HistogramSpec { bounds })
    }

    /// Creates `n` equal-width bins covering `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(LoomError::InvalidHistogram("need at least one bin".into()));
        }
        if !(lo < hi) {
            return Err(LoomError::InvalidHistogram(format!(
                "lo {lo} must be below hi {hi}"
            )));
        }
        let width = (hi - lo) / n as f64;
        let mut bounds: Vec<f64> = (0..n).map(|i| lo + width * i as f64).collect();
        bounds.push(hi);
        Self::from_bounds(bounds)
    }

    /// Creates `n` exponentially growing bins starting at `lo` with the
    /// given growth `factor` (each bin `factor`× wider than the last).
    ///
    /// Exponential bins suit latency distributions, which span orders of
    /// magnitude.
    pub fn exponential(lo: f64, factor: f64, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(LoomError::InvalidHistogram("need at least one bin".into()));
        }
        if !(lo > 0.0) || !(factor > 1.0) {
            return Err(LoomError::InvalidHistogram(format!(
                "need lo > 0 and factor > 1 (got lo {lo}, factor {factor})"
            )));
        }
        let mut bounds = Vec::with_capacity(n + 1);
        let mut b = lo;
        for _ in 0..=n {
            bounds.push(b);
            b *= factor;
        }
        Self::from_bounds(bounds)
    }

    /// Creates a single-bin histogram `[value, next_after(value))` that
    /// emulates an exact-match index (§5.1, §6.4): records whose extracted
    /// value equals `value` land in the interior bin, everything else in
    /// the outlier bins.
    pub fn exact_match(value: f64) -> Result<Self> {
        let hi = next_after(value);
        Self::from_bounds(vec![value, hi])
    }

    /// Total number of bins, including the two outlier bins.
    pub fn bin_count(&self) -> usize {
        self.bounds.len() + 1
    }

    /// The user-defined boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Returns the bin index for `value`, or `None` for NaN (which is
    /// unindexable and treated as "no value").
    pub fn bin_of(&self, value: f64) -> Option<usize> {
        if value.is_nan() {
            return None;
        }
        // partition_point: number of boundaries <= value. 0 means below all
        // boundaries (low outlier bin); bounds.len() means at or above the
        // last boundary (high outlier bin).
        Some(self.bounds.partition_point(|b| *b <= value))
    }

    /// Returns the half-open value range `[lo, hi)` covered by bin `idx`.
    ///
    /// The outlier bins extend to negative/positive infinity.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        let n = self.bin_count();
        assert!(idx < n, "bin index {idx} out of range (have {n})");
        let lo = if idx == 0 {
            f64::NEG_INFINITY
        } else {
            self.bounds[idx - 1]
        };
        let hi = if idx == n - 1 {
            f64::INFINITY
        } else {
            self.bounds[idx]
        };
        (lo, hi)
    }

    /// Returns the inclusive range of bin indices that may contain values
    /// in `[v_lo, v_hi]`.
    pub fn bins_overlapping(&self, v_lo: f64, v_hi: f64) -> std::ops::RangeInclusive<usize> {
        let lo = self.bin_of(v_lo).unwrap_or(0);
        let hi = self.bin_of(v_hi).unwrap_or(self.bin_count() - 1);
        lo..=hi
    }

    /// Whether bin `idx` lies entirely inside the closed interval
    /// `[v_lo, v_hi]` (so its summary statistics can be used without
    /// scanning the underlying chunk).
    pub fn bin_within(&self, idx: usize, v_lo: f64, v_hi: f64) -> bool {
        let (lo, hi) = self.bin_range(idx);
        // The bin is half-open [lo, hi); it is inside the query interval iff
        // every representable value in it is within [v_lo, v_hi].
        lo >= v_lo && hi <= next_after(v_hi)
    }
}

/// Returns the smallest `f64` strictly greater than `x`.
fn next_after(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x >= 0.0 { bits + 1 } else { bits - 1 };
    if x == 0.0 {
        f64::from_bits(1) // smallest positive subnormal
    } else {
        f64::from_bits(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment_covers_all_values() {
        let h = HistogramSpec::from_bounds(vec![0.0, 10.0, 100.0]).unwrap();
        assert_eq!(h.bin_count(), 4);
        assert_eq!(h.bin_of(-5.0), Some(0)); // low outlier
        assert_eq!(h.bin_of(0.0), Some(1));
        assert_eq!(h.bin_of(9.99), Some(1));
        assert_eq!(h.bin_of(10.0), Some(2));
        assert_eq!(h.bin_of(99.0), Some(2));
        assert_eq!(h.bin_of(100.0), Some(3)); // high outlier
        assert_eq!(h.bin_of(1e12), Some(3));
        assert_eq!(h.bin_of(f64::NAN), None);
    }

    #[test]
    fn bin_ranges_are_consistent_with_assignment() {
        let h = HistogramSpec::uniform(0.0, 100.0, 10).unwrap();
        for idx in 0..h.bin_count() {
            let (lo, hi) = h.bin_range(idx);
            if lo.is_finite() {
                assert_eq!(h.bin_of(lo), Some(idx));
            }
            if hi.is_finite() {
                assert_eq!(h.bin_of(hi), Some(idx + 1));
            }
        }
    }

    #[test]
    fn uniform_bins_have_equal_width() {
        let h = HistogramSpec::uniform(0.0, 100.0, 4).unwrap();
        assert_eq!(h.bounds(), &[0.0, 25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn exponential_bins_grow() {
        let h = HistogramSpec::exponential(1.0, 2.0, 4).unwrap();
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn exact_match_bin_contains_only_value() {
        let h = HistogramSpec::exact_match(42.0).unwrap();
        assert_eq!(h.bin_count(), 3);
        assert_eq!(h.bin_of(42.0), Some(1));
        assert_eq!(h.bin_of(41.999999), Some(0));
        assert_eq!(h.bin_of(42.000001), Some(2));
    }

    #[test]
    fn rejects_invalid_specs() {
        assert!(HistogramSpec::from_bounds(vec![]).is_err());
        assert!(HistogramSpec::from_bounds(vec![1.0]).is_err());
        assert!(HistogramSpec::from_bounds(vec![2.0, 1.0]).is_err());
        assert!(HistogramSpec::from_bounds(vec![1.0, 1.0]).is_err());
        assert!(HistogramSpec::from_bounds(vec![1.0, f64::INFINITY]).is_err());
        assert!(HistogramSpec::uniform(5.0, 5.0, 3).is_err());
        assert!(HistogramSpec::uniform(0.0, 1.0, 0).is_err());
        assert!(HistogramSpec::exponential(0.0, 2.0, 3).is_err());
        assert!(HistogramSpec::exponential(1.0, 1.0, 3).is_err());
    }

    #[test]
    fn bins_overlapping_selects_correct_range() {
        let h = HistogramSpec::uniform(0.0, 100.0, 10).unwrap();
        assert_eq!(h.bins_overlapping(15.0, 35.0), 2..=4);
        assert_eq!(h.bins_overlapping(-10.0, 5.0), 0..=1);
        assert_eq!(h.bins_overlapping(95.0, 200.0), 10..=11);
    }

    #[test]
    fn bin_within_distinguishes_full_and_partial_coverage() {
        let h = HistogramSpec::uniform(0.0, 100.0, 10).unwrap();
        // Bin 2 covers [10, 20).
        assert!(h.bin_within(2, 10.0, 20.0));
        assert!(h.bin_within(2, 0.0, 50.0));
        assert!(!h.bin_within(2, 12.0, 50.0));
        assert!(!h.bin_within(2, 0.0, 15.0));
        // Outlier bins are never fully inside a finite interval.
        assert!(!h.bin_within(0, -1e300, 100.0));
        assert!(!h.bin_within(11, 0.0, 1e300));
    }

    #[test]
    fn next_after_is_strictly_greater() {
        for x in [0.0, 1.0, -1.0, 1e-300, 1e300, -3.5] {
            assert!(next_after(x) > x, "next_after({x}) not greater");
        }
    }
}
