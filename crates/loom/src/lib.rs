//! # Loom: efficient capture and querying of high-frequency telemetry
//!
//! Loom is a single-host library for capturing *high-frequency telemetry*
//! (HFT) — application latencies, eBPF events, hardware counters, at
//! millions of records per second — and querying it interactively, while
//! imposing minimal probe effect on the monitored workload. It reproduces
//! the system described in:
//!
//! > Solleza et al., *Loom: Efficient Capture and Querying of
//! > High-Frequency Telemetry*, SOSP 2025.
//!
//! ## Design in one paragraph
//!
//! Loom ingests records into a **hybrid log**: an append-only log whose
//! tail is staged in two ping-pong in-memory blocks and evicted to disk by
//! a background flusher (§4.1). The record log is divided into fixed-size
//! **chunks**; as records arrive, Loom incrementally builds a **chunk
//! summary** — per-histogram-bin statistics (count/min/max/sum/time range)
//! — and appends it to a **chunk index** when the chunk seals (§4.2). A
//! third log, the **timestamp index**, records periodic per-source marks
//! and chunk-seal events, enabling binary search by time. Queries use the
//! timestamp index to find relevant chunk summaries, the summaries to skip
//! or pre-aggregate chunks, and only then scan the few matching chunks
//! (§4.3). Readers never block the writer: they copy published bytes under
//! a generation-validated snapshot protocol (§4.4).
//!
//! ## Quickstart
//!
//! ```
//! use loom::{Aggregate, Clock, Config, HistogramSpec, Loom, TimeRange};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("loom-doc-{}", std::process::id()));
//! let config = Config::small(&dir);
//! let (loom, mut writer) = Loom::open_with_clock(config, Clock::manual(0)).unwrap();
//!
//! // Define a source and a latency index with exponential bins.
//! let reqs = loom.define_source("app.requests");
//! let latency = loom
//!     .define_index(
//!         reqs,
//!         Arc::new(|payload: &[u8]| {
//!             payload.get(0..8).map(|b| {
//!                 u64::from_le_bytes(b.try_into().unwrap()) as f64
//!             })
//!         }),
//!         HistogramSpec::exponential(1.0, 4.0, 8).unwrap(),
//!     )
//!     .unwrap();
//!
//! // Push records: 8-byte latency values.
//! for i in 0..10_000u64 {
//!     loom.clock().advance(1_000);
//!     let latency_ns = if i == 5_000 { 1_000_000u64 } else { 100 + i % 50 };
//!     writer.push(reqs, &latency_ns.to_le_bytes()).unwrap();
//! }
//!
//! // What was the maximum latency over the whole run?
//! let max = loom
//!     .query(reqs)
//!     .index(latency)
//!     .range(TimeRange::new(0, loom.now()))
//!     .aggregate(Aggregate::Max)
//!     .unwrap();
//! assert_eq!(max.value, Some(1_000_000.0));
//! # drop(writer);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod chunk_index;
pub mod clock;
pub mod config;
pub mod coordinator;
pub mod durability;
pub mod engine;
pub mod error;
pub mod extract;
pub mod fault;
pub mod health;
pub mod histogram;
pub mod hybridlog;
pub mod net;
pub mod obs;
pub mod query;
pub mod record;
pub mod registry;
pub mod retention;
pub mod stats;
pub mod summary;
pub mod sync;
pub mod ts_index;
pub mod util;

pub use clock::Clock;
pub use config::{Config, ConfigBuilder, IoRetryPolicy, OverloadPolicy, RetentionConfig};
pub use durability::{CleanShutdown, LogId, RecoveryReport, TailTruncation};
pub use engine::{CompactionReport, Loom, LoomWriter, TierStats};
pub use error::{LoomError, Result};
pub use extract::ExtractorDesc;
pub use health::EngineHealth;
pub use histogram::HistogramSpec;
pub use obs::{MetricsSnapshot, NetMetrics, NetObs, QueryKind, ShardRollup, SlowQueryTrace};
pub use query::{Aggregate, AggregateResult, Query, QueryOptions, Record, TimeRange, ValueRange};
pub use registry::{IndexId, SourceId, ValueFn};
pub use retention::ColdTierStats;
pub use stats::{IngestStats, QueryStats};
