//! Small shared utilities.
//!
//! The canonical home of the workspace's FNV-1a hash. Shard routing,
//! schema fingerprints, and bloom-filter probing all need a hash that
//! is *stable across processes and versions* — never `std`'s
//! randomized `RandomState` — and re-inlining the constants per call
//! site invites silent divergence (the lint's `fnv-drift` rule bans
//! fresh copies). `lsm::bloom` keeps its own historical copy because
//! that crate cannot depend on `loom`; the equivalence test in
//! `tests/fnv.rs` pins the two together.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over one byte slice.
#[inline]
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a for callers that fold multiple fields (e.g. the
/// schema fingerprint, which interleaves names with separators).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a new hash at the offset basis.
    #[inline]
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds a byte slice into the hash.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Folds one byte into the hash.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// The current hash value.
    #[inline]
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }
}
