//! Hybrid log abstraction: append-only logs spanning memory and storage.

mod block;
mod log;

pub use block::Block;
pub use log::{
    create, create_with, create_with_obs, open_existing_with, open_existing_with_obs, LogOptions,
    LogShared, Snapshot, Writer,
};

use crate::error::Result;

/// Read access to a (possibly snapshotted) hybrid log.
///
/// Implemented by both the live [`LogShared`] and a point-in-time
/// [`Snapshot`], so index search and scan code is agnostic to which view
/// it runs over.
pub trait LogRead {
    /// Reads `dst.len()` bytes starting at logical address `addr`.
    fn read_at(&self, addr: u64, dst: &mut [u8]) -> Result<()>;

    /// Exclusive upper bound of readable addresses in this view.
    fn limit(&self) -> u64;
}

impl LogRead for LogShared {
    fn read_at(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
        LogShared::read_at(self, addr, dst)
    }

    fn limit(&self) -> u64 {
        self.watermark()
    }
}

impl LogRead for Snapshot<'_> {
    fn read_at(&self, addr: u64, dst: &mut [u8]) -> Result<()> {
        Snapshot::read_at(self, addr, dst)
    }

    fn limit(&self) -> u64 {
        self.watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("loom-hlog-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_and_read_within_one_block() {
        let d = tmpdir("one-block");
        let mut w = create(&d.join("log"), 4096).unwrap();
        let a = w.append(b"hello").unwrap();
        let b = w.append(b"world").unwrap();
        w.publish();
        assert_eq!(a, 0);
        assert_eq!(b, 5);
        let mut buf = [0u8; 5];
        w.shared().read_at(a, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        w.shared().read_at(b, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn unpublished_bytes_are_not_readable() {
        let d = tmpdir("unpublished");
        let mut w = create(&d.join("log"), 4096).unwrap();
        let a = w.append(b"secret").unwrap();
        let mut buf = [0u8; 6];
        assert!(w.shared().read_at(a, &mut buf).is_err());
        w.publish();
        assert!(w.shared().read_at(a, &mut buf).is_ok());
    }

    #[test]
    fn appends_spanning_many_blocks_round_trip() {
        let d = tmpdir("span");
        let mut w = create(&d.join("log"), 256).unwrap();
        let mut addrs = Vec::new();
        let mut payloads = Vec::new();
        for i in 0..200u32 {
            // Varying sizes, some larger than a block.
            let len = 1 + ((i as usize * 37) % 400);
            let payload = vec![(i % 251) as u8; len];
            addrs.push(w.append(&payload).unwrap());
            payloads.push(payload);
        }
        w.publish();
        for (addr, payload) in addrs.iter().zip(&payloads) {
            let mut buf = vec![0u8; payload.len()];
            w.shared().read_at(*addr, &mut buf).unwrap();
            assert_eq!(&buf, payload);
        }
    }

    #[test]
    fn flush_makes_data_durable() {
        let d = tmpdir("durable");
        let path = d.join("log");
        let mut w = create(&path, 4096).unwrap();
        w.append(b"persist me").unwrap();
        w.publish();
        w.flush().unwrap();
        assert!(w.shared().flushed_upto() >= 10);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(&on_disk[..10], b"persist me");
    }

    #[test]
    fn drop_flushes_tail() {
        let d = tmpdir("drop-flush");
        let path = d.join("log");
        {
            let mut w = create(&path, 4096).unwrap();
            w.append(b"tail data").unwrap();
            w.publish();
        }
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(&on_disk[..9], b"tail data");
    }

    #[test]
    fn snapshot_is_stable_under_later_appends() {
        let d = tmpdir("snapshot");
        let mut w = create(&d.join("log"), 4096).unwrap();
        let a = w.append(b"before").unwrap();
        w.publish();
        let shared = Arc::clone(w.shared());
        let snap = shared.snapshot().unwrap();
        assert_eq!(snap.watermark(), 6);

        w.append(b"after").unwrap();
        w.publish();

        let mut buf = [0u8; 6];
        snap.read_at(a, &mut buf).unwrap();
        assert_eq!(&buf, b"before");
        // The snapshot must refuse to read beyond its watermark.
        let mut buf2 = [0u8; 5];
        assert!(snap.read_at(6, &mut buf2).is_err());
    }

    #[test]
    fn snapshot_straddling_durable_boundary_reads_correctly() {
        let d = tmpdir("straddle");
        let mut w = create(&d.join("log"), 4096).unwrap();
        w.append(b"0123456789").unwrap();
        w.publish();
        w.flush().unwrap();
        w.append(b"abcdefghij").unwrap();
        w.publish();
        let shared = Arc::clone(w.shared());
        let snap = shared.snapshot().unwrap();
        // Read a range straddling the durable/in-memory boundary.
        let mut buf = [0u8; 10];
        snap.read_at(5, &mut buf).unwrap();
        assert_eq!(&buf, b"56789abcde");
        // Fully durable range.
        let mut buf = [0u8; 4];
        snap.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"0123");
    }

    #[test]
    fn reads_fall_back_to_disk_after_block_recycle() {
        let d = tmpdir("recycle");
        let mut w = create(&d.join("log"), 128).unwrap();
        // Write enough to cycle through both blocks several times.
        let mut addrs = Vec::new();
        for i in 0..32u8 {
            addrs.push(w.append(&[i; 32]).unwrap());
        }
        w.publish();
        // Early addresses are only on disk now.
        let mut buf = [0u8; 32];
        w.shared().read_at(addrs[0], &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        w.shared().read_at(addrs[31], &mut buf).unwrap();
        assert_eq!(buf, [31u8; 32]);
    }

    #[test]
    fn concurrent_reader_sees_consistent_prefix() {
        // A reader continuously validates that every published byte matches
        // the deterministic pattern the writer appends.
        let d = tmpdir("concurrent");
        let mut w = create(&d.join("log"), 512).unwrap();
        let shared = Arc::clone(w.shared());
        let stop = Arc::new(AtomicBool::new(false));
        let stop_r = Arc::clone(&stop);

        let reader = std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop_r.load(Ordering::Relaxed) {
                let wm = shared.watermark();
                if wm == 0 {
                    continue;
                }
                // Read a random-ish published range and validate pattern:
                // byte at address a is (a % 251) as u8.
                let start = checked % wm;
                let len = ((wm - start) as usize).min(300);
                let mut buf = vec![0u8; len];
                shared.read_at(start, &mut buf).unwrap();
                for (i, b) in buf.iter().enumerate() {
                    let addr = start + i as u64;
                    assert_eq!(*b, (addr % 251) as u8, "mismatch at {addr}");
                }
                checked += 7;
            }
        });

        let mut addr = 0u64;
        for _ in 0..2000 {
            let len = 1 + (addr as usize % 97);
            let data: Vec<u8> = (0..len).map(|i| ((addr + i as u64) % 251) as u8).collect();
            w.append(&data).unwrap();
            addr += len as u64;
            w.publish();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    }

    #[test]
    fn tail_and_watermark_track_appends() {
        let d = tmpdir("tail");
        let mut w = create(&d.join("log"), 4096).unwrap();
        assert_eq!(w.tail(), 0);
        w.append(&[0u8; 100]).unwrap();
        assert_eq!(w.tail(), 100);
        assert_eq!(w.shared().watermark(), 0);
        w.publish();
        assert_eq!(w.shared().watermark(), 100);
        assert_eq!(w.shared().tail(), 100);
    }

    #[test]
    fn reopen_resumes_appends_at_recovered_tail() {
        let d = tmpdir("reopen");
        let path = d.join("log");
        {
            let mut w = create(&path, 256).unwrap();
            // 600 bytes: spans two sealed blocks plus a partial third.
            for i in 0..6u8 {
                w.append(&[i; 100]).unwrap();
            }
            w.publish();
            w.flush().unwrap();
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 600);
        let mut w = super::log::open_existing_with_obs(
            &path,
            256,
            600,
            Arc::new(crate::obs::LogObs::default()),
        )
        .unwrap();
        assert_eq!(w.tail(), 600);
        // Old bytes are readable immediately.
        let mut buf = [0u8; 100];
        w.shared().read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 100]);
        w.shared().read_at(500, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 100]);
        // New appends continue at the recovered tail and round-trip,
        // including across the next block seal.
        let a = w.append(&[7u8; 200]).unwrap();
        assert_eq!(a, 600);
        w.publish();
        let mut buf = [0u8; 200];
        w.shared().read_at(a, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 200]);
        // Straddling read across the reopen boundary.
        let mut buf = [0u8; 150];
        w.shared().read_at(550, &mut buf).unwrap();
        assert_eq!(&buf[..50], &[5u8; 50][..]);
        assert_eq!(&buf[50..], &[7u8; 100][..]);
    }

    #[test]
    fn reopen_truncates_bytes_past_the_recovered_tail() {
        let d = tmpdir("reopen-trunc");
        let path = d.join("log");
        {
            let mut w = create(&path, 256).unwrap();
            w.append(&[1u8; 300]).unwrap();
            w.publish();
            w.flush().unwrap();
        }
        // Recovery decided only 120 bytes are good.
        let w = super::log::open_existing_with_obs(
            &path,
            256,
            120,
            Arc::new(crate::obs::LogObs::default()),
        )
        .unwrap();
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 120);
    }

    #[test]
    fn reopen_rejects_tail_beyond_file() {
        let d = tmpdir("reopen-short");
        let path = d.join("log");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(super::log::open_existing_with_obs(
            &path,
            256,
            100,
            Arc::new(crate::obs::LogObs::default()),
        )
        .is_err());
    }

    #[test]
    fn simulate_crash_skips_the_final_flush() {
        let d = tmpdir("crash");
        let path = d.join("log");
        let mut w = create(&path, 4096).unwrap();
        w.append(b"flushed part").unwrap();
        w.publish();
        w.flush().unwrap();
        w.append(b" never flushed").unwrap();
        w.publish();
        w.simulate_crash();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), 12, "unflushed tail must not reach disk");
        assert_eq!(&on_disk, b"flushed part");
    }

    #[test]
    fn wait_flushed_completes() {
        let d = tmpdir("waitflush");
        let mut w = create(&d.join("log"), 64).unwrap();
        for i in 0..16u8 {
            w.append(&[i; 32]).unwrap();
        }
        w.publish();
        // 512 bytes written with 64-byte blocks: at least 448 must flush
        // for the writer to have progressed this far.
        w.shared().wait_flushed(448).unwrap();
        assert!(w.shared().flushed_upto() >= 448);
    }
}
